//! Summary-table maintenance: which dimensions are worth keeping, and
//! which tables are worth materializing (§6.2.2).
//!
//! Two mechanisms from the paper:
//!
//! * [`droppable_dimensions`] — "a procedure that inspects the given
//!   mediator program and decides which attributes may ever be
//!   instantiated to a specific constant during the rewriting phase"; all
//!   other dimensions can be dropped losslessly *for that workload*.
//! * [`AccessTracker`] — "watch the access patterns for the tables and
//!   decide which tables are needed very frequently … alternatively, drop
//!   the tables that are not accessed very often."

use hermes_common::{CallPattern, PatternShape};
use hermes_lang::{BodyAtom, Program, Term};
use std::collections::HashMap;

/// Computes, for `domain:function/arity`, which argument positions can
/// ever be a *known constant* at planning time in `program` (Example 6.2).
///
/// A planning-time constant originates either from a literal in a rule or
/// from the user's query — but a query can only instantiate *exported*
/// predicates (those no rule body uses; `p` and `q` in (M1) are "hidden
/// from the user"). Constant-instantiability is propagated top-down from
/// exported predicate positions through rule heads into bodies with a
/// fixpoint. The returned mask is the dimension set worth keeping
/// (`true` = keep); every `false` position can be dropped from summaries
/// without ever being missed by the cost estimator.
pub fn droppable_dimensions(
    program: &Program,
    domain: &str,
    function: &str,
    arity: usize,
) -> Vec<bool> {
    use std::collections::{BTreeMap, BTreeSet};

    // Predicate identity → set of head positions (0-based) that can be a
    // known constant at planning time.
    type Key = (std::sync::Arc<str>, usize);
    let defined: BTreeSet<Key> = program.defined_predicates().into_iter().collect();
    let used_in_bodies: BTreeSet<Key> = program
        .rules
        .iter()
        .flat_map(|r| r.body.iter())
        .filter_map(|a| match a {
            BodyAtom::Pred(p) => Some(p.key()),
            _ => None,
        })
        .collect();

    let mut instantiable: BTreeMap<Key, BTreeSet<usize>> = BTreeMap::new();
    // Exported predicates: defined but never used in a body. The query can
    // put constants in any of their positions.
    for key in &defined {
        if !used_in_bodies.contains(key) {
            instantiable.insert(key.clone(), (0..key.1).collect());
        }
    }

    let mut keep = vec![false; arity];
    let mut changed = true;
    while changed {
        changed = false;
        for rule in &program.rules {
            // Variables of this rule that can be planning-time constants:
            // head variables at instantiable positions.
            let head_positions = instantiable
                .get(&rule.head.key())
                .cloned()
                .unwrap_or_default();
            let const_vars: BTreeSet<_> = rule
                .head
                .args
                .iter()
                .enumerate()
                .filter(|(i, _)| head_positions.contains(i))
                .filter_map(|(_, t)| t.as_var().cloned())
                .collect();
            for atom in &rule.body {
                match atom {
                    BodyAtom::Pred(p) => {
                        for (i, arg) in p.args.iter().enumerate() {
                            let inst = match arg {
                                Term::Const(_) => true,
                                Term::Var(v) => const_vars.contains(v),
                            };
                            if inst && instantiable.entry(p.key()).or_default().insert(i) {
                                changed = true;
                            }
                        }
                    }
                    BodyAtom::In { call, .. } => {
                        if call.domain.as_ref() != domain
                            || call.function.as_ref() != function
                            || call.args.len() != arity
                        {
                            continue;
                        }
                        for (i, arg) in call.args.iter().enumerate() {
                            let inst = match arg {
                                Term::Const(_) => true,
                                Term::Var(v) => const_vars.contains(v),
                            };
                            if inst && !keep[i] {
                                keep[i] = true;
                                changed = true;
                            }
                        }
                    }
                    BodyAtom::Cond(_) => {}
                }
            }
        }
    }
    keep
}

/// Counts cost-estimator lookups per pattern shape, to drive table
/// creation/dropping decisions.
#[derive(Clone, Debug, Default)]
pub struct AccessTracker {
    counts: HashMap<PatternShape, u64>,
}

impl AccessTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        AccessTracker::default()
    }

    /// Notes one lookup of `pattern`.
    pub fn touch(&mut self, pattern: &CallPattern) {
        *self.counts.entry(pattern.shape()).or_default() += 1;
    }

    /// Lookups recorded for a shape.
    pub fn count(&self, shape: &PatternShape) -> u64 {
        self.counts.get(shape).copied().unwrap_or(0)
    }

    /// Shapes with at least `min_count` lookups, hottest first — the
    /// candidates worth materializing as summary tables.
    pub fn hot_shapes(&self, min_count: u64) -> Vec<(PatternShape, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|(_, c)| **c >= min_count)
            .map(|(s, c)| (s.clone(), *c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }

    /// Of `existing` table shapes, those colder than `min_count` —
    /// candidates to drop.
    pub fn cold_shapes<'a>(
        &self,
        existing: impl Iterator<Item = &'a PatternShape>,
        min_count: u64,
    ) -> Vec<PatternShape> {
        existing
            .filter(|s| self.count(s) < min_count)
            .cloned()
            .collect()
    }

    /// Clears all counters (e.g. per maintenance epoch).
    pub fn reset(&mut self) {
        self.counts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::PatArg;
    use hermes_common::Value;
    use hermes_lang::parse_program;

    #[test]
    fn example_6_2_b_is_droppable() {
        // In (M1), q_bf's only argument is the join variable B, which is
        // "hidden" (never in a head) — so it can never be a planning-time
        // constant and its dimension can be dropped.
        let program = parse_program(
            "
            m(A, C) :- p(A, B) & q(B, C).
            p(A, B) :- in(B, d1:p_bf(A)).
            q(B, C) :- in(C, d2:q_bf(B)).
            ",
        )
        .unwrap();
        let keep = droppable_dimensions(&program, "d2", "q_bf", 1);
        assert_eq!(keep, vec![false]);
        // p_bf's argument is A, a head variable: the query can bind it to
        // a known constant, so it must stay a dimension.
        let keep_p = droppable_dimensions(&program, "d1", "p_bf", 1);
        assert_eq!(keep_p, vec![true]);
    }

    #[test]
    fn constants_in_rules_keep_dimensions() {
        let program = parse_program(
            "r(X) :- in(X, video:frames_to_objects('rope', First, Last)) & p(First, Last).
             p(F, L) :- in(F, d:f()) & in(L, d:f()).",
        )
        .unwrap();
        let keep = droppable_dimensions(&program, "video", "frames_to_objects", 3);
        // 'rope' is a literal constant; First/Last are body-local.
        assert_eq!(keep, vec![true, false, false]);
    }

    #[test]
    fn unknown_function_keeps_nothing() {
        let program = parse_program("p('a').").unwrap();
        assert_eq!(
            droppable_dimensions(&program, "d", "f", 2),
            vec![false, false]
        );
    }

    #[test]
    fn tracker_counts_and_ranks() {
        let mut t = AccessTracker::new();
        let hot = CallPattern::new("d", "f", vec![PatArg::Const(Value::Int(1))]);
        let cold = CallPattern::new("d", "g", vec![PatArg::Bound]);
        for _ in 0..5 {
            t.touch(&hot);
        }
        t.touch(&cold);
        assert_eq!(t.count(&hot.shape()), 5);
        let ranked = t.hot_shapes(2);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].1, 5);
        let existing = [hot.shape(), cold.shape()];
        let colds = t.cold_shapes(existing.iter(), 2);
        assert_eq!(colds, vec![cold.shape()]);
        t.reset();
        assert_eq!(t.count(&hot.shape()), 0);
    }
}
