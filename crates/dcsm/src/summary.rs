//! Summary tables: lossless (§6.2.1) and lossy (§6.2.2) summarization.
//!
//! A summary table is identified by a [`PatternShape`] — which argument
//! positions remain *dimensions* (constants). The lossless summary of a
//! call keeps every position as a dimension and aggregates tuples with
//! identical dimension values into an average plus the count `l` of
//! original tuples (Figure 3). Lossy summaries drop dimensions, aggregating
//! further (Figure 4); the fully-lossy table has a single row.

use crate::cost::{CostVector, MeanAgg};
use crate::vectordb::CostVectorDb;
use hermes_common::{CallPattern, GroundCall, PatternShape, Value};
use std::collections::HashMap;

/// One row of a summary table: averaged metrics plus the tuple count `l`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SummaryRow {
    /// Mean time-to-first-answer.
    pub t_first: MeanAgg,
    /// Mean time-to-all-answers.
    pub t_all: MeanAgg,
    /// Mean cardinality.
    pub card: MeanAgg,
    /// Number of original detail tuples aggregated (the paper's `l`).
    pub l: u64,
}

impl SummaryRow {
    /// Folds one observation in.
    pub fn add(&mut self, v: &CostVector) {
        if let Some(x) = v.t_first_ms {
            self.t_first.add(x);
        }
        if let Some(x) = v.t_all_ms {
            self.t_all.add(x);
        }
        if let Some(x) = v.cardinality {
            self.card.add(x);
        }
        self.l += 1;
    }

    /// Merges another row (for lossy derivation).
    pub fn merge(&mut self, other: &SummaryRow) {
        self.t_first.merge(&other.t_first);
        self.t_all.merge(&other.t_all);
        self.card.merge(&other.card);
        self.l += other.l;
    }

    /// Applies recency decay to all metrics.
    pub fn decay(&mut self, factor: f64) {
        self.t_first.decay(factor);
        self.t_all.decay(factor);
        self.card.decay(factor);
    }

    /// The row's averaged cost vector.
    pub fn vector(&self) -> CostVector {
        CostVector {
            t_first_ms: self.t_first.mean(),
            t_all_ms: self.t_all.mean(),
            cardinality: self.card.mean(),
        }
    }
}

/// A summary table of one shape.
#[derive(Clone, Debug)]
pub struct SummaryTable {
    /// The shape (which positions are dimensions).
    pub shape: PatternShape,
    rows: HashMap<Vec<Value>, SummaryRow>,
}

impl SummaryTable {
    /// An empty table of the given shape.
    pub fn new(shape: PatternShape) -> Self {
        SummaryTable {
            shape,
            rows: HashMap::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Approximate storage footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.rows
            .keys()
            .map(|k| {
                k.iter().map(Value::size_bytes).sum::<usize>()
                    + 3 * 2 * std::mem::size_of::<f64>()
                    + 8
            })
            .sum()
    }

    /// The dimension key of a ground call under this shape.
    fn key_of_call(&self, call: &GroundCall) -> Option<Vec<Value>> {
        if call.domain != self.shape.domain
            || call.function != self.shape.function
            || call.args.len() != self.shape.const_mask.len()
        {
            return None;
        }
        Some(
            call.args
                .iter()
                .zip(&self.shape.const_mask)
                .filter(|(_, keep)| **keep)
                .map(|(v, _)| v.clone())
                .collect(),
        )
    }

    /// Folds one observation in (incremental maintenance).
    pub fn observe(&mut self, call: &GroundCall, v: &CostVector) -> bool {
        match self.key_of_call(call) {
            Some(key) => {
                self.rows.entry(key).or_default().add(v);
                true
            }
            None => false,
        }
    }

    /// Row lookup for a pattern whose constant positions are exactly this
    /// shape's dimensions. `None` if the pattern has a different shape or
    /// the row is absent.
    pub fn lookup(&self, pattern: &CallPattern) -> Option<&SummaryRow> {
        if pattern.shape() != self.shape {
            return None;
        }
        self.rows.get(&pattern.const_values())
    }

    /// Iterates `(dimension key, row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<Value>, &SummaryRow)> {
        self.rows.iter()
    }

    /// Applies recency decay to every row.
    pub fn decay_all(&mut self, factor: f64) {
        for row in self.rows.values_mut() {
            row.decay(factor);
        }
    }

    /// Builds the **lossless** summary of `domain:function` from detail
    /// records (§6.2.1): dimensions = all argument positions.
    pub fn summarize_lossless(db: &CostVectorDb, domain: &str, function: &str) -> SummaryTable {
        let records = db.records_for(domain, function);
        let arity = records.first().map(|r| r.call.args.len()).unwrap_or(0);
        let shape = PatternShape::new(domain, function, vec![true; arity]);
        let mut table = SummaryTable::new(shape);
        for r in records {
            table.observe(&r.call, &r.vector);
        }
        table
    }

    /// Derives a **lossy** table by keeping only the dimensions in
    /// `new_shape` (§6.2.2). Rows are merged weighted by their aggregate
    /// weights, so the derived averages equal what a direct summarization
    /// of the detail would produce. Returns `None` if `new_shape` is not
    /// derivable from this table's shape.
    pub fn derive_lossy(&self, new_shape: PatternShape) -> Option<SummaryTable> {
        if !new_shape.derivable_from(&self.shape) {
            return None;
        }
        // Positions (within this table's dimension key) to keep.
        let kept: Vec<bool> = self
            .shape
            .const_mask
            .iter()
            .zip(&new_shape.const_mask)
            .filter(|(old, _)| **old)
            .map(|(_, new)| *new)
            .collect();
        let mut out = SummaryTable::new(new_shape);
        for (key, row) in &self.rows {
            let new_key: Vec<Value> = key
                .iter()
                .zip(&kept)
                .filter(|(_, keep)| **keep)
                .map(|(v, _)| v.clone())
                .collect();
            out.rows.entry(new_key).or_default().merge(row);
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectordb::figure2_database;
    use hermes_common::PatArg;

    #[test]
    fn paper_figure_3_lossless_summary_of_t16() {
        // (T20): tuples with A='a' aggregate to Card=3, T_a=2.10, l=2;
        //        A='b' to Card=4, T_a=2.82, l=2.
        let db = figure2_database();
        let t = SummaryTable::summarize_lossless(&db, "d1", "p_bf");
        assert_eq!(t.len(), 2);
        let row_a = t
            .lookup(&CallPattern::new(
                "d1",
                "p_bf",
                vec![PatArg::Const(Value::str("a"))],
            ))
            .unwrap();
        assert_eq!(row_a.l, 2);
        assert!((row_a.t_all.mean().unwrap() - 2.10).abs() < 1e-9);
        assert!((row_a.card.mean().unwrap() - 3.0).abs() < 1e-9);
        let row_b = t
            .lookup(&CallPattern::new(
                "d1",
                "p_bf",
                vec![PatArg::Const(Value::str("b"))],
            ))
            .unwrap();
        assert!((row_b.t_all.mean().unwrap() - 2.82).abs() < 1e-9);
    }

    #[test]
    fn paper_figure_3_lossless_summary_of_t19() {
        // (T21): q_ff has no dimensions; a single row with l=2, T_a=5.20.
        let db = figure2_database();
        let t = SummaryTable::summarize_lossless(&db, "d2", "q_ff");
        assert_eq!(t.len(), 1);
        let row = t.lookup(&CallPattern::new("d2", "q_ff", vec![])).unwrap();
        assert_eq!(row.l, 2);
        assert!((row.t_all.mean().unwrap() - 5.20).abs() < 1e-9);
        assert!((row.card.mean().unwrap() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn paper_figure_4_lossy_drop_b_dimension() {
        // §6.2.2 / Example 6.2: q_bf's B can never be a known constant, so
        // drop it: the derived table has one row averaging all of (T18).
        let db = figure2_database();
        let lossless = SummaryTable::summarize_lossless(&db, "d2", "q_bf");
        assert_eq!(lossless.len(), 3);
        let lossy = lossless
            .derive_lossy(PatternShape::new("d2", "q_bf", vec![false]))
            .unwrap();
        assert_eq!(lossy.len(), 1);
        let row = lossy
            .lookup(&CallPattern::new("d2", "q_bf", vec![PatArg::Bound]))
            .unwrap();
        assert_eq!(row.l, 3);
        // (1.10 + 1.30 + 1.15)/3
        assert!((row.t_all.mean().unwrap() - 3.55 / 3.0).abs() < 1e-9);
        // (2 + 3 + 2)/3
        assert!((row.card.mean().unwrap() - 7.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn lossy_equals_direct_summarization_of_detail() {
        let db = figure2_database();
        let lossless = SummaryTable::summarize_lossless(&db, "d1", "p_bb");
        let lossy = lossless
            .derive_lossy(PatternShape::new("d1", "p_bb", vec![true, false]))
            .unwrap();
        // Compare against aggregating detail directly.
        let (direct, n) = db.aggregate(&CallPattern::new(
            "d1",
            "p_bb",
            vec![PatArg::Const(Value::str("a")), PatArg::Bound],
        ));
        let row = lossy
            .lookup(&CallPattern::new(
                "d1",
                "p_bb",
                vec![PatArg::Const(Value::str("a")), PatArg::Bound],
            ))
            .unwrap();
        assert_eq!(n, 2);
        assert!((row.t_all.mean().unwrap() - direct.t_all_ms.unwrap()).abs() < 1e-9);
        assert!((row.card.mean().unwrap() - direct.cardinality.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn derive_lossy_rejects_non_derivable_shape() {
        let db = figure2_database();
        let lossless = SummaryTable::summarize_lossless(&db, "d2", "q_bf");
        // Adding a dimension is not derivable.
        assert!(lossless
            .derive_lossy(PatternShape::new("d2", "q_bf", vec![true]))
            .is_some());
        assert!(lossless
            .derive_lossy(PatternShape::new("d2", "q_other", vec![false]))
            .is_none());
        let fully_lossy = lossless
            .derive_lossy(PatternShape::new("d2", "q_bf", vec![false]))
            .unwrap();
        assert!(fully_lossy
            .derive_lossy(PatternShape::new("d2", "q_bf", vec![true]))
            .is_none());
    }

    #[test]
    fn summarization_shrinks_storage() {
        let db = figure2_database();
        let lossless = SummaryTable::summarize_lossless(&db, "d1", "p_bb");
        let lossy = lossless
            .derive_lossy(PatternShape::new("d1", "p_bb", vec![false, false]))
            .unwrap();
        assert!(lossy.approx_bytes() < lossless.approx_bytes());
    }

    #[test]
    fn observe_rejects_wrong_call_shape() {
        let mut t = SummaryTable::new(PatternShape::new("d", "f", vec![true]));
        let ok = t.observe(
            &GroundCall::new("d", "f", vec![Value::Int(1)]),
            &CostVector::full(1.0, 2.0, 3.0),
        );
        assert!(ok);
        let wrong_arity = t.observe(
            &GroundCall::new("d", "f", vec![]),
            &CostVector::full(1.0, 2.0, 3.0),
        );
        assert!(!wrong_arity);
        let wrong_fn = t.observe(
            &GroundCall::new("d", "g", vec![Value::Int(1)]),
            &CostVector::full(1.0, 2.0, 3.0),
        );
        assert!(!wrong_fn);
    }

    #[test]
    fn lookup_requires_matching_shape() {
        let db = figure2_database();
        let t = SummaryTable::summarize_lossless(&db, "d1", "p_bf");
        // A $b pattern does not match the all-dimensions shape.
        assert!(t
            .lookup(&CallPattern::new("d1", "p_bf", vec![PatArg::Bound]))
            .is_none());
    }
}
