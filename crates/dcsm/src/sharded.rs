//! Concurrent DCSM access: the [`CostSource`] / [`DcsmView`] traits and the
//! [`ShardedDcsm`] facade.
//!
//! The planner asks "what will this call pattern cost?" ([`CostSource`]) and
//! the executor reports "here is what the call actually cost"
//! ([`DcsmView::record`]). Both route by `(domain, function)`, so the cost
//! statistics partition the same way the answer cache does: each shard owns
//! the complete detail records *and* summary tables for its functions, and
//! the §6.3 relaxation-lattice lookup runs entirely inside one shard.

use crate::estimator::{Dcsm, DcsmConfig, EstimateOutcome};
use hermes_common::sync::Mutex;
use hermes_common::{shard_index, CallPattern, GroundCall, SimInstant};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::MutexGuard;

/// Read-side cost estimation. `estimate_plan`/`choose_plan` are generic
/// over this, so a plain [`Dcsm`], a `Mutex<Dcsm>`, and a [`ShardedDcsm`]
/// all plug into the optimizer unchanged.
pub trait CostSource {
    /// Estimates the cost of a call pattern (§6.3 pattern relaxation).
    fn cost(&self, pattern: &CallPattern) -> EstimateOutcome;

    /// Estimated saving, in milliseconds, from materializing a subplan
    /// with these call patterns once instead of executing it
    /// `occurrences` times — [`Dcsm::estimate_subplan_savings`] made
    /// available through every shared-state view, so the runtime subplan
    /// cache prices admission with the analyzer's own HA073 measure.
    fn estimate_subplan_savings(&self, patterns: &[CallPattern], occurrences: usize) -> f64 {
        let per_exec: f64 = patterns.iter().map(|p| self.cost(p).t_all_ms()).sum();
        per_exec * occurrences.saturating_sub(1) as f64
    }
}

/// Shared-state DCSM access for the executor: estimation plus observation
/// recording. All methods take `&self`; implementations provide interior
/// mutability.
pub trait DcsmView: CostSource {
    /// Records an observed call outcome into the detail database and
    /// summary tables.
    fn record(
        &self,
        call: &GroundCall,
        t_first_ms: Option<f64>,
        t_all_ms: Option<f64>,
        cardinality: Option<f64>,
        now: SimInstant,
    );
}

impl CostSource for Dcsm {
    fn cost(&self, pattern: &CallPattern) -> EstimateOutcome {
        Dcsm::cost(self, pattern)
    }
}

impl CostSource for Mutex<Dcsm> {
    fn cost(&self, pattern: &CallPattern) -> EstimateOutcome {
        self.lock().cost(pattern)
    }
}

impl DcsmView for Mutex<Dcsm> {
    fn record(
        &self,
        call: &GroundCall,
        t_first_ms: Option<f64>,
        t_all_ms: Option<f64>,
        cardinality: Option<f64>,
        now: SimInstant,
    ) {
        self.lock()
            .record(call, t_first_ms, t_all_ms, cardinality, now);
    }
}

/// N independently locked DCSM shards partitioned by `(domain, function)`.
///
/// Same lock discipline as `ShardedCim`: every operation holds at most one
/// shard lock, aggregates visit shards sequentially. Source-provided
/// native estimators are *not* replicated (they are registered against a
/// live `Dcsm`); a concurrent deployment wanting them registers per shard
/// via [`ShardedDcsm::with_shard`].
#[derive(Debug)]
pub struct ShardedDcsm {
    shards: Vec<Mutex<Dcsm>>,
    contention: AtomicU64,
}

impl ShardedDcsm {
    /// `n` empty shards with default configuration (`n` clamped to ≥ 1).
    pub fn new(n: usize) -> Self {
        ShardedDcsm::with_config(DcsmConfig::default(), n)
    }

    /// `n` empty shards sharing one configuration.
    pub fn with_config(config: DcsmConfig, n: usize) -> Self {
        let n = n.max(1);
        ShardedDcsm {
            shards: (0..n)
                .map(|_| Mutex::new(Dcsm::with_config(config.clone())))
                .collect(),
            contention: AtomicU64::new(0),
        }
    }

    /// `n` shards seeded from an existing estimator: configuration is
    /// copied and the detail database is replayed into the owning shards
    /// (summary tables rebuild incrementally from the replay). Native
    /// estimators are not carried over.
    pub fn from_dcsm(source: &Dcsm, n: usize) -> Self {
        let sharded = ShardedDcsm::with_config(source.config().clone(), n);
        let db = source.db();
        for (domain, function) in db.functions() {
            let shard = &sharded.shards[shard_index(&domain, &function, sharded.shards.len())];
            let mut guard = shard.lock();
            for r in db.records_for(&domain, &function) {
                guard.record(
                    &r.call,
                    r.vector.t_first_ms,
                    r.vector.t_all_ms,
                    r.vector.cardinality,
                    r.recorded_at,
                );
            }
        }
        sharded
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn locked(&self, domain: &str, function: &str) -> MutexGuard<'_, Dcsm> {
        let shard = &self.shards[shard_index(domain, function, self.shards.len())];
        match shard.try_lock() {
            Some(guard) => guard,
            None => {
                self.contention.fetch_add(1, Ordering::Relaxed);
                shard.lock()
            }
        }
    }

    /// Total detail records across shards.
    pub fn records(&self) -> usize {
        self.shards.iter().map(|s| s.lock().db().len()).sum()
    }

    /// Total summary tables across shards.
    pub fn tables(&self) -> usize {
        self.shards.iter().map(|s| s.lock().tables().len()).sum()
    }

    /// Approximate resident bytes across shards.
    pub fn approx_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().approx_bytes()).sum()
    }

    /// Blocking shard-lock acquisitions so far.
    pub fn lock_contention(&self) -> u64 {
        self.contention.load(Ordering::Relaxed)
    }

    /// Runs `f` with the shard owning `(domain, function)` locked —
    /// registration hook for per-shard native estimators and for tests.
    pub fn with_shard<R>(&self, domain: &str, function: &str, f: impl FnOnce(&mut Dcsm) -> R) -> R {
        f(&mut self.locked(domain, function))
    }
}

impl CostSource for ShardedDcsm {
    fn cost(&self, pattern: &CallPattern) -> EstimateOutcome {
        self.locked(&pattern.domain, &pattern.function)
            .cost(pattern)
    }
}

impl DcsmView for ShardedDcsm {
    fn record(
        &self,
        call: &GroundCall,
        t_first_ms: Option<f64>,
        t_all_ms: Option<f64>,
        cardinality: Option<f64>,
        now: SimInstant,
    ) {
        self.locked(&call.domain, &call.function).record(
            call,
            t_first_ms,
            t_all_ms,
            cardinality,
            now,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::Value;

    fn call(function: &str, k: i64) -> GroundCall {
        GroundCall::new("d", function, vec![Value::Int(k)])
    }

    #[test]
    fn record_then_cost_round_trips_in_one_shard() {
        let sharded = ShardedDcsm::new(4);
        for k in 0..5 {
            sharded.record(
                &call("f", k),
                Some(10.0),
                Some(40.0),
                Some(8.0),
                SimInstant::EPOCH,
            );
        }
        assert_eq!(sharded.records(), 5);
        let estimate = sharded.cost(&call("f", 2).pattern());
        assert_eq!(estimate.t_all_ms(), 40.0);
        // Only the owning shard holds the function's records.
        let mut owners = 0;
        for i in 0..sharded.shard_count() {
            let held = {
                let shard = &sharded.shards[i];
                shard.lock().db().len()
            };
            if held > 0 {
                owners += 1;
            }
        }
        assert_eq!(owners, 1);
    }

    #[test]
    fn from_dcsm_replays_detail_records() {
        let mut source = Dcsm::new();
        for k in 0..4 {
            source.record(
                &call("f", k),
                Some(5.0),
                Some(20.0),
                Some(3.0),
                SimInstant::EPOCH,
            );
            source.record(
                &call("g", k),
                Some(7.0),
                Some(30.0),
                Some(4.0),
                SimInstant::EPOCH,
            );
        }
        let sharded = ShardedDcsm::from_dcsm(&source, 3);
        assert_eq!(sharded.records(), 8);
        assert_eq!(sharded.cost(&call("g", 1).pattern()).t_all_ms(), 30.0);
    }
}
