//! Cost vectors and aggregation primitives.

use std::fmt;

/// A (possibly partial) cost vector `[T_first, T_all, Card]` (§6).
///
/// Fields are optional because observations can be incomplete: in
/// interactive mode the user may stop before all answers arrive, so a
/// record may carry `t_first` but not `t_all` or `card`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostVector {
    /// Time to the first answer, milliseconds.
    pub t_first_ms: Option<f64>,
    /// Time to all answers, milliseconds.
    pub t_all_ms: Option<f64>,
    /// Answer-set cardinality.
    pub cardinality: Option<f64>,
}

impl CostVector {
    /// A fully-populated vector.
    pub fn full(t_first_ms: f64, t_all_ms: f64, cardinality: f64) -> Self {
        CostVector {
            t_first_ms: Some(t_first_ms),
            t_all_ms: Some(t_all_ms),
            cardinality: Some(cardinality),
        }
    }

    /// True if every component is present.
    pub fn is_complete(&self) -> bool {
        self.t_first_ms.is_some() && self.t_all_ms.is_some() && self.cardinality.is_some()
    }

    /// Fills missing components of `self` from `other`.
    pub fn or(&self, other: &CostVector) -> CostVector {
        CostVector {
            t_first_ms: self.t_first_ms.or(other.t_first_ms),
            t_all_ms: self.t_all_ms.or(other.t_all_ms),
            cardinality: self.cardinality.or(other.cardinality),
        }
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let show = |x: Option<f64>| match x {
            Some(v) => format!("{v:.2}"),
            None => "?".to_string(),
        };
        write!(
            f,
            "[Tf={}, Ta={}, Card={}]",
            show(self.t_first_ms),
            show(self.t_all_ms),
            show(self.cardinality)
        )
    }
}

/// An incrementally-updatable (optionally decayed) mean.
///
/// With `decay = None` this is the plain average the paper uses. With
/// `decay = Some(λ)` each existing observation's weight is multiplied by
/// `exp(-λ · Δt_ms)` before a new one is added — the "giving precedence to
/// more recent statistics" extension §6.2 mentions as future work.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeanAgg {
    sum: f64,
    weight: f64,
    /// Number of raw observations folded in (the paper's `l` column).
    pub count: u64,
}

impl MeanAgg {
    /// An empty aggregate.
    pub fn new() -> Self {
        MeanAgg::default()
    }

    /// Adds an observation with weight 1.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.weight += 1.0;
        self.count += 1;
    }

    /// Decays all existing weight by `factor` (≤ 1).
    pub fn decay(&mut self, factor: f64) {
        let f = factor.clamp(0.0, 1.0);
        self.sum *= f;
        self.weight *= f;
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: &MeanAgg) {
        self.sum += other.sum;
        self.weight += other.weight;
        self.count += other.count;
    }

    /// The current mean, if any observation survives.
    pub fn mean(&self) -> Option<f64> {
        if self.weight > 1e-12 {
            Some(self.sum / self.weight)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_vector_or_fills_gaps() {
        let partial = CostVector {
            t_first_ms: Some(1.0),
            t_all_ms: None,
            cardinality: None,
        };
        let fallback = CostVector::full(9.0, 5.0, 3.0);
        let merged = partial.or(&fallback);
        assert_eq!(merged.t_first_ms, Some(1.0));
        assert_eq!(merged.t_all_ms, Some(5.0));
        assert_eq!(merged.cardinality, Some(3.0));
        assert!(merged.is_complete());
        assert!(!partial.is_complete());
    }

    #[test]
    fn display_marks_missing() {
        let v = CostVector {
            t_first_ms: Some(1.5),
            t_all_ms: None,
            cardinality: Some(2.0),
        };
        assert_eq!(v.to_string(), "[Tf=1.50, Ta=?, Card=2.00]");
    }

    #[test]
    fn mean_agg_plain_average() {
        let mut m = MeanAgg::new();
        assert_eq!(m.mean(), None);
        m.add(2.0);
        m.add(4.0);
        assert_eq!(m.mean(), Some(3.0));
        assert_eq!(m.count, 2);
    }

    #[test]
    fn mean_agg_merge() {
        let mut a = MeanAgg::new();
        a.add(1.0);
        let mut b = MeanAgg::new();
        b.add(3.0);
        b.add(5.0);
        a.merge(&b);
        assert_eq!(a.mean(), Some(3.0));
        assert_eq!(a.count, 3);
    }

    #[test]
    fn decay_prefers_recent() {
        let mut m = MeanAgg::new();
        m.add(100.0); // old observation
        m.decay(0.1);
        m.add(10.0); // recent observation
        let mean = m.mean().unwrap();
        assert!(mean < 55.0, "decayed mean {mean} should lean recent");
        assert!(mean > 10.0);
        // Count still tracks raw observations.
        assert_eq!(m.count, 2);
    }

    #[test]
    fn full_decay_forgets() {
        let mut m = MeanAgg::new();
        m.add(100.0);
        m.decay(0.0);
        assert_eq!(m.mean(), None);
        m.add(7.0);
        assert_eq!(m.mean(), Some(7.0));
    }
}
