//! # hermes-dcsm
//!
//! The **Domain Cost and Statistics Module** (§6): cost estimation for
//! sources with *no* cost model, built on a statistics cache of actual
//! calls.
//!
//! The module records a cost vector `[T_first, T_all, Card]` for every
//! executed domain call ([`CostVectorDb`]), optionally **summarizes** the
//! detail into per-pattern tables — losslessly (group identical dimension
//! values, §6.2.1) or lossily (drop dimension attributes, §6.2.2) — and
//! answers `cost(pattern)` queries with the §6.3 relaxation algorithm:
//! look for the most specific applicable table row, replacing constants by
//! `$b` until something matches.
//!
//! Sources that *do* have a cost model plug in through
//! [`Dcsm::register_external`]; their (possibly partial) hints are merged
//! with learned statistics, per the paper's extensibility requirement.
//!
//! ```
//! use hermes_dcsm::Dcsm;
//! use hermes_common::{GroundCall, SimInstant, Value, PatArg, CallPattern};
//!
//! let mut dcsm = Dcsm::new();
//! let call = GroundCall::new("d1", "p_bf", vec![Value::str("a")]);
//! dcsm.record(&call, Some(2.0), Some(2.0), Some(3.0), SimInstant::EPOCH);
//! dcsm.record(&call, Some(2.2), Some(2.2), Some(3.0), SimInstant::EPOCH);
//!
//! // Exact-constant pattern: averaged from the two observations.
//! let est = dcsm.cost(&call.pattern());
//! assert!((est.vector.t_all_ms.unwrap() - 2.1).abs() < 1e-9);
//!
//! // $b pattern: falls back to the blanket average.
//! let blanket = CallPattern::new("d1", "p_bf", vec![PatArg::Bound]);
//! assert!(dcsm.cost(&blanket).vector.cardinality.is_some());
//! ```

pub mod cost;
pub mod estimator;
pub mod maintenance;
pub mod persist;
pub mod sharded;
pub mod summary;
pub mod vectordb;

pub use cost::{CostVector, MeanAgg};
pub use estimator::{overlap_makespan, Dcsm, DcsmConfig, EstimateOutcome, EstimateSource};
pub use maintenance::{droppable_dimensions, AccessTracker};
pub use sharded::{CostSource, DcsmView, ShardedDcsm};
pub use summary::{SummaryRow, SummaryTable};
pub use vectordb::{CallRecord, CostVectorDb};
