//! Statistics-cache persistence.
//!
//! The cost vector database is the mediator's accumulated knowledge about
//! source behaviour; §6's whole premise is that this knowledge is hard to
//! come by (every record cost a real remote call), so it is worth keeping
//! across restarts. One record per line:
//!
//! ```text
//! <call> "\t" <t_first|-> "\t" <t_all|-> "\t" <card|-> "\t" <recorded_at µs>
//! ```
//!
//! Floats are serialized as bit-exact hex so a save/load cycle never
//! perturbs an estimate.

use crate::cost::CostVector;
use crate::vectordb::CostVectorDb;
use hermes_common::wire::{encode_call, Decoder};
use hermes_common::{HermesError, Result, SimDuration, SimInstant};
use std::io::{BufRead, Write};

const HEADER: &str = "hermes-cost-vector-db v1";

fn write_component(v: Option<f64>, out: &mut String) {
    match v {
        Some(x) => {
            out.push_str(&format!("{:016x}", x.to_bits()));
        }
        None => out.push('-'),
    }
}

fn read_component(text: &str, what: &str) -> Result<Option<f64>> {
    if text == "-" {
        return Ok(None);
    }
    u64::from_str_radix(text, 16)
        .map(|bits| Some(f64::from_bits(bits)))
        .map_err(|e| HermesError::Io(format!("bad {what} `{text}`: {e}")))
}

/// Writes every record to `out`.
pub fn save<W: Write>(db: &CostVectorDb, mut out: W) -> Result<()> {
    writeln!(out, "{HEADER}")?;
    for (domain, function) in db.functions() {
        for r in db.records_for(&domain, &function) {
            let mut line = String::new();
            encode_call(&r.call, &mut line);
            line.push('\t');
            write_component(r.vector.t_first_ms, &mut line);
            line.push('\t');
            write_component(r.vector.t_all_ms, &mut line);
            line.push('\t');
            write_component(r.vector.cardinality, &mut line);
            line.push('\t');
            line.push_str(&r.recorded_at.as_micros().to_string());
            writeln!(out, "{line}")?;
        }
    }
    Ok(())
}

/// Reads records from `input` into a fresh database.
pub fn load<R: BufRead>(input: R) -> Result<CostVectorDb> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| HermesError::Io("empty statistics file".into()))??;
    if header != HEADER {
        return Err(HermesError::Io(format!(
            "unrecognized statistics header `{header}`"
        )));
    }
    let mut db = CostVectorDb::new();
    for (lineno, line) in lines.enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(HermesError::Io(format!(
                "statistics line {}: expected 5 fields, got {}",
                lineno + 2,
                fields.len()
            )));
        }
        let mut d = Decoder::new(fields[0]);
        let call = d.call()?;
        let vector = CostVector {
            t_first_ms: read_component(fields[1], "t_first")?,
            t_all_ms: read_component(fields[2], "t_all")?,
            cardinality: read_component(fields[3], "cardinality")?,
        };
        let micros: u64 = fields[4].parse().map_err(|e| {
            HermesError::Io(format!(
                "statistics line {}: bad timestamp: {e}",
                lineno + 2
            ))
        })?;
        db.record(
            call,
            vector,
            SimInstant::EPOCH + SimDuration::from_micros(micros),
        );
    }
    Ok(db)
}

/// Saves to a file path.
pub fn save_to_path(db: &CostVectorDb, path: &std::path::Path) -> Result<()> {
    let file = std::fs::File::create(path)?;
    save(db, std::io::BufWriter::new(file))
}

/// Loads from a file path.
pub fn load_from_path(path: &std::path::Path) -> Result<CostVectorDb> {
    let file = std::fs::File::open(path)?;
    load(std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectordb::figure2_database;
    use hermes_common::{CallPattern, PatArg, Value};

    #[test]
    fn roundtrip_preserves_aggregates_exactly() {
        let db = figure2_database();
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let loaded = load(std::io::Cursor::new(&buf)).unwrap();
        assert_eq!(loaded.len(), db.len());
        for (domain, function) in db.functions() {
            assert_eq!(
                loaded.records_for(&domain, &function),
                db.records_for(&domain, &function)
            );
        }
        // Aggregates are bit-exact across the roundtrip.
        let p = CallPattern::new("d1", "p_bf", vec![PatArg::Const(Value::str("a"))]);
        let (v, n) = loaded.aggregate(&p);
        let (v0, n0) = db.aggregate(&p);
        assert_eq!((v, n), (v0, n0));
    }

    #[test]
    fn partial_vectors_roundtrip() {
        let mut db = CostVectorDb::new();
        db.record(
            hermes_common::GroundCall::new("d", "f", vec![]),
            CostVector {
                t_first_ms: Some(1.25),
                t_all_ms: None,
                cardinality: None,
            },
            SimInstant::EPOCH,
        );
        let mut buf = Vec::new();
        save(&db, &mut buf).unwrap();
        let loaded = load(std::io::Cursor::new(&buf)).unwrap();
        let r = &loaded.records_for("d", "f")[0];
        assert_eq!(r.vector.t_first_ms, Some(1.25));
        assert_eq!(r.vector.t_all_ms, None);
    }

    #[test]
    fn header_and_shape_validation() {
        assert!(load(std::io::Cursor::new(b"wrong\n".as_slice())).is_err());
        let bad = format!("{HEADER}\nS1:dS1:fA0;\tzz\t-\t-\t0\n");
        assert!(load(std::io::Cursor::new(bad.as_bytes())).is_err());
        let short = format!("{HEADER}\nS1:dS1:fA0;\t-\t-\n");
        assert!(load(std::io::Cursor::new(short.as_bytes())).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("hermes-dcsm-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.txt");
        save_to_path(&figure2_database(), &path).unwrap();
        let loaded = load_from_path(&path).unwrap();
        assert_eq!(loaded.len(), 13);
        std::fs::remove_dir_all(&dir).ok();
    }
}
