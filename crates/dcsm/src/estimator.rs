//! The DCSM facade: recording, summarization management, and the §6.3
//! pattern-relaxation cost estimation algorithm.

use crate::cost::CostVector;
use crate::summary::SummaryTable;
use crate::vectordb::CostVectorDb;
use hermes_common::{CallPattern, GroundCall, PatternShape, SimInstant};
use hermes_domains::NativeEstimator;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Configuration of the module.
#[derive(Clone, Debug)]
pub struct DcsmConfig {
    /// Keep full-detail records (the cost vector database). Disabling
    /// models a deployment that *only* maintains summaries.
    pub keep_detail: bool,
    /// Incrementally fold new observations into existing summary tables.
    pub online_update: bool,
    /// Recency decay applied to a summary row before each new observation
    /// (`None` = plain averages, the paper's default).
    pub recency_decay: Option<f64>,
    /// Last-resort estimate when nothing is known about a call.
    pub default_prior: CostVector,
}

impl Default for DcsmConfig {
    fn default() -> Self {
        DcsmConfig {
            keep_detail: true,
            online_update: true,
            recency_decay: None,
            default_prior: CostVector::full(250.0, 1_000.0, 10.0),
        }
    }
}

/// Where an estimate came from (reported for diagnostics and experiments).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EstimateSource {
    /// A summary-table row, after `relaxations` constants became `$b`.
    Summary {
        /// The shape of the table that answered.
        shape: PatternShape,
        /// Number of relaxation steps from the asked pattern.
        relaxations: usize,
    },
    /// Aggregated on the fly from detail records.
    Detail {
        /// Records aggregated.
        records: usize,
        /// Number of relaxation steps from the asked pattern.
        relaxations: usize,
    },
    /// Fully answered by the domain's own estimator.
    External,
    /// Nothing known: the configured prior.
    Prior,
}

/// A cost estimate plus provenance and the work the lookup performed.
#[derive(Clone, Debug)]
pub struct EstimateOutcome {
    /// The estimate. Components the source couldn't provide are filled
    /// from the prior, so the vector is always complete.
    pub vector: CostVector,
    /// Provenance.
    pub source: EstimateSource,
    /// Rows/records examined — the §6.2 "expensive aggregation" metric the
    /// summarization-tradeoff experiment plots.
    pub lookup_work: usize,
}

impl EstimateOutcome {
    /// Time to all answers, ms (always present).
    pub fn t_all_ms(&self) -> f64 {
        self.vector.t_all_ms.expect("estimate is complete")
    }

    /// Time to first answer, ms (always present).
    pub fn t_first_ms(&self) -> f64 {
        self.vector.t_first_ms.expect("estimate is complete")
    }

    /// Cardinality (always present).
    pub fn cardinality(&self) -> f64 {
        self.vector.cardinality.expect("estimate is complete")
    }
}

/// The Domain Cost and Statistics Module.
pub struct Dcsm {
    config: DcsmConfig,
    db: CostVectorDb,
    tables: HashMap<PatternShape, SummaryTable>,
    external: HashMap<Arc<str>, Arc<dyn NativeEstimator>>,
    /// Lookup-shape counters driving table maintenance (§6.2: "watch the
    /// access patterns for the tables"). Interior mutability because
    /// `cost` takes `&self`.
    tracker: hermes_common::sync::Mutex<crate::maintenance::AccessTracker>,
}

impl Default for Dcsm {
    fn default() -> Self {
        Dcsm::new()
    }
}

impl Dcsm {
    /// A DCSM with default configuration.
    pub fn new() -> Self {
        Dcsm::with_config(DcsmConfig::default())
    }

    /// A DCSM with explicit configuration.
    pub fn with_config(config: DcsmConfig) -> Self {
        Dcsm {
            config,
            db: CostVectorDb::new(),
            tables: HashMap::new(),
            external: HashMap::new(),
            tracker: hermes_common::sync::Mutex::new(crate::maintenance::AccessTracker::new()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &DcsmConfig {
        &self.config
    }

    /// The detail database.
    pub fn db(&self) -> &CostVectorDb {
        &self.db
    }

    /// The summary tables, keyed by shape.
    pub fn tables(&self) -> &HashMap<PatternShape, SummaryTable> {
        &self.tables
    }

    /// Registers a source-provided estimator for a domain (§6: "if a
    /// domain already provides a cost estimation module, the DCSM can be
    /// connected to them").
    pub fn register_external(
        &mut self,
        domain: impl Into<Arc<str>>,
        est: Arc<dyn NativeEstimator>,
    ) {
        self.external.insert(domain.into(), est);
    }

    /// Records an executed call's observed costs.
    pub fn record(
        &mut self,
        call: &GroundCall,
        t_first_ms: Option<f64>,
        t_all_ms: Option<f64>,
        cardinality: Option<f64>,
        now: SimInstant,
    ) {
        let vector = CostVector {
            t_first_ms,
            t_all_ms,
            cardinality,
        };
        if self.config.keep_detail {
            self.db.record(call.clone(), vector, now);
        }
        if self.config.online_update {
            let decay = self.config.recency_decay;
            for table in self.tables.values_mut() {
                if table.shape.domain == call.domain && table.shape.function == call.function {
                    if let Some(d) = decay {
                        table.decay_all(d);
                    }
                    table.observe(call, &vector);
                }
            }
        }
    }

    /// Builds (or rebuilds) the lossless summary table for a function from
    /// the detail database (§6.2.1). Returns its shape.
    pub fn build_lossless(&mut self, domain: &str, function: &str) -> PatternShape {
        let table = SummaryTable::summarize_lossless(&self.db, domain, function);
        let shape = table.shape.clone();
        self.tables.insert(shape.clone(), table);
        shape
    }

    /// Adds a lossy table with the given dimension mask, derived from the
    /// lossless summary (built on demand) (§6.2.2).
    pub fn build_lossy(
        &mut self,
        domain: &str,
        function: &str,
        const_mask: Vec<bool>,
    ) -> Option<PatternShape> {
        let lossless = SummaryTable::summarize_lossless(&self.db, domain, function);
        let shape = PatternShape::new(domain, function, const_mask);
        let table = lossless.derive_lossy(shape.clone())?;
        self.tables.insert(shape.clone(), table);
        Some(shape)
    }

    /// Runs one maintenance epoch (§6.2): materializes a summary table for
    /// every shape the estimator was asked about at least `min_hot` times,
    /// drops tables colder than `min_cold` lookups, and resets the
    /// counters. Returns `(created, dropped)` shape lists. Blanket tables
    /// are never dropped — they are the last-resort fallback and cost a
    /// single row.
    pub fn maintain(
        &mut self,
        min_hot: u64,
        min_cold: u64,
    ) -> (Vec<PatternShape>, Vec<PatternShape>) {
        let (hot, cold) = {
            let tracker = self.tracker.lock();
            let hot: Vec<PatternShape> = tracker
                .hot_shapes(min_hot)
                .into_iter()
                .map(|(s, _)| s)
                .filter(|s| !self.tables.contains_key(s))
                .collect();
            let cold: Vec<PatternShape> = tracker
                .cold_shapes(self.tables.keys(), min_cold)
                .into_iter()
                .filter(|s| s.dimension_count() > 0)
                .collect();
            (hot, cold)
        };
        let mut created = Vec::new();
        for shape in hot {
            // Derive from detail when available; otherwise start empty and
            // let online updates fill it.
            let lossless =
                SummaryTable::summarize_lossless(&self.db, &shape.domain, &shape.function);
            let table = if lossless.shape.const_mask.len() == shape.const_mask.len() {
                lossless.derive_lossy(shape.clone())
            } else {
                None
            };
            self.tables.insert(
                shape.clone(),
                table.unwrap_or_else(|| SummaryTable::new(shape.clone())),
            );
            created.push(shape);
        }
        let mut dropped = Vec::new();
        for shape in cold {
            if self.tables.remove(&shape).is_some() {
                dropped.push(shape);
            }
        }
        self.tracker.lock().reset();
        (created, dropped)
    }

    /// Replays every record of `db` into this DCSM (detail and/or online
    /// table updates, per configuration) — how persisted statistics are
    /// re-adopted after a restart.
    pub fn replay_db(&mut self, db: &CostVectorDb) {
        for (domain, function) in db.functions() {
            for r in db.records_for(&domain, &function) {
                self.record(
                    &r.call,
                    r.vector.t_first_ms,
                    r.vector.t_all_ms,
                    r.vector.cardinality,
                    r.recorded_at,
                );
            }
        }
    }

    /// Ensures an (initially empty) summary table of `shape` exists, so
    /// online updates accumulate into it — how a deployment that keeps no
    /// detail bootstraps its tables.
    pub fn ensure_table(&mut self, shape: PatternShape) {
        self.tables
            .entry(shape.clone())
            .or_insert_with(|| SummaryTable::new(shape));
    }

    /// Drops a summary table.
    pub fn drop_table(&mut self, shape: &PatternShape) -> bool {
        self.tables.remove(shape).is_some()
    }

    /// Drops the detail records of a function (after summarizing, the §6.2
    /// storage saving). Returns records dropped.
    pub fn drop_detail(&mut self, domain: &str, function: &str) -> usize {
        self.db.drop_function(domain, function)
    }

    /// Total approximate storage of detail + summaries.
    pub fn approx_bytes(&self) -> usize {
        self.db.approx_bytes()
            + self
                .tables
                .values()
                .map(SummaryTable::approx_bytes)
                .sum::<usize>()
    }

    /// The §6.3 estimation algorithm.
    ///
    /// 1. Ask the domain's external estimator, if registered; a complete
    ///    answer wins outright.
    /// 2. Walk the relaxation lattice from the asked pattern, most
    ///    specific first (breadth-first, so fewer `$b`s are preferred):
    ///    at each pattern, probe the summary table of its exact shape,
    ///    then (if detail is kept) aggregate matching detail records.
    /// 3. Missing components are filled from the external hint, then the
    ///    prior.
    pub fn cost(&self, pattern: &CallPattern) -> EstimateOutcome {
        self.tracker.lock().touch(pattern);
        let hint = self
            .external
            .get(&pattern.domain)
            .and_then(|e| e.estimate(pattern))
            .map(|h| CostVector {
                t_first_ms: h.t_first_ms,
                t_all_ms: h.t_all_ms,
                cardinality: h.cardinality,
            });
        if let Some(h) = &hint {
            if h.is_complete() {
                return EstimateOutcome {
                    vector: *h,
                    source: EstimateSource::External,
                    lookup_work: 0,
                };
            }
        }

        let mut lookup_work = 0usize;
        let mut queue: VecDeque<(CallPattern, usize)> = VecDeque::new();
        let mut visited: std::collections::HashSet<CallPattern> = Default::default();
        queue.push_back((pattern.clone(), 0));
        visited.insert(pattern.clone());

        let mut found: Option<(CostVector, EstimateSource)> = None;
        while let Some((p, relaxations)) = queue.pop_front() {
            // Probe the summary table of this exact shape.
            if let Some(table) = self.tables.get(&p.shape()) {
                lookup_work += 1;
                if let Some(row) = table.lookup(&p) {
                    found = Some((
                        row.vector(),
                        EstimateSource::Summary {
                            shape: p.shape(),
                            relaxations,
                        },
                    ));
                    break;
                }
            }
            // Fall back to detail aggregation at this level.
            if self.config.keep_detail {
                let (v, matched) = self.db.aggregate(&p);
                lookup_work += matched;
                if matched > 0 {
                    found = Some((
                        v,
                        EstimateSource::Detail {
                            records: matched,
                            relaxations,
                        },
                    ));
                    break;
                }
            }
            for r in p.relaxations() {
                if visited.insert(r.clone()) {
                    queue.push_back((r, relaxations + 1));
                }
            }
        }

        let (vector, source) = match found {
            Some((v, s)) => (v, s),
            None => (CostVector::default(), EstimateSource::Prior),
        };
        // Fill gaps: learned stats > external hint > prior.
        let mut filled = vector;
        if let Some(h) = &hint {
            filled = filled.or(h);
        }
        let vector = filled.or(&self.config.default_prior);
        EstimateOutcome {
            vector,
            source,
            lookup_work,
        }
    }

    /// Estimated saving, in milliseconds, from materializing a subplan with
    /// these call patterns once instead of executing it `occurrences` times
    /// (the static analyzer's `HA073` sharing estimate). The per-execution
    /// cost is the sequential sum of the patterns' `t_all` estimates — a
    /// deliberate upper bound: sharing saves the most exactly when the
    /// calls could not overlap anyway.
    pub fn estimate_subplan_savings(&self, patterns: &[CallPattern], occurrences: usize) -> f64 {
        let per_exec: f64 = patterns.iter().map(|p| self.cost(p).t_all_ms()).sum();
        per_exec * occurrences.saturating_sub(1) as f64
    }
}

/// Greedy list-scheduling makespan of a parallel dispatch group — the
/// single overlap formula shared by the plan cost model and the executor,
/// so estimates and simulated execution agree.
///
/// Each call, in order, occupies the earliest-free of `slots` dispatch
/// slots for its duration plus `dispatch_overhead_ms` (the scheduler's
/// per-call bookkeeping); the makespan is when the last slot drains.
/// `slots = 1` degenerates to the sequential sum (plus overheads); with
/// unlimited slots it approaches `max(durations) + overhead`.
pub fn overlap_makespan(durations_ms: &[f64], slots: usize, dispatch_overhead_ms: f64) -> f64 {
    let slots = slots.max(1).min(durations_ms.len().max(1));
    let mut free = vec![0.0f64; slots];
    for &d in durations_ms {
        let slot = free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("at least one slot");
        free[slot] += d.max(0.0) + dispatch_overhead_ms.max(0.0);
    }
    free.iter().copied().fold(0.0, f64::max)
}

impl std::fmt::Debug for Dcsm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dcsm")
            .field("detail_records", &self.db.len())
            .field("tables", &self.tables.len())
            .field("external", &self.external.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectordb::figure2_database;
    use hermes_common::{PatArg, Value};
    use hermes_domains::CostHint;

    fn dcsm_fig2() -> Dcsm {
        let mut d = Dcsm::new();
        let db = figure2_database();
        for (dom, func) in db.functions() {
            for r in db.records_for(&dom, &func) {
                d.record(
                    &r.call,
                    r.vector.t_first_ms,
                    r.vector.t_all_ms,
                    r.vector.cardinality,
                    r.recorded_at,
                );
            }
        }
        d
    }

    #[test]
    fn detail_estimation_matches_paper_example() {
        let d = dcsm_fig2();
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern();
        let est = d.cost(&p);
        assert!((est.t_all_ms() - 2.10).abs() < 1e-9);
        assert!(matches!(
            est.source,
            EstimateSource::Detail {
                records: 2,
                relaxations: 0
            }
        ));
    }

    #[test]
    fn relaxation_to_blanket_when_constant_unseen() {
        let d = dcsm_fig2();
        // 'z' never observed → relax to $b and average all four records.
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("z")]).pattern();
        let est = d.cost(&p);
        assert!((est.t_all_ms() - 9.84 / 4.0 * 0.8).abs() < 1.0); // sanity: near 2.46
        match est.source {
            EstimateSource::Detail { relaxations, .. } => assert_eq!(relaxations, 1),
            other => panic!("expected detail, got {other:?}"),
        }
    }

    #[test]
    fn summary_table_preferred_over_detail() {
        let mut d = dcsm_fig2();
        d.build_lossless("d1", "p_bf");
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern();
        let est = d.cost(&p);
        assert!(matches!(
            est.source,
            EstimateSource::Summary { relaxations: 0, .. }
        ));
        assert!((est.t_all_ms() - 2.10).abs() < 1e-9);
        // Summary lookup is constant work, not 2 records.
        assert_eq!(est.lookup_work, 1);
    }

    #[test]
    fn example_6_3_relaxation_through_lossy_tables() {
        // Mirror of §6.3 Example: three-place call with tables at
        // different shapes; lookup relaxes until something matches.
        let mut d = Dcsm::new();
        let call = |a: i64, b: i64, c: i64| {
            GroundCall::new("d", "f", vec![Value::Int(a), Value::Int(b), Value::Int(c)])
        };
        for i in 0..5 {
            d.record(
                &call(i, i * 2, 2),
                Some(1.0),
                Some(10.0 + i as f64),
                Some(4.0),
                SimInstant::EPOCH,
            );
        }
        // Tables: full detail summary, $b,$b,C  and $b,$b,$b.
        d.build_lossless("d", "f");
        d.build_lossy("d", "f", vec![false, false, true]).unwrap();
        d.build_lossy("d", "f", vec![false, false, false]).unwrap();
        // Drop the detail so only tables answer.
        d.drop_detail("d", "f");

        // Pattern d:f(9, $b, 2): no (9,*,2) in full table; relax → ($b,$b,2)
        // matches the C-table.
        let p = CallPattern::new(
            "d",
            "f",
            vec![
                PatArg::Const(Value::Int(9)),
                PatArg::Bound,
                PatArg::Const(Value::Int(2)),
            ],
        );
        let est = d.cost(&p);
        match &est.source {
            EstimateSource::Summary { shape, relaxations } => {
                assert_eq!(shape.const_mask, vec![false, false, true]);
                assert_eq!(*relaxations, 1);
            }
            other => panic!("expected summary, got {other:?}"),
        }
        // Pattern with C=7 (unseen): relaxes all the way to the blanket.
        let p2 = CallPattern::new(
            "d",
            "f",
            vec![PatArg::Bound, PatArg::Bound, PatArg::Const(Value::Int(7))],
        );
        let est2 = d.cost(&p2);
        match &est2.source {
            EstimateSource::Summary { shape, .. } => {
                assert_eq!(shape.const_mask, vec![false, false, false]);
            }
            other => panic!("expected blanket summary, got {other:?}"),
        }
    }

    #[test]
    fn prior_when_nothing_known() {
        let d = Dcsm::new();
        let est = d.cost(&GroundCall::new("x", "y", vec![]).pattern());
        assert_eq!(est.source, EstimateSource::Prior);
        assert!(est.vector.is_complete());
        assert_eq!(est.t_all_ms(), 1_000.0);
    }

    #[test]
    fn external_estimator_complete_answer_wins() {
        struct Fixed;
        impl NativeEstimator for Fixed {
            fn estimate(&self, _: &CallPattern) -> Option<CostHint> {
                Some(CostHint {
                    t_first_ms: Some(1.0),
                    t_all_ms: Some(2.0),
                    cardinality: Some(3.0),
                })
            }
        }
        let mut d = dcsm_fig2();
        d.register_external("d1", Arc::new(Fixed));
        let est = d.cost(&GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern());
        assert_eq!(est.source, EstimateSource::External);
        assert_eq!(est.t_all_ms(), 2.0);
        // Other domains unaffected.
        let est2 = d.cost(&GroundCall::new("d2", "q_ff", vec![]).pattern());
        assert!(matches!(est2.source, EstimateSource::Detail { .. }));
    }

    #[test]
    fn partial_external_hint_fills_missing_components() {
        struct CardOnly;
        impl NativeEstimator for CardOnly {
            fn estimate(&self, _: &CallPattern) -> Option<CostHint> {
                Some(CostHint {
                    t_first_ms: None,
                    t_all_ms: None,
                    cardinality: Some(42.0),
                })
            }
        }
        let mut d = Dcsm::new();
        d.register_external("ext", Arc::new(CardOnly));
        // record only timing (no cardinality) for a call
        let call = GroundCall::new("ext", "f", vec![]);
        d.record(&call, Some(5.0), Some(9.0), None, SimInstant::EPOCH);
        let est = d.cost(&call.pattern());
        assert_eq!(est.vector.t_all_ms, Some(9.0)); // learned
        assert_eq!(est.vector.cardinality, Some(42.0)); // external hint
    }

    #[test]
    fn online_update_keeps_tables_fresh() {
        let mut d = dcsm_fig2();
        d.build_lossless("d1", "p_bf");
        let call = GroundCall::new("d1", "p_bf", vec![Value::str("a")]);
        d.record(&call, None, Some(8.0), Some(3.0), SimInstant::EPOCH);
        let est = d.cost(&call.pattern());
        // New average over 3 observations: (2.0+2.2+8.0)/3
        assert!((est.t_all_ms() - 12.2 / 3.0).abs() < 1e-9);
        assert!(matches!(est.source, EstimateSource::Summary { .. }));
    }

    #[test]
    fn recency_decay_weights_recent_observations() {
        let cfg = DcsmConfig {
            recency_decay: Some(0.5),
            keep_detail: false,
            ..DcsmConfig::default()
        };
        let mut d = Dcsm::with_config(cfg);
        let call = GroundCall::new("d", "f", vec![]);
        // Create the (empty) blanket table so online updates land somewhere.
        d.build_lossless("d", "f");
        // Seed the table shape: with no detail, build_lossless produced an
        // arity-0 shape only if records existed; record directly instead.
        d.record(&call, None, Some(100.0), Some(1.0), SimInstant::EPOCH);
        d.record(&call, None, Some(10.0), Some(1.0), SimInstant::EPOCH);
        let est = d.cost(&call.pattern());
        // Plain average would be 55; decayed mean must lean toward 10.
        assert!(est.t_all_ms() < 45.0, "decayed estimate {}", est.t_all_ms());
    }

    #[test]
    fn without_detail_unseen_calls_fall_to_prior() {
        let cfg = DcsmConfig {
            keep_detail: false,
            ..DcsmConfig::default()
        };
        let d = Dcsm::with_config(cfg);
        let est = d.cost(&GroundCall::new("d", "f", vec![]).pattern());
        assert_eq!(est.source, EstimateSource::Prior);
    }

    #[test]
    fn maintenance_materializes_hot_shapes_and_drops_cold_tables() {
        let mut d = dcsm_fig2();
        // Ask repeatedly for the ('a')-shaped pattern of p_bf.
        let hot_pattern = GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern();
        for _ in 0..5 {
            d.cost(&hot_pattern);
        }
        // A cold table that nobody asks about.
        d.build_lossless("d2", "q_bf");
        let (created, dropped) = d.maintain(3, 1);
        assert_eq!(created.len(), 1);
        assert_eq!(created[0].const_mask, vec![true]);
        assert_eq!(dropped.len(), 1, "cold q_bf table dropped");
        // The hot shape now answers from a summary table.
        let est = d.cost(&hot_pattern);
        assert!(matches!(est.source, EstimateSource::Summary { .. }));
        assert!((est.t_all_ms() - 2.10).abs() < 1e-9);
        // Counters were reset: an immediate second epoch creates nothing
        // (1 lookup < min_hot) and drops nothing above min_cold 0.
        let (c2, d2) = d.maintain(3, 0);
        assert!(c2.is_empty());
        assert!(d2.is_empty());
    }

    #[test]
    fn maintenance_never_drops_blanket_tables() {
        let mut d = dcsm_fig2();
        d.build_lossy("d2", "q_ff", vec![]);
        let (_, dropped) = d.maintain(1_000, 1_000);
        assert!(
            dropped.is_empty(),
            "blanket table must survive: {dropped:?}"
        );
    }

    #[test]
    fn storage_accounting_moves_from_detail_to_summary() {
        let mut d = dcsm_fig2();
        let detail_only = d.approx_bytes();
        d.build_lossless("d1", "p_bf");
        let with_table = d.approx_bytes();
        assert!(with_table > detail_only);
        d.drop_detail("d1", "p_bf");
        let summarized = d.approx_bytes();
        assert!(summarized < with_table);
    }
}
