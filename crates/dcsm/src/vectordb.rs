//! The cost vector database: full-detail statistics of executed calls
//! (§6.1, the tables of Figure 2).

use crate::cost::CostVector;
use hermes_common::{CallPattern, GroundCall, SimInstant, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One recorded observation: `(domain call, cost vector, record_time)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CallRecord {
    /// The executed call.
    pub call: GroundCall,
    /// The observed cost vector (possibly partial).
    pub vector: CostVector,
    /// Virtual time of the observation.
    pub recorded_at: SimInstant,
}

/// Full-detail statistics, one record list per `domain:function`.
#[derive(Clone, Debug, Default)]
pub struct CostVectorDb {
    records: HashMap<(Arc<str>, Arc<str>), Vec<CallRecord>>,
    total: usize,
}

impl CostVectorDb {
    /// An empty database.
    pub fn new() -> Self {
        CostVectorDb::default()
    }

    /// Records an observation.
    pub fn record(&mut self, call: GroundCall, vector: CostVector, recorded_at: SimInstant) {
        self.records
            .entry((call.domain.clone(), call.function.clone()))
            .or_default()
            .push(CallRecord {
                call,
                vector,
                recorded_at,
            });
        self.total += 1;
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Approximate storage footprint in bytes (the §6.2 "heavy burden on
    /// storage" metric the summarization experiments report).
    pub fn approx_bytes(&self) -> usize {
        self.records
            .values()
            .flatten()
            .map(|r| r.call.request_bytes() + 3 * std::mem::size_of::<f64>() + 8)
            .sum()
    }

    /// All records of one `domain:function`.
    pub fn records_for(&self, domain: &str, function: &str) -> &[CallRecord] {
        self.records
            .get(&(Arc::from(domain), Arc::from(function)))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The `(domain, function)` pairs with records, sorted.
    pub fn functions(&self) -> Vec<(Arc<str>, Arc<str>)> {
        let mut keys: Vec<_> = self.records.keys().cloned().collect();
        keys.sort();
        keys
    }

    /// Aggregates the records matching `pattern` with the plain average the
    /// paper uses (§6.1, Example 6.1). Returns the averaged vector and the
    /// number of records aggregated — the "expensive aggregation" work that
    /// summary tables exist to avoid.
    pub fn aggregate(&self, pattern: &CallPattern) -> (CostVector, usize) {
        let mut t_first = (0.0, 0usize);
        let mut t_all = (0.0, 0usize);
        let mut card = (0.0, 0usize);
        let mut matched = 0usize;
        for r in self.records_for(&pattern.domain, &pattern.function) {
            if !pattern.matches(&r.call) {
                continue;
            }
            matched += 1;
            if let Some(v) = r.vector.t_first_ms {
                t_first.0 += v;
                t_first.1 += 1;
            }
            if let Some(v) = r.vector.t_all_ms {
                t_all.0 += v;
                t_all.1 += 1;
            }
            if let Some(v) = r.vector.cardinality {
                card.0 += v;
                card.1 += 1;
            }
        }
        let avg = |(s, n): (f64, usize)| if n > 0 { Some(s / n as f64) } else { None };
        (
            CostVector {
                t_first_ms: avg(t_first),
                t_all_ms: avg(t_all),
                cardinality: avg(card),
            },
            matched,
        )
    }

    /// The distinct argument vectors observed for `domain:function` —
    /// the dimension-value combinations a lossless summary will have rows
    /// for.
    pub fn distinct_args(&self, domain: &str, function: &str) -> Vec<Vec<Value>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in self.records_for(domain, function) {
            if seen.insert(r.call.args.clone()) {
                out.push(r.call.args.clone());
            }
        }
        out
    }

    /// Drops all records for one function (after summarization, §6.2).
    pub fn drop_function(&mut self, domain: &str, function: &str) -> usize {
        match self
            .records
            .remove(&(Arc::from(domain), Arc::from(function)))
        {
            Some(rs) => {
                self.total -= rs.len();
                rs.len()
            }
            None => 0,
        }
    }
}

/// Builds the paper's Figure 2 example tables (T16–T19) as a database —
/// shared by unit tests here and the `fig_2_3_4_summaries` bench.
pub fn figure2_database() -> CostVectorDb {
    let mut db = CostVectorDb::new();
    let t = SimInstant::EPOCH;
    // (T16) d1:p_bf — dimension {A}, metrics (Card, T_a).
    for (a, card, ta) in [
        ("a", 3.0, 2.00),
        ("a", 3.0, 2.20),
        ("b", 4.0, 2.80),
        ("b", 4.0, 2.84),
    ] {
        db.record(
            GroundCall::new("d1", "p_bf", vec![Value::str(a)]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    // (T17) d1:p_bb — dimensions {A, B}.
    for (a, b, card, ta) in [
        ("a", 1i64, 1.0, 0.20),
        ("a", 2, 1.0, 0.22),
        ("b", 1, 1.0, 0.21),
        ("b", 3, 0.0, 0.18),
    ] {
        db.record(
            GroundCall::new("d1", "p_bb", vec![Value::str(a), Value::Int(b)]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    // (T18) d2:q_bf — dimension {B}.
    for (b, card, ta) in [(1i64, 2.0, 1.10), (2, 3.0, 1.30), (3, 2.0, 1.15)] {
        db.record(
            GroundCall::new("d2", "q_bf", vec![Value::Int(b)]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    // (T19) d2:q_ff — no dimensions.
    for (card, ta) in [(7.0, 5.00), (7.0, 5.40)] {
        db.record(
            GroundCall::new("d2", "q_ff", vec![]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::PatArg;

    #[test]
    fn record_and_lookup() {
        let db = figure2_database();
        assert_eq!(db.len(), 13);
        assert_eq!(db.records_for("d1", "p_bf").len(), 4);
        assert_eq!(db.records_for("d1", "nope").len(), 0);
        assert_eq!(db.functions().len(), 4);
    }

    #[test]
    fn paper_example_6_1_exact_average() {
        // "estimate the cost of d1:p_bf(a) ... (2.00 + 2.20)/2 = 2.10"
        let db = figure2_database();
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern();
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 2);
        assert!((v.t_all_ms.unwrap() - 2.10).abs() < 1e-9);
        assert!((v.cardinality.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example_6_1_blanket_average() {
        // "d1:p_bf($b) ... (2.00+2.20+2.80+2.84)/4"
        let db = figure2_database();
        let p = CallPattern::new("d1", "p_bf", vec![PatArg::Bound]);
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 4);
        assert!((v.t_all_ms.unwrap() - 9.84 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_ignores_missing_components() {
        let mut db = CostVectorDb::new();
        db.record(
            GroundCall::new("d", "f", vec![]),
            CostVector {
                t_first_ms: Some(1.0),
                t_all_ms: None,
                cardinality: Some(4.0),
            },
            SimInstant::EPOCH,
        );
        db.record(
            GroundCall::new("d", "f", vec![]),
            CostVector {
                t_first_ms: Some(3.0),
                t_all_ms: Some(10.0),
                cardinality: None,
            },
            SimInstant::EPOCH,
        );
        let (v, n) = db.aggregate(&GroundCall::new("d", "f", vec![]).pattern());
        assert_eq!(n, 2);
        assert_eq!(v.t_first_ms, Some(2.0));
        assert_eq!(v.t_all_ms, Some(10.0)); // only one observation
        assert_eq!(v.cardinality, Some(4.0));
    }

    #[test]
    fn aggregate_no_match_is_empty() {
        let db = figure2_database();
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("zzz")]).pattern();
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 0);
        assert_eq!(v, CostVector::default());
    }

    #[test]
    fn distinct_args_deduplicates() {
        let db = figure2_database();
        let args = db.distinct_args("d1", "p_bf");
        assert_eq!(args.len(), 2); // 'a' and 'b'
    }

    #[test]
    fn drop_function_frees_records() {
        let mut db = figure2_database();
        let before = db.approx_bytes();
        assert_eq!(db.drop_function("d1", "p_bf"), 4);
        assert_eq!(db.len(), 9);
        assert!(db.approx_bytes() < before);
        assert_eq!(db.drop_function("d1", "p_bf"), 0);
    }
}
