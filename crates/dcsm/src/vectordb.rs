//! The cost vector database: full-detail statistics of executed calls
//! (§6.1, the tables of Figure 2).
//!
//! ## Indexed aggregation (DESIGN.md §11)
//!
//! [`CostVectorDb::aggregate`] no longer scans the record list per probe.
//! Records are stored per `domain:function`, and each function keeps
//! lazily-built aggregation cells keyed by *pattern shape* — the
//! `(constant-position bitmask, arity)` pair a [`CallPattern`] projects to
//! (the precomputed `$b`-mask key) — then by the projected constant
//! values. The §6.3 relaxation lattice walk therefore costs one hash probe
//! per relaxation step instead of one scan of the statistics rows.
//!
//! Cells accumulate component sums in record-insertion order, both when a
//! shape is first built and when [`CostVectorDb::record`] appends to
//! already-built shapes, so the averages are bitwise identical to the
//! retained [`CostVectorDb::aggregate_scan`] reference (floating-point
//! addition is not associative; order is part of the contract).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::cost::CostVector;
use hermes_common::sync::Mutex;
use hermes_common::{CallPattern, GroundCall, PatArg, SimInstant, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// One recorded observation: `(domain call, cost vector, record_time)`.
#[derive(Clone, Debug, PartialEq)]
pub struct CallRecord {
    /// The executed call.
    pub call: GroundCall,
    /// The observed cost vector (possibly partial).
    pub vector: CostVector,
    /// Virtual time of the observation.
    pub recorded_at: SimInstant,
}

/// A pattern shape: the constant-position bitmask plus the arity (the mask
/// alone cannot distinguish `f(a)` from `f(a, $b)`).
type ShapeKey = (u64, usize);

/// Running component sums for one group of records, in insertion order.
#[derive(Clone, Copy, Debug, Default)]
struct AggCell {
    t_first: (f64, usize),
    t_all: (f64, usize),
    card: (f64, usize),
    matched: usize,
}

impl AggCell {
    fn add(&mut self, v: &CostVector) {
        self.matched += 1;
        if let Some(x) = v.t_first_ms {
            self.t_first.0 += x;
            self.t_first.1 += 1;
        }
        if let Some(x) = v.t_all_ms {
            self.t_all.0 += x;
            self.t_all.1 += 1;
        }
        if let Some(x) = v.cardinality {
            self.card.0 += x;
            self.card.1 += 1;
        }
    }

    fn finish(&self) -> (CostVector, usize) {
        let avg = |(s, n): (f64, usize)| if n > 0 { Some(s / n as f64) } else { None };
        (
            CostVector {
                t_first_ms: avg(self.t_first),
                t_all_ms: avg(self.t_all),
                cardinality: avg(self.card),
            },
            self.matched,
        )
    }
}

/// One function's records plus its lazily-built aggregation cells.
///
/// The index is interior-mutable so the read-only [`CostVectorDb::aggregate`]
/// can build a shape on its first probe; [`CostVectorDb::record`] keeps
/// already-built shapes current incrementally.
#[derive(Debug, Default)]
struct FunctionStats {
    records: Vec<CallRecord>,
    index: Mutex<HashMap<ShapeKey, HashMap<Vec<Value>, AggCell>>>,
}

impl Clone for FunctionStats {
    fn clone(&self) -> Self {
        FunctionStats {
            records: self.records.clone(),
            index: Mutex::new(self.index.lock().clone()),
        }
    }
}

impl FunctionStats {
    /// Builds the cells for one shape by a single insertion-order scan.
    fn build_shape(
        records: &[CallRecord],
        mask: u64,
        arity: usize,
    ) -> HashMap<Vec<Value>, AggCell> {
        let mut cells: HashMap<Vec<Value>, AggCell> = HashMap::new();
        for r in records {
            if r.call.args.len() != arity {
                continue;
            }
            cells
                .entry(project(&r.call.args, mask))
                .or_default()
                .add(&r.vector);
        }
        cells
    }
}

/// The record's argument values at the mask's constant positions.
fn project(args: &[Value], mask: u64) -> Vec<Value> {
    args.iter()
        .enumerate()
        .filter(|(i, _)| mask >> i & 1 == 1)
        .map(|(_, v)| v.clone())
        .collect()
}

/// Full-detail statistics, one record list per `domain:function`.
#[derive(Clone, Debug, Default)]
pub struct CostVectorDb {
    records: HashMap<Arc<str>, HashMap<Arc<str>, FunctionStats>>,
    total: usize,
}

impl CostVectorDb {
    /// An empty database.
    pub fn new() -> Self {
        CostVectorDb::default()
    }

    /// Records an observation. Shapes already built for this function are
    /// extended in place (the new observation's components are added last,
    /// matching what a fresh insertion-order scan would compute).
    pub fn record(&mut self, call: GroundCall, vector: CostVector, recorded_at: SimInstant) {
        let stats = self
            .records
            .entry(call.domain.clone())
            .or_default()
            .entry(call.function.clone())
            .or_default();
        for ((mask, arity), cells) in stats.index.get_mut().iter_mut() {
            if *arity != call.args.len() {
                continue;
            }
            cells
                .entry(project(&call.args, *mask))
                .or_default()
                .add(&vector);
        }
        stats.records.push(CallRecord {
            call,
            vector,
            recorded_at,
        });
        self.total += 1;
    }

    /// Total number of records.
    pub fn len(&self) -> usize {
        self.total
    }

    /// True if no records exist.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Approximate storage footprint in bytes (the §6.2 "heavy burden on
    /// storage" metric the summarization experiments report).
    pub fn approx_bytes(&self) -> usize {
        self.records
            .values()
            .flat_map(|m| m.values())
            .flat_map(|s| &s.records)
            .map(|r| r.call.request_bytes() + 3 * std::mem::size_of::<f64>() + 8)
            .sum()
    }

    /// All records of one `domain:function`.
    pub fn records_for(&self, domain: &str, function: &str) -> &[CallRecord] {
        self.stats_for(domain, function)
            .map(|s| s.records.as_slice())
            .unwrap_or(&[])
    }

    /// The `(domain, function)` pairs with records, sorted.
    pub fn functions(&self) -> Vec<(Arc<str>, Arc<str>)> {
        let mut keys: Vec<_> = self
            .records
            .iter()
            .flat_map(|(d, m)| m.keys().map(move |f| (d.clone(), f.clone())))
            .collect();
        keys.sort();
        keys
    }

    /// Aggregates the records matching `pattern` with the plain average the
    /// paper uses (§6.1, Example 6.1). Returns the averaged vector and the
    /// number of records aggregated.
    ///
    /// One hash probe against the shape index (built on first use for each
    /// `$b`-mask); falls back to [`CostVectorDb::aggregate_scan`] only for
    /// arities beyond the 64-bit mask.
    pub fn aggregate(&self, pattern: &CallPattern) -> (CostVector, usize) {
        let Some(mask) = pattern.mask_bits() else {
            return self.aggregate_scan(pattern);
        };
        let Some(stats) = self.stats_for(&pattern.domain, &pattern.function) else {
            return (CostVector::default(), 0);
        };
        let key: Vec<Value> = pattern
            .args
            .iter()
            .filter_map(|a| match a {
                PatArg::Const(v) => Some(v.clone()),
                PatArg::Bound => None,
            })
            .collect();
        let mut index = stats.index.lock();
        let cells = index.entry((mask, pattern.args.len())).or_insert_with(|| {
            FunctionStats::build_shape(&stats.records, mask, pattern.args.len())
        });
        cells.get(&key).copied().unwrap_or_default().finish()
    }

    /// The linear-scan reference implementation of
    /// [`CostVectorDb::aggregate`]: kept as the executable specification
    /// (equivalence tests assert bitwise-identical results) and as the
    /// fallback for unmaskable arities.
    pub fn aggregate_scan(&self, pattern: &CallPattern) -> (CostVector, usize) {
        let mut cell = AggCell::default();
        for r in self.records_for(&pattern.domain, &pattern.function) {
            if !pattern.matches(&r.call) {
                continue;
            }
            cell.add(&r.vector);
        }
        cell.finish()
    }

    /// The distinct argument vectors observed for `domain:function` —
    /// the dimension-value combinations a lossless summary will have rows
    /// for.
    pub fn distinct_args(&self, domain: &str, function: &str) -> Vec<Vec<Value>> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in self.records_for(domain, function) {
            if seen.insert(&r.call.args) {
                out.push(r.call.args.to_vec());
            }
        }
        out
    }

    /// Drops all records (and index cells) for one function (after
    /// summarization, §6.2).
    pub fn drop_function(&mut self, domain: &str, function: &str) -> usize {
        let Some(by_fn) = self.records.get_mut(domain) else {
            return 0;
        };
        let Some(stats) = by_fn.remove(function) else {
            return 0;
        };
        if by_fn.is_empty() {
            self.records.remove(domain);
        }
        self.total -= stats.records.len();
        stats.records.len()
    }

    fn stats_for(&self, domain: &str, function: &str) -> Option<&FunctionStats> {
        self.records.get(domain).and_then(|m| m.get(function))
    }
}

/// Builds the paper's Figure 2 example tables (T16–T19) as a database —
/// shared by unit tests here and the `fig_2_3_4_summaries` bench.
pub fn figure2_database() -> CostVectorDb {
    let mut db = CostVectorDb::new();
    let t = SimInstant::EPOCH;
    // (T16) d1:p_bf — dimension {A}, metrics (Card, T_a).
    for (a, card, ta) in [
        ("a", 3.0, 2.00),
        ("a", 3.0, 2.20),
        ("b", 4.0, 2.80),
        ("b", 4.0, 2.84),
    ] {
        db.record(
            GroundCall::new("d1", "p_bf", vec![Value::str(a)]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    // (T17) d1:p_bb — dimensions {A, B}.
    for (a, b, card, ta) in [
        ("a", 1i64, 1.0, 0.20),
        ("a", 2, 1.0, 0.22),
        ("b", 1, 1.0, 0.21),
        ("b", 3, 0.0, 0.18),
    ] {
        db.record(
            GroundCall::new("d1", "p_bb", vec![Value::str(a), Value::Int(b)]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    // (T18) d2:q_bf — dimension {B}.
    for (b, card, ta) in [(1i64, 2.0, 1.10), (2, 3.0, 1.30), (3, 2.0, 1.15)] {
        db.record(
            GroundCall::new("d2", "q_bf", vec![Value::Int(b)]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    // (T19) d2:q_ff — no dimensions.
    for (card, ta) in [(7.0, 5.00), (7.0, 5.40)] {
        db.record(
            GroundCall::new("d2", "q_ff", vec![]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(ta),
                cardinality: Some(card),
            },
            t,
        );
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::PatArg;

    #[test]
    fn record_and_lookup() {
        let db = figure2_database();
        assert_eq!(db.len(), 13);
        assert_eq!(db.records_for("d1", "p_bf").len(), 4);
        assert_eq!(db.records_for("d1", "nope").len(), 0);
        assert_eq!(db.functions().len(), 4);
    }

    #[test]
    fn paper_example_6_1_exact_average() {
        // "estimate the cost of d1:p_bf(a) ... (2.00 + 2.20)/2 = 2.10"
        let db = figure2_database();
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern();
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 2);
        assert!((v.t_all_ms.unwrap() - 2.10).abs() < 1e-9);
        assert!((v.cardinality.unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example_6_1_blanket_average() {
        // "d1:p_bf($b) ... (2.00+2.20+2.80+2.84)/4"
        let db = figure2_database();
        let p = CallPattern::new("d1", "p_bf", vec![PatArg::Bound]);
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 4);
        assert!((v.t_all_ms.unwrap() - 9.84 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_ignores_missing_components() {
        let mut db = CostVectorDb::new();
        db.record(
            GroundCall::new("d", "f", vec![]),
            CostVector {
                t_first_ms: Some(1.0),
                t_all_ms: None,
                cardinality: Some(4.0),
            },
            SimInstant::EPOCH,
        );
        db.record(
            GroundCall::new("d", "f", vec![]),
            CostVector {
                t_first_ms: Some(3.0),
                t_all_ms: Some(10.0),
                cardinality: None,
            },
            SimInstant::EPOCH,
        );
        let (v, n) = db.aggregate(&GroundCall::new("d", "f", vec![]).pattern());
        assert_eq!(n, 2);
        assert_eq!(v.t_first_ms, Some(2.0));
        assert_eq!(v.t_all_ms, Some(10.0)); // only one observation
        assert_eq!(v.cardinality, Some(4.0));
    }

    #[test]
    fn aggregate_no_match_is_empty() {
        let db = figure2_database();
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("zzz")]).pattern();
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 0);
        assert_eq!(v, CostVector::default());
    }

    #[test]
    fn indexed_aggregate_matches_scan_bitwise() {
        let db = figure2_database();
        let patterns = [
            GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern(),
            CallPattern::new("d1", "p_bf", vec![PatArg::Bound]),
            CallPattern::new(
                "d1",
                "p_bb",
                vec![PatArg::Const(Value::str("a")), PatArg::Bound],
            ),
            CallPattern::new(
                "d1",
                "p_bb",
                vec![PatArg::Bound, PatArg::Const(Value::Int(1))],
            ),
            GroundCall::new("d2", "q_ff", vec![]).pattern(),
        ];
        for p in &patterns {
            let (iv, in_) = db.aggregate(p);
            let (sv, sn) = db.aggregate_scan(p);
            assert_eq!(in_, sn, "matched count for {p}");
            // Bitwise, not approximate: insertion-order sums must agree.
            assert_eq!(iv.t_all_ms.map(f64::to_bits), sv.t_all_ms.map(f64::to_bits));
            assert_eq!(
                iv.t_first_ms.map(f64::to_bits),
                sv.t_first_ms.map(f64::to_bits)
            );
            assert_eq!(
                iv.cardinality.map(f64::to_bits),
                sv.cardinality.map(f64::to_bits)
            );
        }
    }

    #[test]
    fn built_shapes_stay_current_after_record() {
        let mut db = figure2_database();
        let p = GroundCall::new("d1", "p_bf", vec![Value::str("a")]).pattern();
        assert_eq!(db.aggregate(&p).1, 2); // builds the (0b1, 1) shape
        db.record(
            GroundCall::new("d1", "p_bf", vec![Value::str("a")]),
            CostVector {
                t_first_ms: None,
                t_all_ms: Some(4.0),
                cardinality: Some(3.0),
            },
            SimInstant::EPOCH,
        );
        let (v, n) = db.aggregate(&p);
        assert_eq!(n, 3);
        let (sv, sn) = db.aggregate_scan(&p);
        assert_eq!(n, sn);
        assert_eq!(v.t_all_ms.map(f64::to_bits), sv.t_all_ms.map(f64::to_bits));
    }

    #[test]
    fn distinct_args_deduplicates() {
        let db = figure2_database();
        let args = db.distinct_args("d1", "p_bf");
        assert_eq!(args.len(), 2); // 'a' and 'b'
    }

    #[test]
    fn drop_function_frees_records() {
        let mut db = figure2_database();
        let before = db.approx_bytes();
        assert_eq!(db.drop_function("d1", "p_bf"), 4);
        assert_eq!(db.len(), 9);
        assert!(db.approx_bytes() < before);
        assert_eq!(db.drop_function("d1", "p_bf"), 0);
    }
}
