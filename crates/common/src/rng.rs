//! Deterministic random numbers.
//!
//! Experiments must be reproducible run-to-run and machine-to-machine, so the
//! whole workspace draws randomness from this small, self-contained PRNG
//! (xoshiro256** seeded through SplitMix64) instead of process entropy.
//! Distribution helpers cover everything the network simulator and workload
//! generators need: uniforms, Gaussian jitter, exponential inter-arrivals,
//! and Zipf-skewed argument popularity.

/// A seedable xoshiro256** generator with distribution helpers.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: [u64; 4],
    /// Cached second output of the Box-Muller transform.
    gauss_spare: Option<f64>,
}

impl Rng64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid; the
    /// state is expanded through SplitMix64 so similar seeds diverge fast.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Rng64 {
            state: [next_sm(), next_sm(), next_sm(), next_sm()],
            gauss_spare: None,
        }
    }

    /// Derives an independent child generator; useful for giving each site or
    /// workload its own stream so their draws don't interleave.
    pub fn fork(&mut self, stream: u64) -> Rng64 {
        Rng64::new(self.next_u64() ^ stream.wrapping_mul(0xA24BAED4963EE407))
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 top bits → [0,1)
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Lemire-style rejection to avoid modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` as usize.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform integer in `[lo, hi)` as i64; supports negative bounds.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u64;
        lo.wrapping_add(self.range_u64(0, span) as i64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box-Muller (cached pair).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.f64();
            if u > 1e-300 {
                break u;
            }
        };
        let u2 = self.f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Exponential with the given mean (> 0).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = loop {
            let u = self.f64();
            if u > 1e-300 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Zipf-distributed rank in `[0, n)` with exponent `s` (s=0 is uniform).
    /// Uses inverse-CDF over precomputable weights; O(n) per draw is fine for
    /// the small universes our workloads use, but a cached sampler
    /// ([`ZipfSampler`]) should be preferred in loops.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        ZipfSampler::new(n, s).sample(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element. Panics on empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }
}

/// Precomputed Zipf sampler over ranks `[0, n)`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler. `n` must be ≥ 1.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "zipf over empty universe");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Draws a rank in `[0, n)`; rank 0 is the most popular.
    pub fn sample(&self, rng: &mut Rng64) -> usize {
        let u = rng.f64();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..10).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..1000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = Rng64::new(9);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let y = r.range_i64(-5, 5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn range_single_element() {
        let mut r = Rng64::new(3);
        assert_eq!(r.range_u64(4, 5), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng64::new(1).range_u64(5, 5);
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut r = Rng64::new(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = Rng64::new(321);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn zipf_rank_zero_is_most_popular() {
        let mut r = Rng64::new(55);
        let sampler = ZipfSampler::new(10, 1.2);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[4]);
        assert!(counts[4] > counts[9]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut r = Rng64::new(56);
        let sampler = ZipfSampler::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[sampler.sample(&mut r)] += 1;
        }
        for c in counts {
            assert!((c as f64 - 10_000.0).abs() < 700.0, "counts {counts:?}");
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(77);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Rng64::new(1);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
