//! Workspace-wide error type.

use crate::clock::SimDuration;
use std::fmt;

/// Convenient result alias used across the workspace.
pub type Result<T, E = HermesError> = std::result::Result<T, E>;

/// Errors surfaced by the mediator and its substrates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HermesError {
    /// Rule / query / invariant text failed to parse.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A rule or query referenced a domain not in the registry.
    UnknownDomain(String),
    /// A domain call named a function the domain does not export.
    UnknownFunction {
        /// The domain that was called.
        domain: String,
        /// The missing function.
        function: String,
    },
    /// A call supplied the wrong number of arguments.
    BadArity {
        /// The domain that was called.
        domain: String,
        /// The function that was called.
        function: String,
        /// Arity the function declares.
        expected: usize,
        /// Arity the call supplied.
        got: usize,
    },
    /// A call's binding pattern is not permitted by the function signature
    /// (e.g. calling `p_bf` with its first argument free).
    BadBinding {
        /// The domain that was called.
        domain: String,
        /// The function that was called.
        function: String,
        /// Description of the violation.
        msg: String,
    },
    /// A value had the wrong type for an operation.
    Type(String),
    /// A remote site refused or dropped the call (temporary unavailability,
    /// one of the paper's motivations for result caching).
    Unavailable {
        /// The unreachable site.
        site: String,
        /// Why it was unreachable.
        reason: String,
    },
    /// A query exceeded its virtual-clock deadline. The executor surfaces
    /// whatever answers it had produced alongside per-subgoal completeness
    /// provenance; this error is the strict-mode signal.
    DeadlineExceeded {
        /// The configured deadline.
        deadline: SimDuration,
        /// Virtual time actually elapsed when the deadline check fired.
        elapsed: SimDuration,
    },
    /// Query compilation failed (unsafe rule, no executable ordering, ...).
    Plan(String),
    /// Static analysis rejected a program at registration time. Each entry
    /// is one rendered diagnostic (`error[HAxxx] locus: message`).
    Analysis {
        /// Rendered error-severity diagnostics.
        diagnostics: Vec<String>,
    },
    /// The server's admission gate refused the query outright: the gate
    /// (or the requested tier's share of it) was full. Deterministic and
    /// immediate — a shed query never queues and never hangs. The reason
    /// is a stable machine-readable code such as `gate-full` or
    /// `tier-budget-full`.
    Shed {
        /// Stable reason code for the shed decision.
        reason: String,
    },
    /// Runtime evaluation failure.
    Eval(String),
    /// Underlying I/O failure (flat-file domain, persistence).
    Io(String),
}

impl fmt::Display for HermesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HermesError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            HermesError::UnknownDomain(d) => write!(f, "unknown domain `{d}`"),
            HermesError::UnknownFunction { domain, function } => {
                write!(f, "domain `{domain}` has no function `{function}`")
            }
            HermesError::BadArity {
                domain,
                function,
                expected,
                got,
            } => write!(
                f,
                "`{domain}:{function}` expects {expected} argument(s), got {got}"
            ),
            HermesError::BadBinding {
                domain,
                function,
                msg,
            } => write!(f, "binding violation on `{domain}:{function}`: {msg}"),
            HermesError::Type(msg) => write!(f, "type error: {msg}"),
            HermesError::Unavailable { site, reason } => {
                write!(f, "site `{site}` unavailable: {reason}")
            }
            HermesError::DeadlineExceeded { deadline, elapsed } => write!(
                f,
                "deadline exceeded: {elapsed} elapsed against a {deadline} deadline"
            ),
            HermesError::Plan(msg) => write!(f, "planning error: {msg}"),
            HermesError::Analysis { diagnostics } => {
                write!(
                    f,
                    "program rejected by static analysis ({} finding(s))",
                    diagnostics.len()
                )?;
                for d in diagnostics {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            HermesError::Shed { reason } => {
                write!(f, "query shed by admission control ({reason})")
            }
            HermesError::Eval(msg) => write!(f, "evaluation error: {msg}"),
            HermesError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl HermesError {
    /// True for failures that may succeed if simply retried later —
    /// the class retry loops and circuit breakers act on. Everything else
    /// (parse, arity, planning, deadline, ...) is deterministic and
    /// retrying cannot help.
    pub fn is_transient(&self) -> bool {
        matches!(self, HermesError::Unavailable { .. })
    }
}

impl std::error::Error for HermesError {}

impl From<std::io::Error> for HermesError {
    fn from(e: std::io::Error) -> Self {
        HermesError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = HermesError::BadArity {
            domain: "video".into(),
            function: "video_size".into(),
            expected: 1,
            got: 2,
        };
        assert_eq!(
            e.to_string(),
            "`video:video_size` expects 1 argument(s), got 2"
        );
        let e = HermesError::Parse {
            line: 3,
            col: 14,
            msg: "expected `)`".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:14: expected `)`");
    }

    #[test]
    fn deadline_exceeded_displays_both_times() {
        let e = HermesError::DeadlineExceeded {
            deadline: SimDuration::from_millis(1_500),
            elapsed: SimDuration::from_millis(2_250),
        };
        assert_eq!(
            e.to_string(),
            "deadline exceeded: 2250.000ms elapsed against a 1500.000ms deadline"
        );
    }

    #[test]
    fn only_unavailability_is_transient() {
        assert!(HermesError::Unavailable {
            site: "milan".into(),
            reason: "flap".into(),
        }
        .is_transient());
        assert!(!HermesError::Plan("no ordering".into()).is_transient());
        assert!(!HermesError::DeadlineExceeded {
            deadline: SimDuration::ZERO,
            elapsed: SimDuration::ZERO,
        }
        .is_transient());
        assert!(!HermesError::Io("disk".into()).is_transient());
        // A shed is a deterministic admission decision, not a flaky site:
        // retrying immediately would just re-shed, so it is not transient.
        assert!(!HermesError::Shed {
            reason: "gate-full".into(),
        }
        .is_transient());
    }

    #[test]
    fn shed_display_carries_the_reason_code() {
        let e = HermesError::Shed {
            reason: "gate-full".into(),
        };
        assert_eq!(e.to_string(), "query shed by admission control (gate-full)");
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: HermesError = io.into();
        assert!(matches!(e, HermesError::Io(_)));
    }
}
