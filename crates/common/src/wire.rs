//! A compact, line-safe text encoding for values and ground calls.
//!
//! The answer cache and the statistics cache outlive a mediator process in
//! real deployments (that is the point of caching results of *expensive*
//! calls), so both support saving to and loading from a line-oriented text
//! format. This module is the codec: length-prefixed, type-tagged segments
//! that never contain raw newlines, so one cache entry is always exactly
//! one line.
//!
//! Grammar (no whitespace between segments):
//!
//! ```text
//! value  := "N"                          (null)
//!         | "B" ("0"|"1")                (bool)
//!         | "I" int ";"                  (i64, decimal)
//!         | "F" hex16 ";"                (f64 bits, lowercase hex)
//!         | "S" len ":" bytes            (str, len in bytes; raw UTF-8,
//!                                          newlines escaped as \n / \\)
//!         | "L" count ";" value*         (list)
//!         | "R" count ";" (field)*       (record)
//! field  := "S" len ":" bytes value      (name, then value)
//! call   := field field "A" count ";" value*   (domain, function, args)
//! ```

// Decoding untrusted persisted caches must never panic the process: every
// fallible path returns a typed `HermesError`. Tests keep their unwraps.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::call::GroundCall;
use crate::error::{HermesError, Result};
use crate::value::{Record, Value};
use std::fmt::Write as _;

/// Escapes newlines and backslashes so encoded text stays on one line.
fn escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Escaped byte length of a string (what the `S` prefix counts).
fn escaped_len(s: &str) -> usize {
    s.bytes()
        .map(|b| match b {
            b'\\' | b'\n' | b'\r' => 2,
            _ => 1,
        })
        .sum()
}

fn write_str(s: &str, out: &mut String) {
    let _ = write!(out, "S{}:", escaped_len(s));
    escape_into(s, out);
}

/// Encodes a value onto `out`.
pub fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('N'),
        Value::Bool(b) => {
            out.push('B');
            out.push(if *b { '1' } else { '0' });
        }
        Value::Int(i) => {
            let _ = write!(out, "I{i};");
        }
        Value::Float(f) => {
            let _ = write!(out, "F{:016x};", f.to_bits());
        }
        Value::Str(s) => write_str(s, out),
        Value::List(vs) => {
            let _ = write!(out, "L{};", vs.len());
            for v in vs {
                encode_value(v, out);
            }
        }
        Value::Record(r) => {
            let _ = write!(out, "R{};", r.len());
            for (name, v) in r.iter() {
                write_str(name, out);
                encode_value(v, out);
            }
        }
    }
}

/// Encodes a ground call onto `out`.
pub fn encode_call(c: &GroundCall, out: &mut String) {
    write_str(&c.domain, out);
    write_str(&c.function, out);
    let _ = write!(out, "A{};", c.args.len());
    for a in c.args.iter() {
        encode_value(a, out);
    }
}

/// Maximum value-nesting depth the decoder will follow. The recursive
/// descent otherwise turns `L1;L1;L1;…` from an untrusted cache file into
/// a stack overflow — an abort, not a catchable error.
pub const MAX_DEPTH: usize = 64;

/// A cursor over encoded text.
pub struct Decoder<'a> {
    rest: &'a str,
}

impl<'a> Decoder<'a> {
    /// Starts decoding `text`.
    pub fn new(text: &'a str) -> Self {
        Decoder { rest: text }
    }

    /// True when all input has been consumed.
    pub fn is_done(&self) -> bool {
        self.rest.is_empty()
    }

    fn err(&self, msg: impl Into<String>) -> HermesError {
        // Clamp the context snippet to a char boundary: slicing a &str at a
        // fixed byte offset panics inside multi-byte UTF-8 sequences.
        let mut cut = self.rest.len().min(24);
        while cut > 0 && !self.rest.is_char_boundary(cut) {
            cut -= 1;
        }
        HermesError::Io(format!(
            "decode error: {} (at …{:?})",
            msg.into(),
            &self.rest[..cut]
        ))
    }

    fn take(&mut self, n: usize) -> Result<&'a str> {
        if self.rest.len() < n {
            return Err(self.err(format!("needed {n} bytes")));
        }
        if !self.rest.is_char_boundary(n) {
            return Err(self.err("length lands inside a UTF-8 sequence"));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn tag(&mut self) -> Result<char> {
        let c = self.rest.chars().next().ok_or_else(|| self.err("empty"))?;
        self.rest = &self.rest[c.len_utf8()..];
        Ok(c)
    }

    fn number_until(&mut self, stop: char) -> Result<&'a str> {
        let idx = self
            .rest
            .find(stop)
            .ok_or_else(|| self.err(format!("missing `{stop}`")))?;
        let (head, tail) = self.rest.split_at(idx);
        self.rest = &tail[1..];
        Ok(head)
    }

    fn usize_until(&mut self, stop: char) -> Result<usize> {
        let text = self.number_until(stop)?;
        text.parse::<usize>()
            .map_err(|e| self.err(format!("bad count `{text}`: {e}")))
    }

    fn string(&mut self) -> Result<String> {
        match self.tag()? {
            'S' => {}
            other => return Err(self.err(format!("expected string, got tag `{other}`"))),
        }
        let len = self.usize_until(':')?;
        let raw = self.take(len)?;
        Ok(unescape(raw))
    }

    /// Decodes one value.
    pub fn value(&mut self) -> Result<Value> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: usize) -> Result<Value> {
        if depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.tag()? {
            'N' => Ok(Value::Null),
            'B' => match self.tag()? {
                '1' => Ok(Value::Bool(true)),
                '0' => Ok(Value::Bool(false)),
                other => Err(self.err(format!("bad bool `{other}`"))),
            },
            'I' => {
                let text = self.number_until(';')?;
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|e| self.err(format!("bad int `{text}`: {e}")))
            }
            'F' => {
                let text = self.number_until(';')?;
                u64::from_str_radix(text, 16)
                    .map(|bits| Value::Float(f64::from_bits(bits)))
                    .map_err(|e| self.err(format!("bad float bits `{text}`: {e}")))
            }
            'S' => {
                let len = self.usize_until(':')?;
                let raw = self.take(len)?;
                Ok(Value::str(unescape(raw)))
            }
            'L' => {
                let n = self.usize_until(';')?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(self.value_at(depth + 1)?);
                }
                Ok(Value::List(items))
            }
            'R' => {
                let n = self.usize_until(';')?;
                let mut rec = Record::new();
                for _ in 0..n {
                    let name = self.string()?;
                    let v = self.value_at(depth + 1)?;
                    rec.push(name, v);
                }
                Ok(Value::Record(rec))
            }
            other => Err(self.err(format!("unknown tag `{other}`"))),
        }
    }

    /// Decodes one ground call.
    pub fn call(&mut self) -> Result<GroundCall> {
        let domain = self.string()?;
        let function = self.string()?;
        match self.tag()? {
            'A' => {}
            other => return Err(self.err(format!("expected args, got tag `{other}`"))),
        }
        let n = self.usize_until(';')?;
        let mut args = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            args.push(self.value()?);
        }
        Ok(GroundCall::new(domain, function, args))
    }
}

/// Encodes a value to a fresh string.
pub fn value_to_string(v: &Value) -> String {
    let mut s = String::new();
    encode_value(v, &mut s);
    s
}

/// Decodes a value from a complete string.
pub fn value_from_str(text: &str) -> Result<Value> {
    let mut d = Decoder::new(text);
    let v = d.value()?;
    if !d.is_done() {
        return Err(HermesError::Io("trailing bytes after value".into()));
    }
    Ok(v)
}

/// Encodes a ground call to a fresh string.
pub fn call_to_string(c: &GroundCall) -> String {
    let mut s = String::new();
    encode_call(c, &mut s);
    s
}

/// Decodes a ground call from a complete string, rejecting trailing bytes.
pub fn call_from_str(text: &str) -> Result<GroundCall> {
    let mut d = Decoder::new(text);
    let c = d.call()?;
    if !d.is_done() {
        return Err(HermesError::Io("trailing bytes after call".into()));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) {
        let text = value_to_string(v);
        assert!(!text.contains('\n'), "encoded text has a newline: {text:?}");
        let back = value_from_str(&text).unwrap();
        assert_eq!(&back, v, "via {text:?}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(&Value::Null);
        roundtrip(&Value::Bool(true));
        roundtrip(&Value::Bool(false));
        roundtrip(&Value::Int(0));
        roundtrip(&Value::Int(i64::MIN));
        roundtrip(&Value::Int(i64::MAX));
        roundtrip(&Value::Float(0.0));
        roundtrip(&Value::Float(-13.75));
        roundtrip(&Value::Float(f64::INFINITY));
        roundtrip(&Value::str(""));
        roundtrip(&Value::str("hello world"));
    }

    #[test]
    fn nan_roundtrips_bitwise_equal_class() {
        let v = Value::Float(f64::NAN);
        let back = value_from_str(&value_to_string(&v)).unwrap();
        assert_eq!(back, v); // Value equality normalizes NaN
    }

    #[test]
    fn strings_with_newlines_and_separators() {
        roundtrip(&Value::str("line1\nline2\r\n"));
        roundtrip(&Value::str("back\\slash"));
        roundtrip(&Value::str("tricky;:S5:L2;"));
        roundtrip(&Value::str("ünïcödé — héllo"));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let rec = Value::Record(Record::from_fields([
            ("name", Value::str("stewart")),
            ("frames", Value::List(vec![Value::Int(40), Value::Int(935)])),
            (
                "nested",
                Value::Record(Record::from_fields([("x", Value::Float(1.5))])),
            ),
        ]));
        roundtrip(&rec);
        roundtrip(&Value::List(vec![rec.clone(), Value::Null, rec]));
    }

    #[test]
    fn call_roundtrip() {
        let c = GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("rope"), Value::Int(4), Value::Int(47)],
        );
        let mut s = String::new();
        encode_call(&c, &mut s);
        let mut d = Decoder::new(&s);
        assert_eq!(d.call().unwrap(), c);
        assert!(d.is_done());
    }

    #[test]
    fn consecutive_values_decode_in_sequence() {
        let mut s = String::new();
        encode_value(&Value::Int(1), &mut s);
        encode_value(&Value::str("two"), &mut s);
        encode_value(&Value::Bool(true), &mut s);
        let mut d = Decoder::new(&s);
        assert_eq!(d.value().unwrap(), Value::Int(1));
        assert_eq!(d.value().unwrap(), Value::str("two"));
        assert_eq!(d.value().unwrap(), Value::Bool(true));
        assert!(d.is_done());
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for bad in [
            "",
            "X",
            "I12",
            "Fzz;",
            "S5:ab",
            "L3;I1;",
            "R1;I1;",
            "B7",
            "S999999:x",
        ] {
            assert!(value_from_str(bad).is_err(), "accepted {bad:?}");
        }
        // Trailing garbage is rejected.
        assert!(value_from_str("I1;I2;").is_err());
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing_the_stack() {
        // Deeper than any real cache entry, shallower than the stack: the
        // decoder must refuse, not abort the process.
        let hostile = "L1;".repeat(100_000) + "N";
        let err = value_from_str(&hostile).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
        // Legitimate nesting up to the limit still decodes.
        let mut ok = Value::Int(7);
        for _ in 0..(MAX_DEPTH - 1) {
            ok = Value::List(vec![ok]);
        }
        roundtrip(&ok);
    }

    #[test]
    fn call_from_str_rejects_trailing_garbage() {
        let c = GroundCall::new("video", "frames", vec![Value::Int(4)]);
        let text = call_to_string(&c);
        assert_eq!(call_from_str(&text).unwrap(), c);
        assert!(call_from_str(&format!("{text}N")).is_err());
        assert!(call_from_str("").is_err());
        assert!(call_from_str("S5:video").is_err());
    }

    #[test]
    fn decode_error_snippet_respects_utf8_boundaries() {
        // The error snippet clamps at 24 bytes; the leading ASCII byte shifts
        // the 2-byte chars so that offset lands mid-character, which must not
        // panic the formatter.
        let bad = format!("Xa{}", "é".repeat(30));
        let err = value_from_str(&bad).unwrap_err();
        assert!(err.to_string().contains("unknown tag"), "{err}");
    }
}
