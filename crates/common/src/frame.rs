//! Length-prefixed binary framing for the network serving stack.
//!
//! [`wire`](crate::wire) is the *persistence* codec: line-safe text, one
//! cache entry per line. This module is the *network* codec: the frames
//! `hermes-serve` and its clients exchange over TCP, built on a compact
//! binary value encoding (no escaping, no decimal parsing — see the
//! `wire_throughput` bench for the encode/decode comparison).
//!
//! ## Frame grammar
//!
//! Every frame on the socket is
//!
//! ```text
//! frame   := len:u32-LE  kind:u8  payload
//! ```
//!
//! where `len` counts the kind byte plus the payload and is capped at
//! [`MAX_FRAME_LEN`] (a malformed or hostile length fails fast instead of
//! allocating). Payloads are binary-encoded [`Value`]s:
//!
//! ```text
//! value   := 0x00                          (null)
//!          | 0x01 | 0x02                   (false | true)
//!          | 0x03 i64-LE                   (int)
//!          | 0x04 f64-bits-LE              (float)
//!          | 0x05 len:u32-LE bytes         (str, UTF-8)
//!          | 0x06 count:u32-LE value*      (list)
//!          | 0x07 count:u32-LE (str value)* (record; str as in 0x05)
//! ```
//!
//! Nesting is bounded by [`MAX_DEPTH`]; every decode path returns a
//! structured [`HermesError::Io`] — never a panic, never silent
//! acceptance of trailing garbage.
//!
//! ## Frames
//!
//! Client → server: [`Frame::Query`] (source text plus per-run options),
//! [`Frame::Stats`] (the admin frame), [`Frame::Ping`], [`Frame::Shutdown`]
//! (graceful drain). Server → client: zero or more [`Frame::Batch`]es of
//! answer rows followed by one [`Frame::Done`], or one [`Frame::Error`];
//! [`Frame::StatsReply`], [`Frame::Pong`]. The error frame round-trips
//! [`HermesError`] well enough for clients to distinguish shed queries
//! (backpressure) from deadline aborts from real failures.

// Frames arrive from untrusted sockets: decoding must never panic.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use crate::error::{HermesError, Result};
use crate::value::{Record, Value};
use std::io::{Read, Write};

/// Hard cap on one frame's body (kind byte + payload): 64 MiB.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// Maximum value-nesting depth a decoder will follow.
pub const MAX_DEPTH: usize = 64;

// ---------- binary value codec ----------

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_FLOAT: u8 = 0x04;
const TAG_STR: u8 = 0x05;
const TAG_LIST: u8 = 0x06;
const TAG_RECORD: u8 = 0x07;

fn put_u32(n: usize, out: &mut Vec<u8>) {
    out.extend_from_slice(&(n.min(u32::MAX as usize) as u32).to_le_bytes());
}

fn put_str(s: &str, out: &mut Vec<u8>) {
    put_u32(s.len(), out);
    out.extend_from_slice(s.as_bytes());
}

/// Encodes one value onto `out` in the binary framing codec.
pub fn put_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(s, out);
        }
        Value::List(vs) => {
            out.push(TAG_LIST);
            put_u32(vs.len(), out);
            for v in vs {
                put_value(v, out);
            }
        }
        Value::Record(r) => {
            out.push(TAG_RECORD);
            put_u32(r.len(), out);
            for (name, v) in r.iter() {
                put_str(name, out);
                put_value(v, out);
            }
        }
    }
}

/// A bounds-checked cursor over one frame's payload bytes.
pub struct BinDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BinDecoder<'a> {
    /// Starts decoding `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        BinDecoder { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_done(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn err(&self, msg: impl Into<String>) -> HermesError {
        HermesError::Io(format!(
            "frame decode error at byte {}/{}: {}",
            self.pos,
            self.buf.len(),
            msg.into()
        ))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| self.err(format!("needed {n} bytes")))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<usize> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]) as usize)
    }

    fn str(&mut self) -> Result<&'a str> {
        let len = self.u32()?;
        let raw = self.take(len)?;
        std::str::from_utf8(raw).map_err(|e| self.err(format!("invalid UTF-8: {e}")))
    }

    /// Decodes one value (depth-bounded).
    pub fn value(&mut self) -> Result<Value> {
        self.value_at(0)
    }

    fn value_at(&mut self, depth: usize) -> Result<Value> {
        if depth >= MAX_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_DEPTH}")));
        }
        match self.byte()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => {
                let b = self.take(8)?;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(b);
                Ok(Value::Int(i64::from_le_bytes(raw)))
            }
            TAG_FLOAT => {
                let b = self.take(8)?;
                let mut raw = [0u8; 8];
                raw.copy_from_slice(b);
                Ok(Value::Float(f64::from_bits(u64::from_le_bytes(raw))))
            }
            TAG_STR => Ok(Value::str(self.str()?)),
            TAG_LIST => {
                let n = self.u32()?;
                // A hostile count cannot out-allocate the actual payload:
                // each element costs at least one byte on the wire.
                let mut items = Vec::with_capacity(n.min(self.buf.len() - self.pos));
                for _ in 0..n {
                    items.push(self.value_at(depth + 1)?);
                }
                Ok(Value::List(items))
            }
            TAG_RECORD => {
                let n = self.u32()?;
                let mut rec = Record::new();
                for _ in 0..n {
                    let name = self.str()?.to_string();
                    let v = self.value_at(depth + 1)?;
                    rec.push(name, v);
                }
                Ok(Value::Record(rec))
            }
            other => Err(self.err(format!("unknown value tag 0x{other:02x}"))),
        }
    }
}

/// Encodes a value to fresh bytes.
pub fn value_to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::new();
    put_value(v, &mut out);
    out
}

/// Decodes a value from a complete buffer, rejecting trailing bytes.
pub fn value_from_bytes(buf: &[u8]) -> Result<Value> {
    let mut d = BinDecoder::new(buf);
    let v = d.value()?;
    if !d.is_done() {
        return Err(HermesError::Io("trailing bytes after framed value".into()));
    }
    Ok(v)
}

// ---------- typed frames ----------

const KIND_QUERY: u8 = 0x01;
const KIND_STATS: u8 = 0x02;
const KIND_PING: u8 = 0x03;
const KIND_SHUTDOWN: u8 = 0x04;
const KIND_BATCH: u8 = 0x10;
const KIND_DONE: u8 = 0x11;
const KIND_ERROR: u8 = 0x12;
const KIND_STATS_REPLY: u8 = 0x13;
const KIND_PONG: u8 = 0x14;

/// One query and its per-run options, as sent on the wire. Durations are
/// microseconds of *real* time — `hermes-serve` runs queries on the wall
/// clock, so a client deadline is a wall deadline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryFrame {
    /// Query source text (`?- item(A, B).`).
    pub src: String,
    /// Stop after this many answers.
    pub limit: Option<u64>,
    /// Per-query deadline in microseconds (abort past it, partial answers).
    pub deadline_us: Option<u64>,
    /// Per-query budget in microseconds (fail-soft tier downgrade).
    pub budget_us: Option<u64>,
    /// Pinned plan tier (`cache-only` | `cached-cheap` | `full`).
    pub tier: Option<String>,
    /// Collect and return a rendered execution trace.
    pub trace: bool,
}

impl QueryFrame {
    /// A query frame with every option at its default.
    pub fn new(src: impl Into<String>) -> Self {
        QueryFrame {
            src: src.into(),
            ..QueryFrame::default()
        }
    }
}

/// Terminates a successful query response, after zero or more batches.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DoneFrame {
    /// Answer-column names, in output order.
    pub columns: Vec<String>,
    /// Total rows sent across the preceding batches.
    pub rows: u64,
    /// True when any subgoal's answers may be incomplete.
    pub incomplete: bool,
    /// Server-side wall-clock time spent on this query, microseconds.
    pub elapsed_us: u64,
    /// Source round trips the query actually paid for.
    pub source_calls: u64,
    /// Answers served from the cache hierarchy (CIM hits of any kind).
    pub cache_hits: u64,
    /// Mid-execution fail-soft tier downgrades.
    pub tier_downgrades: u64,
    /// Rendered trace lines (empty unless the query asked for a trace).
    pub trace: Vec<String>,
}

/// A failed query (or a refused frame), with a stable machine-readable
/// code so clients can count sheds separately from real errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ErrorFrame {
    /// Stable code: `shed`, `deadline`, `unavailable`, `parse`, `plan`,
    /// `analysis`, `eval`, `io`, `bad-frame`, ...
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl ErrorFrame {
    /// Maps a mediator error onto the wire, preserving the class.
    pub fn from_error(e: &HermesError) -> Self {
        // A shed carries its raw machine reason so the client-side
        // round trip reconstructs `Shed { reason }` exactly — retry
        // logic keys on the reason, not on display text.
        if let HermesError::Shed { reason } = e {
            return ErrorFrame {
                code: "shed".into(),
                message: reason.clone(),
            };
        }
        let code = match e {
            HermesError::Shed { .. } => "shed",
            HermesError::DeadlineExceeded { .. } => "deadline",
            HermesError::Unavailable { .. } => "unavailable",
            HermesError::Parse { .. } => "parse",
            HermesError::Plan(_) => "plan",
            HermesError::Analysis { .. } => "analysis",
            HermesError::UnknownDomain(_)
            | HermesError::UnknownFunction { .. }
            | HermesError::BadArity { .. }
            | HermesError::BadBinding { .. }
            | HermesError::Type(_)
            | HermesError::Eval(_) => "eval",
            HermesError::Io(_) => "io",
        };
        ErrorFrame {
            code: code.into(),
            message: e.to_string(),
        }
    }

    /// The client-side error a received frame surfaces as. A shed stays a
    /// [`HermesError::Shed`] so retry/backoff logic treats it correctly.
    pub fn into_error(self) -> HermesError {
        match self.code.as_str() {
            "shed" => HermesError::Shed {
                reason: self.message,
            },
            _ => HermesError::Eval(format!("server error [{}]: {}", self.code, self.message)),
        }
    }
}

/// One frame on the socket.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client → server: run a query.
    Query(QueryFrame),
    /// Client → server: the admin frame — reply with a
    /// [`Frame::StatsReply`] snapshot of `ServerStats` + `CacheSnapshot`.
    Stats,
    /// Client → server: liveness probe.
    Ping,
    /// Client → server: stop accepting, drain in-flight work, exit.
    Shutdown,
    /// Server → client: one batch of answer rows.
    Batch(Vec<Vec<Value>>),
    /// Server → client: the query finished; summary and counters.
    Done(DoneFrame),
    /// Server → client: the query (or frame) failed.
    Error(ErrorFrame),
    /// Server → client: the stats snapshot, as a record value.
    StatsReply(Value),
    /// Server → client: liveness reply.
    Pong,
}

fn opt_u64(v: Option<u64>) -> Value {
    match v {
        Some(n) => Value::Int(n.min(i64::MAX as u64) as i64),
        None => Value::Null,
    }
}

fn opt_str(v: &Option<String>) -> Value {
    match v {
        Some(s) => Value::str(s.as_str()),
        None => Value::Null,
    }
}

fn field_u64(rec: &Record, name: &str) -> Option<u64> {
    match rec.get(name) {
        Some(Value::Int(i)) if *i >= 0 => Some(*i as u64),
        _ => None,
    }
}

fn field_str(rec: &Record, name: &str) -> Option<String> {
    match rec.get(name) {
        Some(Value::Str(s)) => Some(s.to_string()),
        _ => None,
    }
}

fn field_bool(rec: &Record, name: &str) -> bool {
    matches!(rec.get(name), Some(Value::Bool(true)))
}

impl Frame {
    /// This frame's kind byte.
    fn kind(&self) -> u8 {
        match self {
            Frame::Query(_) => KIND_QUERY,
            Frame::Stats => KIND_STATS,
            Frame::Ping => KIND_PING,
            Frame::Shutdown => KIND_SHUTDOWN,
            Frame::Batch(_) => KIND_BATCH,
            Frame::Done(_) => KIND_DONE,
            Frame::Error(_) => KIND_ERROR,
            Frame::StatsReply(_) => KIND_STATS_REPLY,
            Frame::Pong => KIND_PONG,
        }
    }

    /// The payload as a value (frames with empty payloads return `None`).
    fn payload(&self) -> Option<Value> {
        match self {
            Frame::Stats | Frame::Ping | Frame::Shutdown | Frame::Pong => None,
            Frame::Query(q) => {
                let mut rec = Record::new();
                rec.push("src", Value::str(q.src.as_str()));
                rec.push("limit", opt_u64(q.limit));
                rec.push("deadline_us", opt_u64(q.deadline_us));
                rec.push("budget_us", opt_u64(q.budget_us));
                rec.push("tier", opt_str(&q.tier));
                rec.push("trace", Value::Bool(q.trace));
                Some(Value::Record(rec))
            }
            Frame::Batch(rows) => Some(Value::List(
                rows.iter().map(|r| Value::List(r.clone())).collect(),
            )),
            Frame::Done(d) => {
                let mut rec = Record::new();
                rec.push(
                    "columns",
                    Value::List(d.columns.iter().map(|c| Value::str(c.as_str())).collect()),
                );
                rec.push("rows", opt_u64(Some(d.rows)));
                rec.push("incomplete", Value::Bool(d.incomplete));
                rec.push("elapsed_us", opt_u64(Some(d.elapsed_us)));
                rec.push("source_calls", opt_u64(Some(d.source_calls)));
                rec.push("cache_hits", opt_u64(Some(d.cache_hits)));
                rec.push("tier_downgrades", opt_u64(Some(d.tier_downgrades)));
                rec.push(
                    "trace",
                    Value::List(d.trace.iter().map(|l| Value::str(l.as_str())).collect()),
                );
                Some(Value::Record(rec))
            }
            Frame::Error(e) => {
                let mut rec = Record::new();
                rec.push("code", Value::str(e.code.as_str()));
                rec.push("message", Value::str(e.message.as_str()));
                Some(Value::Record(rec))
            }
            Frame::StatsReply(v) => Some(v.clone()),
        }
    }

    /// Encodes the complete frame (length prefix included).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = vec![self.kind()];
        if let Some(v) = self.payload() {
            put_value(&v, &mut body);
        }
        let mut out = Vec::with_capacity(4 + body.len());
        put_u32(body.len(), &mut out);
        out.extend_from_slice(&body);
        out
    }

    /// Writes the complete frame to `w` (no flush).
    pub fn write_to(&self, w: &mut impl Write) -> Result<()> {
        w.write_all(&self.encode())?;
        Ok(())
    }

    /// Reads one frame from `r`. Returns `Ok(None)` on clean EOF (the
    /// peer closed between frames); anything else malformed is an error.
    ///
    /// This is the blocking face of [`FrameDecoder`]: it reads exactly the
    /// bytes the decoder asks for (never over-reading into the next
    /// frame), so it composes with unbuffered streams.
    pub fn read_from(r: &mut impl Read) -> Result<Option<Frame>> {
        let mut decoder = FrameDecoder::new();
        let mut chunk = [0u8; 4096];
        loop {
            if let Some(frame) = decoder.next_frame()? {
                return Ok(Some(frame));
            }
            // Ask for exactly what the next frame still needs: the header
            // remainder, then the body remainder.
            let want = decoder.needed().min(chunk.len());
            let mut got = 0;
            while got < want {
                match r.read(&mut chunk[got..want]) {
                    Ok(0) if got == 0 && !decoder.mid_frame() => return Ok(None),
                    Ok(0) => {
                        return Err(HermesError::Io("connection closed mid-frame".to_string()))
                    }
                    Ok(n) => got += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e.into()),
                }
            }
            decoder.feed(&chunk[..got]);
        }
    }

    /// Decodes a frame body (kind byte + payload, no length prefix).
    pub fn decode_body(body: &[u8]) -> Result<Frame> {
        let (&kind, payload) = body
            .split_first()
            .ok_or_else(|| HermesError::Io("empty frame body".into()))?;
        let bare = |frame: Frame| {
            if payload.is_empty() {
                Ok(frame)
            } else {
                Err(HermesError::Io(format!(
                    "frame kind 0x{kind:02x} carries {} unexpected payload byte(s)",
                    payload.len()
                )))
            }
        };
        match kind {
            KIND_STATS => bare(Frame::Stats),
            KIND_PING => bare(Frame::Ping),
            KIND_SHUTDOWN => bare(Frame::Shutdown),
            KIND_PONG => bare(Frame::Pong),
            KIND_QUERY => {
                let rec = expect_record(payload)?;
                Some(())
                    .and_then(|_| {
                        Some(Frame::Query(QueryFrame {
                            src: field_str(&rec, "src")?,
                            limit: field_u64(&rec, "limit"),
                            deadline_us: field_u64(&rec, "deadline_us"),
                            budget_us: field_u64(&rec, "budget_us"),
                            tier: field_str(&rec, "tier"),
                            trace: field_bool(&rec, "trace"),
                        }))
                    })
                    .ok_or_else(|| HermesError::Io("query frame missing `src`".into()))
            }
            KIND_BATCH => {
                let Value::List(rows) = value_from_bytes(payload)? else {
                    return Err(HermesError::Io("batch frame payload is not a list".into()));
                };
                let mut out = Vec::with_capacity(rows.len());
                for row in rows {
                    let Value::List(cells) = row else {
                        return Err(HermesError::Io("batch row is not a list".into()));
                    };
                    out.push(cells);
                }
                Ok(Frame::Batch(out))
            }
            KIND_DONE => {
                let rec = expect_record(payload)?;
                let columns = match rec.get("columns") {
                    Some(Value::List(cs)) => cs
                        .iter()
                        .map(|c| match c {
                            Value::Str(s) => Ok(s.to_string()),
                            _ => Err(HermesError::Io("done column is not a string".into())),
                        })
                        .collect::<Result<Vec<_>>>()?,
                    _ => Vec::new(),
                };
                let trace = match rec.get("trace") {
                    Some(Value::List(ls)) => ls
                        .iter()
                        .filter_map(|l| match l {
                            Value::Str(s) => Some(s.to_string()),
                            _ => None,
                        })
                        .collect(),
                    _ => Vec::new(),
                };
                Ok(Frame::Done(DoneFrame {
                    columns,
                    rows: field_u64(&rec, "rows").unwrap_or(0),
                    incomplete: field_bool(&rec, "incomplete"),
                    elapsed_us: field_u64(&rec, "elapsed_us").unwrap_or(0),
                    source_calls: field_u64(&rec, "source_calls").unwrap_or(0),
                    cache_hits: field_u64(&rec, "cache_hits").unwrap_or(0),
                    tier_downgrades: field_u64(&rec, "tier_downgrades").unwrap_or(0),
                    trace,
                }))
            }
            KIND_ERROR => {
                let rec = expect_record(payload)?;
                Ok(Frame::Error(ErrorFrame {
                    code: field_str(&rec, "code")
                        .ok_or_else(|| HermesError::Io("error frame missing `code`".into()))?,
                    message: field_str(&rec, "message").unwrap_or_default(),
                }))
            }
            KIND_STATS_REPLY => Ok(Frame::StatsReply(value_from_bytes(payload)?)),
            other => Err(HermesError::Io(format!("unknown frame kind 0x{other:02x}"))),
        }
    }
}

/// An incremental frame decoder: feed it arbitrary byte chunks as they
/// arrive off a socket and pull complete frames out, with no blocking
/// and no alignment requirements — a frame may arrive one byte at a
/// time or many frames in one chunk.
///
/// Both serving paths share it: the epoll reactor feeds it from
/// nonblocking reads, and [`Frame::read_from`] drives it with exact
/// blocking reads. The length-prefix validation (zero-length frames,
/// the [`MAX_FRAME_LEN`] cap) fails *as soon as the header is visible*,
/// before any body byte is buffered, so a hostile length can never make
/// the decoder allocate.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted opportunistically.
    pos: usize,
}

impl FrameDecoder {
    /// An empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends newly received bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        // Compact before growing: the consumed prefix is dead weight.
        if self.pos > 0 && (self.pos == self.buf.len() || self.pos >= 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when a frame has started arriving but is not yet complete —
    /// the signal a read-deadline (slow-loris) check keys on.
    pub fn mid_frame(&self) -> bool {
        self.buffered() > 0
    }

    /// How many more bytes the decoder needs before [`next_frame`]
    /// *could* yield (never 0): the rest of the 4-byte header, then the
    /// rest of the announced body. Blocking callers use this to read
    /// exactly one frame without over-reading.
    ///
    /// [`next_frame`]: FrameDecoder::next_frame
    pub fn needed(&self) -> usize {
        let have = self.buffered();
        if have < 4 {
            return 4 - have;
        }
        let len = self.peek_len() as usize;
        // An invalid length errors on the next `next_frame` call; claim
        // one byte so callers keep making progress toward that error.
        (4 + len).saturating_sub(have).max(1)
    }

    fn peek_len(&self) -> u32 {
        let b = &self.buf[self.pos..self.pos + 4];
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Decodes the next complete frame, if one is fully buffered.
    /// `Ok(None)` means "feed me more bytes"; an error means the stream
    /// is corrupt and the connection should be dropped.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        if self.buffered() < 4 {
            return Ok(None);
        }
        let len = self.peek_len();
        if len == 0 {
            return Err(HermesError::Io("zero-length frame".into()));
        }
        if len > MAX_FRAME_LEN {
            return Err(HermesError::Io(format!(
                "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte cap"
            )));
        }
        let total = 4 + len as usize;
        if self.buffered() < total {
            return Ok(None);
        }
        let body_start = self.pos + 4;
        let frame = Frame::decode_body(&self.buf[body_start..self.pos + total])?;
        self.pos += total;
        if self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        }
        Ok(Some(frame))
    }
}

fn expect_record(payload: &[u8]) -> Result<Record> {
    match value_from_bytes(payload)? {
        Value::Record(rec) => Ok(rec),
        other => Err(HermesError::Io(format!(
            "frame payload is not a record (got {other:?})"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_value(v: &Value) {
        let bytes = value_to_bytes(v);
        let back = value_from_bytes(&bytes).unwrap();
        assert_eq!(&back, v, "via {bytes:?}");
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip_value(&Value::Null);
        roundtrip_value(&Value::Bool(true));
        roundtrip_value(&Value::Bool(false));
        roundtrip_value(&Value::Int(i64::MIN));
        roundtrip_value(&Value::Int(i64::MAX));
        roundtrip_value(&Value::Float(-13.75));
        roundtrip_value(&Value::Float(f64::INFINITY));
        roundtrip_value(&Value::str(""));
        roundtrip_value(&Value::str("ünïcödé — héllo\nline2"));
    }

    #[test]
    fn nested_structures_roundtrip() {
        let rec = Value::Record(Record::from_fields([
            ("name", Value::str("stewart")),
            ("frames", Value::List(vec![Value::Int(40), Value::Int(935)])),
        ]));
        roundtrip_value(&Value::List(vec![rec.clone(), Value::Null, rec]));
    }

    #[test]
    fn depth_limit_rejects_pathological_nesting() {
        let mut v = Value::Int(1);
        for _ in 0..(MAX_DEPTH + 4) {
            v = Value::List(vec![v]);
        }
        let bytes = value_to_bytes(&v);
        let err = value_from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    #[test]
    fn truncated_and_trailing_inputs_error_cleanly() {
        let bytes = value_to_bytes(&Value::str("hello"));
        for cut in 0..bytes.len() {
            assert!(value_from_bytes(&bytes[..cut]).is_err(), "accepted {cut}");
        }
        let mut extended = bytes.clone();
        extended.push(0x00);
        assert!(value_from_bytes(&extended).is_err());
        // A hostile list count larger than the buffer fails, not OOMs.
        let mut hostile = vec![TAG_LIST];
        hostile.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(value_from_bytes(&hostile).is_err());
    }

    fn roundtrip_frame(f: Frame) {
        let bytes = f.encode();
        let mut cursor = std::io::Cursor::new(bytes);
        let back = Frame::read_from(&mut cursor).unwrap().unwrap();
        assert_eq!(back, f);
        assert!(Frame::read_from(&mut cursor).unwrap().is_none(), "EOF next");
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        roundtrip_frame(Frame::Query(QueryFrame {
            src: "?- item(A, B).".into(),
            limit: Some(5),
            deadline_us: Some(250_000),
            budget_us: None,
            tier: Some("cached-cheap".into()),
            trace: true,
        }));
        roundtrip_frame(Frame::Query(QueryFrame::new("?- q(A).")));
        roundtrip_frame(Frame::Stats);
        roundtrip_frame(Frame::Ping);
        roundtrip_frame(Frame::Shutdown);
        roundtrip_frame(Frame::Pong);
        roundtrip_frame(Frame::Batch(vec![
            vec![Value::Int(1), Value::str("a")],
            vec![Value::Int(2), Value::Null],
        ]));
        roundtrip_frame(Frame::Done(DoneFrame {
            columns: vec!["A".into(), "B".into()],
            rows: 2,
            incomplete: true,
            elapsed_us: 1234,
            source_calls: 3,
            cache_hits: 7,
            tier_downgrades: 1,
            trace: vec!["t+0.000ms call d:p_bf".into()],
        }));
        roundtrip_frame(Frame::Error(ErrorFrame {
            code: "shed".into(),
            message: "gate-full".into(),
        }));
        roundtrip_frame(Frame::StatsReply(Value::Record(Record::from_fields([
            ("queries", Value::Int(12)),
            ("shed", Value::Int(2)),
        ]))));
    }

    #[test]
    fn consecutive_frames_stream() {
        let mut bytes = Frame::Ping.encode();
        bytes.extend(Frame::Stats.encode());
        bytes.extend(Frame::Pong.encode());
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(Frame::Ping));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(Frame::Stats));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), Some(Frame::Pong));
        assert_eq!(Frame::read_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn malformed_frames_error_cleanly() {
        // Zero length.
        let mut cursor = std::io::Cursor::new(vec![0, 0, 0, 0]);
        assert!(Frame::read_from(&mut cursor).is_err());
        // Oversized length.
        let mut cursor = std::io::Cursor::new((MAX_FRAME_LEN + 1).to_le_bytes().to_vec());
        assert!(Frame::read_from(&mut cursor).is_err());
        // Truncated mid-header and mid-body.
        let full = Frame::Query(QueryFrame::new("?- q(A).")).encode();
        for cut in 1..full.len() {
            let mut cursor = std::io::Cursor::new(full[..cut].to_vec());
            assert!(Frame::read_from(&mut cursor).is_err(), "accepted cut {cut}");
        }
        // Unknown kind; bare kind with unexpected payload; bad payloads.
        assert!(Frame::decode_body(&[0xEE]).is_err());
        assert!(Frame::decode_body(&[KIND_PING, 0x00]).is_err());
        assert!(Frame::decode_body(&[KIND_QUERY, TAG_NULL]).is_err());
        assert!(Frame::decode_body(&[KIND_BATCH, TAG_INT]).is_err());
        assert!(Frame::decode_body(&[]).is_err());
    }

    /// The frame corpus shared by the incremental-decoder properties:
    /// every kind, including empty-payload and multi-batch shapes.
    fn corpus() -> Vec<Frame> {
        vec![
            Frame::Query(QueryFrame {
                src: "?- item(A, B).".into(),
                limit: Some(5),
                deadline_us: Some(250_000),
                budget_us: Some(100_000),
                tier: Some("full".into()),
                trace: true,
            }),
            Frame::Query(QueryFrame::new("?- q(A).")),
            Frame::Stats,
            Frame::Ping,
            Frame::Shutdown,
            Frame::Pong,
            Frame::Batch(vec![
                vec![Value::Int(1), Value::str("a")],
                vec![Value::Int(2), Value::Null],
                vec![Value::Float(2.5), Value::Bool(true)],
            ]),
            Frame::Batch(Vec::new()),
            Frame::Done(DoneFrame {
                columns: vec!["A".into()],
                rows: 3,
                incomplete: true,
                elapsed_us: 1234,
                source_calls: 3,
                cache_hits: 7,
                tier_downgrades: 1,
                trace: vec!["t+0.000ms call d:p_bf".into()],
            }),
            Frame::Error(ErrorFrame {
                code: "shed".into(),
                message: "pipeline-full".into(),
            }),
            Frame::StatsReply(Value::Record(Record::from_fields([
                ("queries", Value::Int(12)),
                ("shed", Value::Int(2)),
            ]))),
        ]
    }

    /// Feeds `bytes` to a fresh decoder in the chunks `splits` describes
    /// and returns every frame decoded.
    fn decode_chunked(bytes: &[u8], chunks: impl Iterator<Item = usize>) -> Vec<Frame> {
        let mut decoder = FrameDecoder::new();
        let mut out = Vec::new();
        let mut pos = 0;
        for n in chunks {
            if pos == bytes.len() {
                break;
            }
            let end = (pos + n).min(bytes.len());
            decoder.feed(&bytes[pos..end]);
            pos = end;
            while let Some(f) = decoder.next_frame().unwrap() {
                out.push(f);
            }
        }
        assert_eq!(pos, bytes.len(), "whole stream consumed");
        assert!(!decoder.mid_frame(), "no partial frame left over");
        out
    }

    #[test]
    fn incremental_decode_is_split_invariant() {
        // Every corpus frame, split at every byte boundary: the decode
        // must be identical to the whole-buffer decode.
        for frame in corpus() {
            let bytes = frame.encode();
            for cut in 0..=bytes.len() {
                let got = decode_chunked(&bytes, [cut, bytes.len() - cut].into_iter());
                assert_eq!(got, vec![frame.clone()], "split at {cut}");
            }
            // And one byte at a time.
            let got = decode_chunked(&bytes, std::iter::repeat_n(1, bytes.len()));
            assert_eq!(got, vec![frame.clone()]);
        }
    }

    #[test]
    fn incremental_decode_handles_concatenated_streams() {
        let frames = corpus();
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend(f.encode());
        }
        // One giant chunk.
        assert_eq!(
            decode_chunked(&bytes, [bytes.len()].into_iter()),
            frames,
            "single chunk"
        );
        // Byte-by-byte.
        assert_eq!(
            decode_chunked(&bytes, std::iter::repeat_n(1, bytes.len())),
            frames,
            "byte-by-byte"
        );
        // Deterministic ragged chunking at every phase offset.
        for phase in 0..7usize {
            let sizes = (0..).map(|i| 1 + (i + phase) % 13);
            assert_eq!(decode_chunked(&bytes, sizes), frames, "phase {phase}");
        }
    }

    #[test]
    fn incremental_decoder_fails_closed_on_bad_lengths() {
        // Zero length: rejected the moment the header is visible.
        let mut d = FrameDecoder::new();
        d.feed(&[0, 0, 0, 0]);
        assert!(d.next_frame().is_err());
        // Oversized length: rejected before any body byte is buffered.
        let mut d = FrameDecoder::new();
        d.feed(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(d.next_frame().is_err());
        // A corrupt body is an error, not a silent skip.
        let mut d = FrameDecoder::new();
        d.feed(&[1, 0, 0, 0, 0xEE]);
        assert!(d.next_frame().is_err());
    }

    #[test]
    fn incremental_decoder_reports_progress_needs() {
        let frame = Frame::Query(QueryFrame::new("?- q(A)."));
        let bytes = frame.encode();
        let mut d = FrameDecoder::new();
        assert_eq!(d.needed(), 4, "empty decoder wants a header");
        assert!(!d.mid_frame());
        d.feed(&bytes[..1]);
        assert_eq!(d.needed(), 3);
        assert!(d.mid_frame(), "one header byte is a started frame");
        d.feed(&bytes[1..4]);
        assert_eq!(d.needed(), bytes.len() - 4, "header announces the body");
        d.feed(&bytes[4..]);
        assert_eq!(d.next_frame().unwrap(), Some(frame));
        assert!(!d.mid_frame());
        assert_eq!(d.buffered(), 0);
    }

    #[test]
    fn error_frame_maps_errors_both_ways() {
        let shed = HermesError::Shed {
            reason: "gate-full".into(),
        };
        let frame = ErrorFrame::from_error(&shed);
        assert_eq!(frame.code, "shed");
        assert!(matches!(frame.into_error(), HermesError::Shed { .. }));
        let deadline = HermesError::DeadlineExceeded {
            deadline: crate::SimDuration::from_millis(10),
            elapsed: crate::SimDuration::from_millis(25),
        };
        assert_eq!(ErrorFrame::from_error(&deadline).code, "deadline");
    }
}
