//! Ground domain calls and domain-call patterns.
//!
//! A **ground call** `domain:function(v1, …, vN)` with all arguments bound to
//! constants is the unit of work the mediator sends to an external source; it
//! is also the *key* of both caches the paper introduces — the answer cache
//! (CIM, §4) and the statistics cache (DCSM, §6).
//!
//! A **call pattern** `domain:function(v1, $b, …)` replaces some arguments by
//! the symbol `$b` ("bound to an unknown constant"). Patterns are what the
//! cost estimator asks DCSM about before execution, when it knows an argument
//! will be bound by a prior subgoal but not to which value (§6). Patterns of
//! the same call form a lattice ordered by generalization; DCSM's lookup
//! algorithm (§6.3) walks this lattice.

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A fully ground domain call: `domain:function(arg1, …, argN)`.
///
/// The argument list is `Arc`-backed: ground calls are the *keys* of both
/// caches (CIM answers, DCSM statistics) and get cloned on every probe,
/// store, and invariant hit. With shared args a clone is three reference
/// bumps — the key path never allocates.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroundCall {
    /// The external source ("domain") name, e.g. `video`.
    pub domain: Arc<str>,
    /// The function exported by that domain, e.g. `frames_to_objects`.
    pub function: Arc<str>,
    /// Ground argument values (shared; clone is a reference bump).
    pub args: Arc<[Value]>,
}

impl GroundCall {
    /// Builds a ground call.
    pub fn new(
        domain: impl Into<Arc<str>>,
        function: impl Into<Arc<str>>,
        args: impl Into<Arc<[Value]>>,
    ) -> Self {
        GroundCall {
            domain: domain.into(),
            function: function.into(),
            args: args.into(),
        }
    }

    /// The fully-constant pattern of this call (every argument `Const`).
    pub fn pattern(&self) -> CallPattern {
        CallPattern {
            domain: self.domain.clone(),
            function: self.function.clone(),
            args: self.args.iter().cloned().map(PatArg::Const).collect(),
        }
    }

    /// The fully-general pattern (`$b` in every position).
    pub fn blanket_pattern(&self) -> CallPattern {
        CallPattern {
            domain: self.domain.clone(),
            function: self.function.clone(),
            args: self.args.iter().map(|_| PatArg::Bound).collect(),
        }
    }

    /// Approximate wire size of the request, for the network model.
    pub fn request_bytes(&self) -> usize {
        self.domain.len()
            + self.function.len()
            + 2
            + self.args.iter().map(Value::size_bytes).sum::<usize>()
    }

    /// The shard this call routes to in an `n`-way `(domain, function)`
    /// partition. See [`shard_index`].
    pub fn shard(&self, n: usize) -> usize {
        shard_index(&self.domain, &self.function, n)
    }
}

/// Deterministic shard routing for `(domain, function)` keys.
///
/// Both sharded caches (`ShardedCim` answers, `ShardedDcsm` statistics)
/// partition state by the same key so that every structure that must see
/// *all* entries of one function — invariant posting lists, ordered
/// indexes, DCSM summary tables — lives whole inside a single shard.
/// `DefaultHasher::new()` uses fixed SipHash keys, so the routing is stable
/// across runs and processes (cache persistence round-trips keep shards).
pub fn shard_index(domain: &str, function: &str, n: usize) -> usize {
    use std::hash::{Hash, Hasher};
    if n <= 1 {
        return 0;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    domain.hash(&mut h);
    function.hash(&mut h);
    (h.finish() % n as u64) as usize
}

impl fmt::Display for GroundCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}(", self.domain, self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", a.to_literal())?;
        }
        write!(f, ")")
    }
}

/// One argument position of a [`CallPattern`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PatArg {
    /// Known constant.
    Const(Value),
    /// Bound at execution time, value unknown at planning time (`$b`).
    Bound,
}

impl PatArg {
    /// True if this position is the `$b` symbol.
    pub fn is_bound_symbol(&self) -> bool {
        matches!(self, PatArg::Bound)
    }
}

/// A domain-call pattern: constants in some positions, `$b` in the rest.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallPattern {
    /// The domain name.
    pub domain: Arc<str>,
    /// The function name.
    pub function: Arc<str>,
    /// Per-position constants or `$b`.
    pub args: Vec<PatArg>,
}

impl CallPattern {
    /// Builds a pattern.
    pub fn new(
        domain: impl Into<Arc<str>>,
        function: impl Into<Arc<str>>,
        args: Vec<PatArg>,
    ) -> Self {
        CallPattern {
            domain: domain.into(),
            function: function.into(),
            args,
        }
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Indices of positions holding constants.
    pub fn const_positions(&self) -> Vec<usize> {
        self.args
            .iter()
            .enumerate()
            .filter_map(|(i, a)| matches!(a, PatArg::Const(_)).then_some(i))
            .collect()
    }

    /// Number of constant positions (the pattern's *specificity*).
    pub fn specificity(&self) -> usize {
        self.args
            .iter()
            .filter(|a| matches!(a, PatArg::Const(_)))
            .count()
    }

    /// True if every position is `$b`.
    pub fn is_blanket(&self) -> bool {
        self.specificity() == 0
    }

    /// True if `self` is at least as general as `other`: same call shape and
    /// every constant position of `self` holds the same constant in `other`.
    /// (`other` may fix positions `self` leaves as `$b`.)
    pub fn generalizes(&self, other: &CallPattern) -> bool {
        self.domain == other.domain
            && self.function == other.function
            && self.args.len() == other.args.len()
            && self.args.iter().zip(&other.args).all(|(s, o)| match s {
                PatArg::Bound => true,
                PatArg::Const(v) => matches!(o, PatArg::Const(w) if v == w),
            })
    }

    /// True if the pattern matches a ground call (constants agree).
    pub fn matches(&self, call: &GroundCall) -> bool {
        self.domain == call.domain
            && self.function == call.function
            && self.args.len() == call.args.len()
            && self
                .args
                .iter()
                .zip(call.args.iter())
                .all(|(p, v)| match p {
                    PatArg::Bound => true,
                    PatArg::Const(c) => c == v,
                })
    }

    /// The patterns produced by replacing exactly one constant with `$b` —
    /// the single relaxation step of the §6.3 lookup algorithm.
    pub fn relaxations(&self) -> Vec<CallPattern> {
        self.const_positions()
            .into_iter()
            .map(|i| {
                let args = self
                    .args
                    .iter()
                    .enumerate()
                    .map(|(j, a)| if j == i { PatArg::Bound } else { a.clone() })
                    .collect();
                CallPattern {
                    domain: self.domain.clone(),
                    function: self.function.clone(),
                    args,
                }
            })
            .collect()
    }

    /// The constant positions as a bit mask (bit `i` set ⇔ `args[i]` holds a
    /// constant) — the hash key of the DCSM relaxation-lattice index. `None`
    /// when the arity exceeds 64 positions.
    pub fn mask_bits(&self) -> Option<u64> {
        if self.args.len() > 64 {
            return None;
        }
        let mut mask = 0u64;
        for (i, a) in self.args.iter().enumerate() {
            if matches!(a, PatArg::Const(_)) {
                mask |= 1 << i;
            }
        }
        Some(mask)
    }

    /// The *shape* of this pattern: which positions are constants. Two
    /// patterns with the same shape belong to the same DCSM table.
    pub fn shape(&self) -> PatternShape {
        PatternShape {
            domain: self.domain.clone(),
            function: self.function.clone(),
            const_mask: self
                .args
                .iter()
                .map(|a| matches!(a, PatArg::Const(_)))
                .collect(),
        }
    }

    /// The constants, in position order (the DCSM table row key).
    pub fn const_values(&self) -> Vec<Value> {
        self.args
            .iter()
            .filter_map(|a| match a {
                PatArg::Const(v) => Some(v.clone()),
                PatArg::Bound => None,
            })
            .collect()
    }
}

impl fmt::Display for CallPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}(", self.domain, self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match a {
                PatArg::Const(v) => write!(f, "{}", v.to_literal())?,
                PatArg::Bound => write!(f, "$b")?,
            }
        }
        write!(f, ")")
    }
}

/// Which argument positions of a call shape are constants — the identity of
/// a DCSM (summary) table. `d:f($b, B, C)` in the paper is the shape with
/// `const_mask = [false, true, true]`.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PatternShape {
    /// The domain name.
    pub domain: Arc<str>,
    /// The function name.
    pub function: Arc<str>,
    /// `true` where the position holds a constant ("dimension" attribute).
    pub const_mask: Vec<bool>,
}

impl PatternShape {
    /// Builds a shape.
    pub fn new(
        domain: impl Into<Arc<str>>,
        function: impl Into<Arc<str>>,
        const_mask: Vec<bool>,
    ) -> Self {
        PatternShape {
            domain: domain.into(),
            function: function.into(),
            const_mask,
        }
    }

    /// Number of dimension (constant) positions.
    pub fn dimension_count(&self) -> usize {
        self.const_mask.iter().filter(|b| **b).count()
    }

    /// The fully-general shape of the same call.
    pub fn blanket(&self) -> PatternShape {
        PatternShape {
            domain: self.domain.clone(),
            function: self.function.clone(),
            const_mask: vec![false; self.const_mask.len()],
        }
    }

    /// True if `self` keeps a subset of `other`'s dimensions (i.e. a table of
    /// shape `self` can be derived from a table of shape `other` by dropping
    /// dimension attributes — the lossy summarization of §6.2.2).
    pub fn derivable_from(&self, other: &PatternShape) -> bool {
        self.domain == other.domain
            && self.function == other.function
            && self.const_mask.len() == other.const_mask.len()
            && self
                .const_mask
                .iter()
                .zip(&other.const_mask)
                .all(|(s, o)| !*s || *o)
    }

    /// Projects a pattern of shape `other ⊇ self` onto this shape, keeping
    /// only this shape's dimensions. Returns `None` on shape mismatch.
    pub fn project(&self, pattern: &CallPattern) -> Option<CallPattern> {
        if pattern.domain != self.domain
            || pattern.function != self.function
            || pattern.args.len() != self.const_mask.len()
        {
            return None;
        }
        let args = pattern
            .args
            .iter()
            .zip(&self.const_mask)
            .map(|(a, keep)| if *keep { a.clone() } else { PatArg::Bound })
            .collect();
        Some(CallPattern {
            domain: self.domain.clone(),
            function: self.function.clone(),
            args,
        })
    }
}

impl fmt::Display for PatternShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}[", self.domain, self.function)?;
        for (i, c) in self.const_mask.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", if *c { "C" } else { "$b" })?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call() -> GroundCall {
        GroundCall::new(
            "d",
            "f",
            vec![Value::str("a"), Value::Int(5), Value::Int(2)],
        )
    }

    #[test]
    fn display_forms() {
        assert_eq!(call().to_string(), "d:f('a', 5, 2)");
        let p = CallPattern::new("d", "f", vec![PatArg::Const(Value::Int(5)), PatArg::Bound]);
        assert_eq!(p.to_string(), "d:f(5, $b)");
    }

    #[test]
    fn pattern_from_call_matches_it() {
        let c = call();
        assert!(c.pattern().matches(&c));
        assert!(c.blanket_pattern().matches(&c));
        assert_eq!(c.pattern().specificity(), 3);
        assert!(c.blanket_pattern().is_blanket());
    }

    #[test]
    fn pattern_mismatch_on_different_constant() {
        let c = call();
        let mut p = c.pattern();
        p.args[1] = PatArg::Const(Value::Int(6));
        assert!(!p.matches(&c));
    }

    #[test]
    fn generalization_order() {
        let c = call();
        let full = c.pattern();
        let blanket = c.blanket_pattern();
        let mid = {
            let mut p = full.clone();
            p.args[0] = PatArg::Bound;
            p
        };
        assert!(blanket.generalizes(&full));
        assert!(blanket.generalizes(&mid));
        assert!(mid.generalizes(&full));
        assert!(!full.generalizes(&mid));
        assert!(full.generalizes(&full));
    }

    #[test]
    fn relaxations_drop_one_constant_each() {
        let c = call();
        let rs = c.pattern().relaxations();
        assert_eq!(rs.len(), 3);
        for r in &rs {
            assert_eq!(r.specificity(), 2);
            assert!(r.generalizes(&c.pattern()));
        }
        assert!(c.blanket_pattern().relaxations().is_empty());
    }

    #[test]
    fn shape_identity_and_projection() {
        let c = call();
        let full_shape = c.pattern().shape();
        assert_eq!(full_shape.dimension_count(), 3);
        let lossy = PatternShape::new("d", "f", vec![true, false, false]);
        assert!(lossy.derivable_from(&full_shape));
        assert!(!full_shape.derivable_from(&lossy));
        let projected = lossy.project(&c.pattern()).unwrap();
        assert_eq!(projected.to_string(), "d:f('a', $b, $b)");
        // projecting a pattern of the wrong arity fails
        let other = CallPattern::new("d", "f", vec![PatArg::Bound]);
        assert!(lossy.project(&other).is_none());
    }

    #[test]
    fn mask_bits_mark_constant_positions() {
        let c = call();
        assert_eq!(c.pattern().mask_bits(), Some(0b111));
        assert_eq!(c.blanket_pattern().mask_bits(), Some(0));
        let mut mid = c.pattern();
        mid.args[1] = PatArg::Bound;
        assert_eq!(mid.mask_bits(), Some(0b101));
    }

    #[test]
    fn ground_call_clone_shares_args() {
        let c = call();
        let d = c.clone();
        assert!(Arc::ptr_eq(&c.args, &d.args));
        assert_eq!(c, d);
    }

    #[test]
    fn shape_display() {
        let s = PatternShape::new("d", "f", vec![true, false]);
        assert_eq!(s.to_string(), "d:f[C,$b]");
    }

    #[test]
    fn request_bytes_counts_args() {
        let c = GroundCall::new("d", "f", vec![Value::Int(1)]);
        assert_eq!(c.request_bytes(), 1 + 1 + 2 + 8);
    }
}
