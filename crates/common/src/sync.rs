//! Poison-free synchronization primitives.
//!
//! Thin wrappers over [`std::sync`] locks with the ergonomics the workspace
//! wants: `lock()` / `read()` / `write()` return guards directly instead of
//! a `Result`. A poisoned lock is recovered rather than propagated — every
//! structure guarded here (caches, statistics, RNG streams) stays internally
//! consistent even if a panicking thread held the guard, because all updates
//! are single-assignment or append-only from the guard's point of view.

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard, PoisonError, RwLock as StdRwLock, RwLockReadGuard,
    RwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never fails.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poison.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking, recovering from
    /// poison. `None` means another thread holds the guard right now —
    /// shard facades use this to count contention before falling back to
    /// a blocking `lock()`.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose `read()` / `write()` never fail.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poison.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poison.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn try_lock_contended_and_free() {
        let m = Mutex::new(1);
        {
            let _g = m.lock();
            assert!(m.try_lock().is_none());
        }
        *m.try_lock().expect("uncontended") += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // A std Mutex would now be poisoned; ours recovers transparently.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn poisoned_rwlock_recovers() {
        let l = Arc::new(RwLock::new(5));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*l.read(), 5);
    }
}
