//! The mediator value model.
//!
//! Domain calls exchange [`Value`]s: scalars, lists, and records (named,
//! ordered fields). The HERMES rule language selects inside complex values
//! with attribute paths (`$ans.1`, `$ans.loc`), compares them with relational
//! operators, and uses ground values as cache keys — so `Value` provides a
//! *total* order (across types, with a fixed type rank) and a hash that is
//! consistent with equality, including for floats (NaNs are normalized to a
//! single bit pattern).

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A record value: ordered, named fields.
///
/// Records model the "complex data structures" returned by HERMES domain
/// functions — e.g. an INGRES tuple with named attributes, or an AVIS object
/// descriptor. Fields are addressable both by 1-based position (`$ans.1`,
/// matching the paper's notation) and by name (`$ans.loc`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Record {
    fields: Vec<(Arc<str>, Value)>,
}

impl Record {
    /// Creates an empty record.
    pub fn new() -> Self {
        Record { fields: Vec::new() }
    }

    /// Creates a record from `(name, value)` pairs, preserving order.
    pub fn from_fields<I, S>(fields: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<Arc<str>>,
    {
        Record {
            fields: fields.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Appends a field. Duplicate names are allowed but only the first is
    /// reachable by name lookup; positional access reaches all of them.
    pub fn push<S: Into<Arc<str>>>(&mut self, name: S, value: Value) {
        self.fields.push((name.into(), value));
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field by case-sensitive name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields
            .iter()
            .find(|(n, _)| n.as_ref() == name)
            .map(|(_, v)| v)
    }

    /// Field by **1-based** position, matching the paper's `$ans.1` notation.
    pub fn get_pos(&self, pos_1_based: usize) -> Option<&Value> {
        if pos_1_based == 0 {
            return None;
        }
        self.fields.get(pos_1_based - 1).map(|(_, v)| v)
    }

    /// Iterates `(name, value)` pairs in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Field names in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_ref())
    }

    /// Values in declaration order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.fields.iter().map(|(_, v)| v)
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (n, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {v}")?;
        }
        write!(f, "}}")
    }
}

/// A value in the mediator data model.
///
/// The variants carry everything the HERMES substrates exchange: relational
/// attributes (ints, floats, strings), AVIS frame numbers and object names,
/// spatial coordinates, terrain routes (lists of waypoints), and whole tuples
/// (records).
#[derive(Clone, Debug)]
pub enum Value {
    /// Absent / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float. NaN is permitted and normalized for hashing/equality.
    Float(f64),
    /// Interned string.
    Str(Arc<str>),
    /// Ordered list of values.
    List(Vec<Value>),
    /// Named-field record.
    Record(Record),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Convenience constructor for integer values.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Convenience constructor for floats.
    pub fn float(f: f64) -> Self {
        Value::Float(f)
    }

    /// Rank used to order values of different types. The ordering is
    /// arbitrary but total and stable, which is all cache keys need.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2, // numbers compare together
            Value::Str(_) => 3,
            Value::List(_) => 4,
            Value::Record(_) => 5,
        }
    }

    /// Numeric view, if this value is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if this value is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view, if this value is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_ref()),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True if the value is numeric (`Int` or `Float`).
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Approximate wire size in bytes, used for the byte counts Figure 5
    /// reports and for the network simulator's transfer-time model.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => s.len() + 1,
            Value::List(vs) => 4 + vs.iter().map(Value::size_bytes).sum::<usize>(),
            Value::Record(r) => {
                4 + r
                    .iter()
                    .map(|(n, v)| n.len() + 1 + v.size_bytes())
                    .sum::<usize>()
            }
        }
    }

    /// Canonical float bits: all NaNs collapse to one pattern, and -0.0
    /// collapses to +0.0, so equality and hash agree.
    fn float_bits(f: f64) -> u64 {
        if f.is_nan() {
            f64::NAN.to_bits()
        } else if f == 0.0 {
            0u64
        } else {
            f.to_bits()
        }
    }

    /// Total-order comparison of two floats: NaN sorts above +inf.
    fn float_cmp(a: f64, b: f64) -> Ordering {
        match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => a.partial_cmp(&b).expect("both non-NaN"),
        }
    }

    /// Renders the value as it appears in rule text (strings quoted).
    pub fn to_literal(&self) -> String {
        match self {
            Value::Str(s) => format!("'{}'", s.replace('\'', "\\'")),
            other => other.to_string(),
        }
    }

    /// Parses a scalar literal the way the flat-file and CSV loaders do:
    /// `Int` if it parses as i64, else `Float`, else `Bool`, else `Str`.
    pub fn parse_scalar(text: &str) -> Value {
        let t = text.trim();
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        match t {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            "null" => Value::Null,
            _ => Value::str(t),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => Self::float_cmp(*a, *b),
            (Int(a), Float(b)) => Self::float_cmp(*a as f64, *b),
            (Float(a), Int(b)) => Self::float_cmp(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Record(a), Record(b)) => a.cmp(b),
            (a, b) => a.type_rank().cmp(&b.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float that are numerically equal must hash equal
            // because they compare equal. Hash every number through its
            // canonical f64 bits when it is exactly representable, falling
            // back to the integer bits otherwise.
            Value::Int(i) => {
                let f = *i as f64;
                if f as i64 == *i {
                    2u8.hash(state);
                    Value::float_bits(f).hash(state);
                } else {
                    3u8.hash(state);
                    i.hash(state);
                }
            }
            Value::Float(f) => {
                if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                    2u8.hash(state);
                    Value::float_bits(*f).hash(state);
                } else {
                    4u8.hash(state);
                    Value::float_bits(*f).hash(state);
                }
            }
            Value::Str(s) => {
                5u8.hash(state);
                s.hash(state);
            }
            Value::List(vs) => {
                6u8.hash(state);
                vs.hash(state);
            }
            Value::Record(r) => {
                7u8.hash(state);
                r.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "{s}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Record(r) => write!(f, "{r}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}
impl<'a> From<Cow<'a, str>> for Value {
    fn from(v: Cow<'a, str>) -> Self {
        Value::str(v.into_owned())
    }
}
impl From<Record> for Value {
    fn from(v: Record) -> Self {
        Value::Record(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn scalar_equality_and_order() {
        assert_eq!(Value::Int(3), Value::Int(3));
        assert_ne!(Value::Int(3), Value::Int(4));
        assert!(Value::Int(3) < Value::Int(4));
        assert!(Value::str("abc") < Value::str("abd"));
        assert!(Value::Null < Value::Bool(false));
        assert!(Value::Bool(true) < Value::Int(0));
        assert!(Value::Int(i64::MAX) < Value::str(""));
    }

    #[test]
    fn int_float_cross_type_compare() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert!(Value::Int(3) < Value::Float(3.5));
        assert!(Value::Float(2.5) < Value::Int(3));
        assert_eq!(Value::Int(3).cmp(&Value::Float(3.0)), Ordering::Equal);
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&Value::Int(7)), hash_of(&Value::Float(7.0)));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(-f64::NAN))
        );
    }

    #[test]
    fn nan_is_self_equal_and_sorts_last_among_numbers() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert!(Value::Float(f64::INFINITY) < nan);
        assert!(nan < Value::str("a"));
    }

    #[test]
    fn record_positional_and_named_access() {
        let r = Record::from_fields([
            ("name", Value::str("stewart")),
            ("role", Value::str("brandon")),
        ]);
        assert_eq!(r.get("name"), Some(&Value::str("stewart")));
        assert_eq!(r.get_pos(1), Some(&Value::str("stewart")));
        assert_eq!(r.get_pos(2), Some(&Value::str("brandon")));
        assert_eq!(r.get_pos(0), None);
        assert_eq!(r.get_pos(3), None);
        assert_eq!(r.get("missing"), None);
    }

    #[test]
    fn record_display() {
        let r = Record::from_fields([("a", Value::Int(1)), ("b", Value::str("x"))]);
        assert_eq!(r.to_string(), "{a: 1, b: x}");
    }

    #[test]
    fn list_ordering_is_lexicographic() {
        let a = Value::List(vec![Value::Int(1), Value::Int(2)]);
        let b = Value::List(vec![Value::Int(1), Value::Int(3)]);
        let c = Value::List(vec![Value::Int(1)]);
        assert!(a < b);
        assert!(c < a);
    }

    #[test]
    fn size_bytes_reflects_content() {
        assert_eq!(Value::Int(5).size_bytes(), 8);
        assert_eq!(Value::str("abc").size_bytes(), 4);
        let r = Value::Record(Record::from_fields([("ab", Value::Int(1))]));
        assert_eq!(r.size_bytes(), 4 + 2 + 1 + 8);
        let l = Value::List(vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(l.size_bytes(), 4 + 16);
    }

    #[test]
    fn parse_scalar_types() {
        assert_eq!(Value::parse_scalar("42"), Value::Int(42));
        assert_eq!(Value::parse_scalar("-3"), Value::Int(-3));
        assert_eq!(Value::parse_scalar("2.5"), Value::Float(2.5));
        assert_eq!(Value::parse_scalar("true"), Value::Bool(true));
        assert_eq!(Value::parse_scalar("null"), Value::Null);
        assert_eq!(Value::parse_scalar(" hello "), Value::str("hello"));
    }

    #[test]
    fn to_literal_quotes_strings() {
        assert_eq!(Value::str("rope").to_literal(), "'rope'");
        assert_eq!(Value::Int(9).to_literal(), "9");
    }
}
