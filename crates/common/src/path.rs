//! Attribute paths for reaching inside complex values.
//!
//! The paper's rule language writes conditions like `=($ans.1, a)` and
//! `==(P.name, Actor)`: a variable instantiated to a complex value, followed
//! by a sequence of attribute selectors. [`AttrPath`] is that selector
//! sequence; resolution walks records (by 1-based position or field name) and
//! lists (by 1-based position).

use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// One step in an attribute path.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathStep {
    /// 1-based positional selection, the paper's `$ans.1`.
    Index(usize),
    /// Field selection by name, the paper's `Tuple.loc`.
    Field(Arc<str>),
}

impl fmt::Display for PathStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathStep::Index(i) => write!(f, "{i}"),
            PathStep::Field(s) => write!(f, "{s}"),
        }
    }
}

/// A (possibly empty) sequence of attribute selectors.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct AttrPath {
    steps: Vec<PathStep>,
}

impl AttrPath {
    /// The empty path (selects the value itself).
    pub fn empty() -> Self {
        AttrPath { steps: Vec::new() }
    }

    /// Builds a path from steps.
    pub fn new(steps: Vec<PathStep>) -> Self {
        AttrPath { steps }
    }

    /// Parses a dotted suffix such as `1.name.2`. Numeric components become
    /// positional steps; everything else becomes field steps.
    pub fn parse(dotted: &str) -> Self {
        if dotted.is_empty() {
            return AttrPath::empty();
        }
        let steps = dotted
            .split('.')
            .map(|part| match part.parse::<usize>() {
                Ok(i) => PathStep::Index(i),
                Err(_) => PathStep::Field(Arc::from(part)),
            })
            .collect();
        AttrPath { steps }
    }

    /// True if the path selects the value itself.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps of the path.
    pub fn steps(&self) -> &[PathStep] {
        &self.steps
    }

    /// Resolves the path against a value. Returns `None` when any step does
    /// not apply (wrong type, missing field, out-of-range index).
    pub fn resolve<'v>(&self, value: &'v Value) -> Option<&'v Value> {
        let mut cur = value;
        for step in &self.steps {
            cur = match (step, cur) {
                (PathStep::Index(i), Value::Record(r)) => r.get_pos(*i)?,
                (PathStep::Index(i), Value::List(vs)) => {
                    if *i == 0 {
                        return None;
                    }
                    vs.get(*i - 1)?
                }
                (PathStep::Field(name), Value::Record(r)) => r.get(name)?,
                _ => return None,
            };
        }
        Some(cur)
    }
}

impl fmt::Display for AttrPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in &self.steps {
            write!(f, ".{step}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Record;

    fn sample() -> Value {
        Value::Record(Record::from_fields([
            ("name", Value::str("stewart")),
            (
                "roles",
                Value::List(vec![Value::str("brandon"), Value::str("rupert")]),
            ),
            (
                "address",
                Value::Record(Record::from_fields([("city", Value::str("college park"))])),
            ),
        ]))
    }

    #[test]
    fn resolve_by_field_name() {
        let v = sample();
        let p = AttrPath::parse("name");
        assert_eq!(p.resolve(&v), Some(&Value::str("stewart")));
    }

    #[test]
    fn resolve_by_position() {
        let v = sample();
        assert_eq!(
            AttrPath::parse("1").resolve(&v),
            Some(&Value::str("stewart"))
        );
        assert_eq!(
            AttrPath::parse("2.1").resolve(&v),
            Some(&Value::str("brandon"))
        );
    }

    #[test]
    fn resolve_nested_field() {
        let v = sample();
        assert_eq!(
            AttrPath::parse("address.city").resolve(&v),
            Some(&Value::str("college park"))
        );
    }

    #[test]
    fn resolve_failures_return_none() {
        let v = sample();
        assert_eq!(AttrPath::parse("missing").resolve(&v), None);
        assert_eq!(AttrPath::parse("0").resolve(&v), None);
        assert_eq!(AttrPath::parse("9").resolve(&v), None);
        assert_eq!(AttrPath::parse("name.1").resolve(&v), None);
    }

    #[test]
    fn empty_path_selects_self() {
        let v = Value::Int(5);
        assert_eq!(AttrPath::empty().resolve(&v), Some(&v));
        assert!(AttrPath::parse("").is_empty());
    }

    #[test]
    fn display_round_trip() {
        let p = AttrPath::parse("1.name");
        assert_eq!(p.to_string(), ".1.name");
    }
}
