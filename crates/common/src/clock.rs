//! Virtual time.
//!
//! The paper's experiments report wall-clock milliseconds measured across
//! the 1996 Internet ("query initialization + wait for response + display").
//! We reproduce those experiments on a *simulated* clock: every domain call
//! returns a simulated cost, and the executor advances a [`SimClock`] by
//! exactly that cost. Runs are deterministic, independent of the host
//! machine, and a 49-second call to the Italian site completes instantly.
//!
//! Durations are stored as integer **microseconds** so arithmetic is exact;
//! public accessors speak milliseconds, matching the paper's tables.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A span of simulated time, non-negative, microsecond resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// From whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// From whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * 1_000,
        }
    }

    /// From fractional milliseconds (clamped at zero; NaN becomes zero).
    pub fn from_millis_f64(millis: f64) -> Self {
        if !millis.is_finite() || millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration {
            micros: (millis * 1_000.0).round() as u64,
        }
    }

    /// From whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * 1_000_000,
        }
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1_000.0
    }

    /// Whole milliseconds, rounded to nearest.
    pub fn as_millis(self) -> u64 {
        (self.micros + 500) / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(other.micros),
        }
    }

    /// Larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros = self.micros.saturating_add(rhs.micros);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_mul(rhs),
        }
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_millis_f64(self.as_millis_f64() * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A point on the simulated timeline (microseconds since simulation start).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant {
    micros: u64,
}

impl SimInstant {
    /// The simulation epoch.
    pub const EPOCH: SimInstant = SimInstant { micros: 0 };

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1_000.0
    }

    /// Elapsed time since an earlier instant (saturating).
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_micros(self.micros.saturating_sub(earlier.micros))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            micros: self.micros.saturating_add(rhs.as_micros()),
        }
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

/// The virtual clock the executor advances as it "waits" for domain calls.
///
/// Cloning the clock snapshots the current time; the executor owns the live
/// clock. The clock is single-threaded by design — concurrency in the paper
/// (issuing a real call in parallel with a partial cache hit) is modeled
/// analytically by `max`-combining durations, not by threads.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: SimInstant,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        SimClock {
            now: SimInstant::EPOCH,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimInstant {
        self.now
    }

    /// Advances by `d` and returns the new now.
    pub fn advance(&mut self, d: SimDuration) -> SimInstant {
        self.now = self.now + d;
        self.now
    }

    /// Advances to `t` if it is in the future; the clock never goes back.
    pub fn advance_to(&mut self, t: SimInstant) {
        if t > self.now {
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_micros(500);
        assert_eq!((a + b).as_micros(), 3_500);
        assert_eq!((a - b).as_micros(), 2_500);
        assert_eq!((b - a), SimDuration::ZERO); // saturates
        assert_eq!((a * 4).as_millis(), 12);
    }

    #[test]
    fn duration_from_fractional_millis() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_rounding_to_millis() {
        assert_eq!(SimDuration::from_micros(1_499).as_millis(), 1);
        assert_eq!(SimDuration::from_micros(1_500).as_millis(), 2);
    }

    #[test]
    fn float_scaling() {
        let d = SimDuration::from_millis(10) * 2.5;
        assert_eq!(d.as_millis(), 25);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        let t1 = c.advance(SimDuration::from_millis(5));
        assert_eq!(t1.as_millis_f64(), 5.0);
        c.advance_to(SimInstant::EPOCH); // no-op, never rewinds
        assert_eq!(c.now(), t1);
        c.advance_to(t1 + SimDuration::from_millis(1));
        assert_eq!(c.now().as_millis_f64(), 6.0);
    }

    #[test]
    fn instant_duration_since() {
        let a = SimInstant::EPOCH + SimDuration::from_millis(10);
        let b = SimInstant::EPOCH + SimDuration::from_millis(4);
        assert_eq!(a.duration_since(b).as_millis(), 6);
        assert_eq!(b.duration_since(a), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4u64).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }
}
