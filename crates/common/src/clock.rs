//! Virtual time.
//!
//! The paper's experiments report wall-clock milliseconds measured across
//! the 1996 Internet ("query initialization + wait for response + display").
//! We reproduce those experiments on a *simulated* clock: every domain call
//! returns a simulated cost, and the executor advances a [`SimClock`] by
//! exactly that cost. Runs are deterministic, independent of the host
//! machine, and a 49-second call to the Italian site completes instantly.
//!
//! Durations are stored as integer **microseconds** so arithmetic is exact;
//! public accessors speak milliseconds, matching the paper's tables.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A span of simulated time, non-negative, microsecond resolution.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// Zero duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// From whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration { micros }
    }

    /// From whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration {
            micros: millis * 1_000,
        }
    }

    /// From fractional milliseconds (clamped at zero; NaN becomes zero).
    pub fn from_millis_f64(millis: f64) -> Self {
        if !millis.is_finite() || millis <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration {
            micros: (millis * 1_000.0).round() as u64,
        }
    }

    /// From whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration {
            micros: secs * 1_000_000,
        }
    }

    /// Microseconds.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1_000.0
    }

    /// Whole milliseconds, rounded to nearest.
    pub fn as_millis(self) -> u64 {
        (self.micros + 500) / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(other.micros),
        }
    }

    /// Larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_add(rhs.micros),
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros = self.micros.saturating_add(rhs.micros);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        self.saturating_sub(rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_mul(rhs),
        }
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_millis_f64(self.as_millis_f64() * rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

/// A point on the simulated timeline (microseconds since simulation start).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimInstant {
    micros: u64,
}

impl SimInstant {
    /// The simulation epoch.
    pub const EPOCH: SimInstant = SimInstant { micros: 0 };

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Fractional milliseconds since the epoch.
    pub fn as_millis_f64(self) -> f64 {
        self.micros as f64 / 1_000.0
    }

    /// Elapsed time since an earlier instant (saturating).
    pub fn duration_since(self, earlier: SimInstant) -> SimDuration {
        SimDuration::from_micros(self.micros.saturating_sub(earlier.micros))
    }
}

impl Add<SimDuration> for SimInstant {
    type Output = SimInstant;
    fn add(self, rhs: SimDuration) -> SimInstant {
        SimInstant {
            micros: self.micros.saturating_add(rhs.as_micros()),
        }
    }
}

impl fmt::Display for SimInstant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

/// A real-time anchor: maps a wall-clock origin onto the simulated
/// timeline, so `now()` can be read off the host clock.
#[derive(Clone, Copy, Debug)]
struct WallAnchor {
    /// The host instant that corresponds to `base` on the timeline.
    origin: std::time::Instant,
    /// Where on the (shared, e.g. server-wide) timeline the origin sits.
    base: SimInstant,
}

/// The clock the executor reads as it "waits" for domain calls.
///
/// Two modes share one type, so the executor needs no generics:
///
/// * **Simulated** ([`SimClock::new`], the default): the executor advances
///   the clock by each call's *simulated* cost. Runs are deterministic,
///   independent of the host machine, and a 49-second call to the Italian
///   site completes instantly. This is the paper-exact path.
/// * **Wall-anchored** ([`SimClock::wall`] / [`SimClock::wall_from`]): the
///   network serving stack's mode. `now()` reads real elapsed time from
///   the host clock; [`advance`](Self::advance) and
///   [`advance_to`](Self::advance_to) become no-ops because real time
///   passes on its own (the simulated per-call charges would double-count
///   it). Deadlines, budgets, and tier checkpoints are all computed as
///   `now() + d` and compared against `now()`, so under a wall anchor
///   they bind to real time with no executor changes.
///
/// Cloning the clock snapshots the current time (and shares the anchor);
/// the executor owns the live clock. The clock is single-threaded by
/// design — concurrency in the paper (issuing a real call in parallel with
/// a partial cache hit) is modeled analytically by `max`-combining
/// durations, not by threads.
#[derive(Clone, Debug, Default)]
pub struct SimClock {
    now: SimInstant,
    wall: Option<WallAnchor>,
}

impl SimClock {
    /// A simulated clock at the epoch (the paper-exact mode).
    pub fn new() -> Self {
        SimClock {
            now: SimInstant::EPOCH,
            wall: None,
        }
    }

    /// A wall-anchored clock whose timeline starts at the epoch *now* (in
    /// host time).
    pub fn wall() -> Self {
        SimClock::wall_from(SimInstant::EPOCH)
    }

    /// A wall-anchored clock whose timeline starts at `base` *now* (in
    /// host time). A server seeds `base` from its virtual-time high-water
    /// mark so per-query timelines stay monotone across queries.
    pub fn wall_from(base: SimInstant) -> Self {
        SimClock {
            now: base,
            wall: Some(WallAnchor {
                origin: std::time::Instant::now(),
                base,
            }),
        }
    }

    /// True when this clock reads real time.
    pub fn is_wall(&self) -> bool {
        self.wall.is_some()
    }

    /// Current time: the advanced simulated instant, or (wall mode) the
    /// anchor base plus real elapsed time, whichever is later — the clock
    /// never runs backwards across a mode's own reads.
    pub fn now(&self) -> SimInstant {
        match self.wall {
            None => self.now,
            Some(anchor) => {
                let real = anchor.base
                    + SimDuration::from_micros(
                        anchor.origin.elapsed().as_micros().min(u64::MAX as u128) as u64,
                    );
                real.max(self.now)
            }
        }
    }

    /// Advances by `d` and returns the new now. Under a wall anchor this
    /// is a no-op (real time passes on its own; charging simulated costs
    /// on top would double-count them).
    pub fn advance(&mut self, d: SimDuration) -> SimInstant {
        if self.wall.is_none() {
            self.now = self.now + d;
        }
        self.now()
    }

    /// Advances to `t` if it is in the future; the clock never goes back.
    /// No-op under a wall anchor.
    pub fn advance_to(&mut self, t: SimInstant) {
        if self.wall.is_none() && t > self.now {
            self.now = t;
        }
    }

    /// Waits out `d`: advances the simulated clock, or — under a wall
    /// anchor — actually sleeps the host thread. The retry-backoff path
    /// uses this so backoff binds to real time when serving over the
    /// network and stays a pure virtual charge in simulation.
    pub fn sleep(&mut self, d: SimDuration) -> SimInstant {
        match self.wall {
            None => self.advance(d),
            Some(_) => {
                if d > SimDuration::ZERO {
                    std::thread::sleep(std::time::Duration::from_micros(d.as_micros()));
                }
                self.now()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(3);
        let b = SimDuration::from_micros(500);
        assert_eq!((a + b).as_micros(), 3_500);
        assert_eq!((a - b).as_micros(), 2_500);
        assert_eq!((b - a), SimDuration::ZERO); // saturates
        assert_eq!((a * 4).as_millis(), 12);
    }

    #[test]
    fn duration_from_fractional_millis() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_rounding_to_millis() {
        assert_eq!(SimDuration::from_micros(1_499).as_millis(), 1);
        assert_eq!(SimDuration::from_micros(1_500).as_millis(), 2);
    }

    #[test]
    fn float_scaling() {
        let d = SimDuration::from_millis(10) * 2.5;
        assert_eq!(d.as_millis(), 25);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = SimClock::new();
        let t1 = c.advance(SimDuration::from_millis(5));
        assert_eq!(t1.as_millis_f64(), 5.0);
        c.advance_to(SimInstant::EPOCH); // no-op, never rewinds
        assert_eq!(c.now(), t1);
        c.advance_to(t1 + SimDuration::from_millis(1));
        assert_eq!(c.now().as_millis_f64(), 6.0);
    }

    #[test]
    fn instant_duration_since() {
        let a = SimInstant::EPOCH + SimDuration::from_millis(10);
        let b = SimInstant::EPOCH + SimDuration::from_millis(4);
        assert_eq!(a.duration_since(b).as_millis(), 6);
        assert_eq!(b.duration_since(a), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4u64).map(SimDuration::from_millis).sum();
        assert_eq!(total.as_millis(), 10);
    }

    #[test]
    fn sim_clock_is_not_wall() {
        assert!(!SimClock::new().is_wall());
        assert!(!SimClock::default().is_wall());
        assert!(SimClock::wall().is_wall());
    }

    #[test]
    fn wall_clock_reads_real_elapsed_time() {
        let clock = SimClock::wall();
        let t0 = clock.now();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let elapsed = clock.now().duration_since(t0);
        assert!(elapsed >= SimDuration::from_millis(4), "read {elapsed}");
    }

    #[test]
    fn wall_clock_ignores_virtual_advances() {
        let mut clock = SimClock::wall();
        let before = clock.now();
        clock.advance(SimDuration::from_secs(3600));
        clock.advance_to(before + SimDuration::from_secs(7200));
        // An hour of simulated charge moves a wall clock by (at most) the
        // real time those calls took.
        assert!(clock.now().duration_since(before) < SimDuration::from_secs(1));
    }

    #[test]
    fn wall_clock_starts_at_its_base() {
        let base = SimInstant::EPOCH + SimDuration::from_millis(250);
        let clock = SimClock::wall_from(base);
        assert!(clock.now() >= base);
        assert!(clock.now().duration_since(base) < SimDuration::from_secs(1));
    }

    #[test]
    fn wall_clock_sleep_takes_real_time() {
        let mut clock = SimClock::wall();
        let t0 = std::time::Instant::now();
        clock.sleep(SimDuration::from_millis(5));
        assert!(t0.elapsed() >= std::time::Duration::from_millis(5));
    }

    #[test]
    fn sim_clock_sleep_is_a_virtual_advance() {
        let mut clock = SimClock::new();
        let t0 = std::time::Instant::now();
        clock.sleep(SimDuration::from_secs(30));
        assert!(t0.elapsed() < std::time::Duration::from_secs(1));
        assert_eq!(clock.now().as_micros(), 30_000_000);
    }
}
