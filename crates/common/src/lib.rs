//! # hermes-common
//!
//! Shared foundation for the HERMES mediator reproduction (SIGMOD 1996,
//! *Query Caching and Optimization in Distributed Mediator Systems*).
//!
//! This crate holds the pieces every other crate needs and nothing else:
//!
//! * [`Value`] — the data model exchanged between the mediator and external
//!   domains. Domain functions may return complex structures, so values
//!   include lists and records in addition to scalars. Values have a *total*
//!   order and a stable hash so they can key answer caches and statistics
//!   tables.
//! * [`AttrPath`] — attribute selection paths such as `$ans.1.name`, used by
//!   rule conditions to reach inside complex values.
//! * [`SimClock`] / [`SimDuration`] — the virtual clock. All experiment
//!   timings are simulated milliseconds integrated on this clock, which keeps
//!   runs deterministic and lets a "48 second call to Italy" finish instantly.
//! * [`Rng64`] — a small, seedable, dependency-free PRNG (SplitMix64 +
//!   xoshiro256**) with the distribution helpers the network simulator and
//!   workload generators need.
//! * [`wire`] / [`frame`] — the persistence text codec and the
//!   length-prefixed binary framing `hermes-serve` speaks over TCP.
//! * [`HermesError`] — the error type shared across the workspace.

pub mod call;
pub mod clock;
pub mod error;
pub mod frame;
pub mod path;
pub mod rng;
pub mod sync;
pub mod value;
pub mod wire;

pub use call::{shard_index, CallPattern, GroundCall, PatArg, PatternShape};
pub use clock::{SimClock, SimDuration, SimInstant};
pub use error::{HermesError, Result};
pub use frame::{DoneFrame, ErrorFrame, Frame, FrameDecoder, QueryFrame};
pub use path::{AttrPath, PathStep};
pub use rng::Rng64;
pub use value::{Record, Value};
