//! Whole-experiment smoke tests: every figure harness runs end-to-end and
//! renders, so `cargo test` guards the exact code paths `cargo bench`
//! exercises.

use hermes_bench::{fig234, fig5, fig6, tradeoffs};

#[test]
fn figure5_full_grid_runs_and_renders() {
    let rows = fig5::run(77);
    // 3 queries × 2 sites × 4 configs.
    assert_eq!(rows.len(), 24);
    let text = fig5::render(&rows);
    assert!(text.contains("sites in Italy"));
    assert!(text.contains("cache + partial inv."));
    // Within every (query, site) group the answer counts agree across
    // configurations — caching must never change results.
    for chunk in rows.chunks(4) {
        let n = chunk[0].answers;
        for cell in chunk {
            assert_eq!(cell.answers, n, "{} / {:?}", cell.query, cell.config);
        }
    }
    // And every cached configuration beats no-cache on all-answers time
    // for the pure-AVIS queries (the first query includes uncached
    // relational calls in its invariant configs; partial pays the call).
    for chunk in rows.chunks(4) {
        let no_cache = &chunk[0];
        let cache_only = &chunk[1];
        assert!(
            cache_only.t_all_ms < no_cache.t_all_ms,
            "{} at {:?}",
            no_cache.query,
            no_cache.site
        );
    }
}

#[test]
fn figure6_rows_are_internally_consistent() {
    let rows = fig6::run(78);
    assert_eq!(rows.len(), 6);
    for r in &rows {
        assert!(r.actual_first_ms <= r.actual_all_ms + 1e-9, "{}", r.query);
        assert!(r.lossless_first_ms <= r.lossless_all_ms + 1e-9);
        assert!(r.lossy_first_ms <= r.lossy_all_ms + 1e-9);
        assert!(r.actual_all_ms > 0.0);
    }
    let text = fig6::render(&rows);
    assert!(text.contains("query2'"));
}

#[test]
fn figure234_report_is_complete() {
    let report = fig234::report();
    for needle in [
        "d1:p_bf (detail",
        "d2:q_ff (detail",
        "d1:p_bf[C]",
        "d2:q_ff[]",
        "d1:p_bb[C,$b]",
        "d2:q_bf[$b]",
    ] {
        assert!(report.contains(needle), "missing section {needle}");
    }
}

#[test]
fn tradeoff_sweep_covers_requested_skews() {
    let rows = tradeoffs::run(79, &[0.0, 1.5]);
    assert_eq!(rows.len(), 8); // 2 skews × 4 levels
    let skews: std::collections::BTreeSet<String> =
        rows.iter().map(|r| format!("{:.1}", r.skew)).collect();
    assert_eq!(skews.len(), 2);
    let text = tradeoffs::render(&rows);
    assert!(text.contains("blanket"));
}
