//! Parallel scheduler speedup: four independent domain calls, one per
//! remote site, executed serially (`max_parallel_calls = 1`, the pinned
//! paper configuration) and overlapped (`parallelism(4)`).
//!
//! The scenario is the best case the scheduler is built for: every call is
//! ground at plan entry, targets a distinct site, and none feeds another,
//! so the serial plan pays the sum of four round trips while the parallel
//! plan pays roughly the slowest one plus dispatch overhead.

use crate::table::{ms, TextTable};
use hermes_cim::CimPolicy;
use hermes_common::Value;
use hermes_core::{Mediator, QueryRequest};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_net::{profiles, Network};
use std::sync::Arc;

/// The four-goal query: one `p_ff()` sweep per site, all entry-ground.
const QUERY: &str = "?- in(A, d1:p_ff()) & in(B, d2:p_ff()) &
                        in(C, d3:p_ff()) & in(D, d4:p_ff()).";

/// Outcome of one serial-vs-parallel comparison.
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Parallelism used for the overlapped run.
    pub parallelism: usize,
    /// Simulated ms for all answers, serial run.
    pub serial_ms: f64,
    /// Simulated ms for all answers, overlapped run.
    pub parallel_ms: f64,
    /// `serial_ms / parallel_ms`.
    pub speedup: f64,
    /// Independence groups the overlapped run dispatched.
    pub groups: u64,
    /// Calls that ran inside those groups.
    pub overlapped: u64,
    /// Whether the two runs produced the same answer multiset.
    pub answers_match: bool,
    /// Answer count (identical across runs when `answers_match`).
    pub answers: usize,
}

/// Four synthetic domains (`d1`…`d4`), each a tiny relation on its own
/// well-connected site, so the four sweeps cost about the same and the
/// overlap win approaches the slot count.
fn four_site_world(seed: u64) -> Mediator {
    let mut net = Network::new(seed);
    for (i, site) in [
        profiles::maryland(),
        profiles::cornell(),
        profiles::bucknell(),
        profiles::maryland(),
    ]
    .into_iter()
    .enumerate()
    {
        let d = SyntheticDomain::generate(
            format!("d{}", i + 1),
            seed.wrapping_add(i as u64),
            &[RelationSpec::uniform("p", 4, 1.0)],
        );
        net.place(Arc::new(d), site);
    }
    let mut m = Mediator::from_source("", net).expect("empty program compiles");
    m.caches()
        .policy()
        .routing(CimPolicy::never())
        .apply()
        .unwrap();
    m
}

/// Runs the comparison at `parallelism` slots on a fresh world per run (so
/// neither run warms caches for the other).
pub fn run_at(seed: u64, parallelism: usize) -> SpeedupRow {
    let serial = four_site_world(seed)
        .query(QueryRequest::new(QUERY).parallelism(1))
        .expect("serial run answers");
    let parallel = four_site_world(seed)
        .query(QueryRequest::new(QUERY).parallelism(parallelism))
        .expect("parallel run answers");

    let sorted = |rows: &[Vec<Value>]| {
        let mut rows = rows.to_vec();
        rows.sort();
        rows
    };
    let serial_ms = serial.t_all.as_millis_f64();
    let parallel_ms = parallel.t_all.as_millis_f64();
    SpeedupRow {
        parallelism,
        serial_ms,
        parallel_ms,
        speedup: serial_ms / parallel_ms.max(f64::EPSILON),
        groups: parallel.stats.parallel_groups,
        overlapped: parallel.stats.overlapped_calls,
        answers_match: sorted(&serial.rows) == sorted(&parallel.rows),
        answers: serial.rows.len(),
    }
}

/// The headline comparison: all four calls overlapped.
pub fn run(seed: u64) -> SpeedupRow {
    run_at(seed, 4)
}

/// Renders a slot-count sweep as a table.
pub fn render(rows: &[SpeedupRow]) -> String {
    let mut t = TextTable::new([
        "Slots",
        "Serial All",
        "Parallel All",
        "Speedup",
        "Overlapped",
    ]);
    for r in rows {
        t.row([
            r.parallelism.to_string(),
            ms(r.serial_ms),
            ms(r.parallel_ms),
            format!("{:.2}x", r.speedup),
            format!("{} calls / {} group(s)", r.overlapped, r.groups),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_overlap_at_least_doubles_throughput() {
        let row = run(1996);
        assert!(row.answers_match, "answer sets diverge");
        assert!(row.answers > 0, "scenario produced no answers");
        assert!(row.groups >= 1, "no independence group dispatched");
        assert_eq!(row.overlapped, 4, "all four calls should overlap");
        assert!(
            row.speedup >= 2.0,
            "speedup {:.2}x below the 2x bar (serial {:.1}ms, parallel {:.1}ms)",
            row.speedup,
            row.serial_ms,
            row.parallel_ms
        );
    }

    #[test]
    fn speedup_is_monotone_in_slots() {
        let two = run_at(7, 2);
        let four = run_at(7, 4);
        assert!(two.answers_match && four.answers_match);
        assert!(two.parallel_ms <= two.serial_ms);
        assert!(four.parallel_ms <= two.parallel_ms + 1e-9);
    }
}
