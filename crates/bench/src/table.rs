//! A minimal aligned-column text table, for printing experiment results.

/// A text table with a header row.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats milliseconds the way the paper's tables do (whole ms).
pub fn ms(v: f64) -> String {
    format!("{v:.0}")
}

/// Formats an optional duration in ms.
pub fn ms_opt(v: Option<hermes_common::SimDuration>) -> String {
    v.map(|d| ms(d.as_millis_f64()))
        .unwrap_or_else(|| "-".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["query", "time"]);
        t.row(["q1", "100"]);
        t.row(["a-much-longer-query", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("query"));
        assert!(lines[1].starts_with("---"));
        // Columns align: "time" header position equals "100" position.
        let pos_header = lines[0].find("time").unwrap();
        let pos_row = lines[2].find("100").unwrap();
        assert_eq!(pos_header, pos_row);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert_eq!(t.len(), 1);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn ms_formats_whole_numbers() {
        assert_eq!(ms(1234.56), "1235");
        assert_eq!(ms_opt(None), "-");
    }
}
