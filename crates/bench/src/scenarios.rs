//! Shared scenario builders for the experiments.

use hermes_cim::CimPolicy;
use hermes_common::Value;
use hermes_core::{Mediator, Plan, PlanStep, Route};
use hermes_domains::relational::{Column, ColumnType, RelationalDomain, Schema, Table};
use hermes_domains::video::gen::{rope_store, ROPE_CAST};
use hermes_lang::{parse_query, BodyAtom, Query};
use hermes_net::{profiles, Network, Site};
use std::sync::Arc;

/// Where the AVIS store lives in a scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VideoSite {
    /// A well-connected US site (Cornell profile).
    Usa,
    /// The transatlantic site (Milan profile).
    Italy,
}

impl VideoSite {
    /// The site profile.
    pub fn site(self) -> Site {
        match self {
            VideoSite::Usa => profiles::cornell(),
            VideoSite::Italy => profiles::italy(),
        }
    }

    /// The label the experiment tables print.
    pub fn label(self) -> &'static str {
        match self {
            VideoSite::Usa => "sites in USA",
            VideoSite::Italy => "sites in Italy",
        }
    }
}

/// The relational `cast` table for "The Rope".
pub fn cast_table() -> Table {
    let mut cast = Table::new(
        "cast",
        Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("role", ColumnType::Str),
        ])
        .unwrap(),
    );
    for (role, actor) in ROPE_CAST {
        cast.insert(vec![Value::str(*actor), Value::str(*role)])
            .unwrap();
    }
    cast.create_hash_index("role").unwrap();
    cast
}

/// The standard Figure 5 / Figure 6 world: AVIS (`video`, plus a replica
/// `mirror` on the local LAN), and the relational `cast` database
/// (`relation`, Maryland). Returns a mediator whose program exposes the
/// building-block predicates the experiments query.
pub fn rope_world(seed: u64, video_site: VideoSite, policy: CimPolicy) -> Mediator {
    let relation = RelationalDomain::new("relation");
    relation.add_table(cast_table());

    // The replica: the same content under a different domain name, hosted
    // on the LAN — the sound basis for the Figure 5 equality-invariant
    // configuration (replicated sources).
    let mirror = {
        let store = rope_store();
        MirrorDomain::wrap("mirror", Arc::new(store))
    };

    let mut net = Network::new(seed);
    net.place(Arc::new(rope_store()), video_site.site());
    net.place(Arc::new(mirror), profiles::maryland());
    net.place(relation, profiles::maryland());

    let mut mediator = Mediator::from_source(
        "
        objs(F, L, O) :- in(O, video:frames_to_objects('rope', F, L)).
        vobjs(V, F, L, O) :- in(O, video:frames_to_objects(V, F, L)).
        mobjs(F, L, O) :- in(O, mirror:frames_to_objects('rope', F, L)).
        actors(F, L, O, A) :-
            in(O, video:frames_to_objects('rope', F, L)) &
            in(T, relation:select_eq('cast', 'role', O)) &
            =(T.name, A).
        ",
        net,
    )
    .expect("rope world program compiles");
    mediator.caches().policy().routing(policy).apply().unwrap();
    mediator
}

/// A domain re-exporting another domain's functions under a new name (a
/// replica at a different site).
pub struct MirrorDomain {
    name: Arc<str>,
    inner: Arc<dyn hermes_domains::Domain>,
}

impl MirrorDomain {
    /// Wraps `inner` under `name`.
    pub fn wrap(name: impl Into<Arc<str>>, inner: Arc<dyn hermes_domains::Domain>) -> Self {
        MirrorDomain {
            name: name.into(),
            inner,
        }
    }
}

impl hermes_domains::Domain for MirrorDomain {
    fn name(&self) -> &str {
        &self.name
    }
    fn functions(&self) -> Vec<hermes_domains::FunctionSig> {
        self.inner.functions()
    }
    fn call(
        &self,
        function: &str,
        args: &[Value],
    ) -> hermes_common::Result<hermes_domains::CallOutcome> {
        self.inner.call(function, args)
    }
}

/// The monotone frame-range invariant (narrow ⊆ wide), the basis of the
/// partial-invariant configurations.
pub fn frame_range_invariant() -> hermes_lang::Invariant {
    hermes_lang::parse_invariant(
        "F2 <= F1 & L1 <= L2 =>
         video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).",
    )
    .unwrap()
}

/// The replica equality invariant: `video` and `mirror` hold the same data.
pub fn mirror_invariant() -> hermes_lang::Invariant {
    hermes_lang::parse_invariant(
        "=> video:frames_to_objects(V, F, L) = mirror:frames_to_objects(V, F, L).",
    )
    .unwrap()
}

/// Builds a plan that executes a query's goals **in written order** with
/// direct routing — how Figure 6 measures the appendix queries and their
/// primed reorderings without letting the optimizer interfere.
pub fn plan_in_written_order(query_src: &str) -> Plan {
    let query: Query = parse_query(query_src).expect("query parses");
    let mut steps = Vec::new();
    for goal in &query.goals {
        match goal {
            BodyAtom::In { target, call } => steps.push(PlanStep::Call {
                target: target.clone(),
                call: call.clone(),
                route: Route::Direct,
            }),
            BodyAtom::Cond(c) => steps.push(PlanStep::Cond(c.clone())),
            BodyAtom::Pred(p) => {
                panic!("written-order plans must not contain IDB predicates, got {p}")
            }
        }
    }
    Plan {
        steps,
        answer_vars: query.answer_variables(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::SimDuration;

    #[test]
    fn rope_world_answers_queries_at_both_sites() {
        for site in [VideoSite::Usa, VideoSite::Italy] {
            let mut m = rope_world(1, site, CimPolicy::never());
            let r = m.query("?- objs(4, 47, O).").unwrap();
            assert!(r.rows.len() >= 17, "{site:?}: {} rows", r.rows.len());
        }
    }

    #[test]
    fn italy_slower_than_usa() {
        let t = |site| {
            let mut m = rope_world(2, site, CimPolicy::never());
            m.query("?- objs(4, 47, O).").unwrap().t_all
        };
        assert!(t(VideoSite::Italy) > t(VideoSite::Usa) * 3);
    }

    #[test]
    fn mirror_serves_same_answers_locally() {
        let mut m = rope_world(3, VideoSite::Italy, CimPolicy::never());
        let remote = m.query("?- objs(4, 47, O).").unwrap();
        let local = m.query("?- mobjs(4, 47, O).").unwrap();
        assert_eq!(remote.rows, local.rows);
        assert!(local.t_all < remote.t_all);
    }

    #[test]
    fn written_order_plan_preserves_goal_order() {
        let plan = plan_in_written_order(
            "?- in(S, video:video_size('rope')) &
                in(O, video:frames_to_objects('rope', 4, 47)).",
        );
        assert_eq!(plan.steps.len(), 2);
        assert!(plan.steps[0].to_string().contains("video_size"));
        assert!(plan.steps[1].to_string().contains("frames_to_objects"));
        assert_eq!(plan.answer_vars.len(), 2);
    }

    #[test]
    fn cast_join_produces_actor_names() {
        let mut m = rope_world(4, VideoSite::Usa, CimPolicy::never());
        let r = m.query("?- actors(0, 935, O, A).").unwrap();
        assert_eq!(r.rows.len(), ROPE_CAST.len());
        assert!(r.t_all > SimDuration::ZERO);
    }
}
