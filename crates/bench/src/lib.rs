//! # hermes-bench
//!
//! Experiment harnesses regenerating every table and figure of the paper's
//! evaluation (§8), plus shared scenario builders. Each figure's logic is a
//! library function returning structured rows, so
//!
//! * the `benches/*.rs` targets print the tables (`cargo bench`), and
//! * `tests/shapes.rs` asserts the paper's qualitative claims hold —
//!   who wins, by roughly what factor — on every run.
//!
//! | paper artifact | module | bench target |
//! |---|---|---|
//! | Figures 2–4 (statistics tables + summaries) | [`fig234`] | `fig_2_3_4_summaries` |
//! | Figure 5 (caching / invariants vs sites) | [`fig5`] | `fig5_remote_calls` |
//! | Figure 6 (DCSM predicted vs actual) | [`fig6`] | `fig6_dcsm_utility` |
//! | §8 plan-choice claims 1–2 | [`plan_choice`] | `plan_choice` |
//! | §6.2 summarization tradeoffs | [`tradeoffs`] | `summarization_tradeoffs` |
//! | resilience layer (beyond the paper) | [`chaos`] | `chaos_resilience` |
//! | parallel scheduler (beyond the paper) | [`parallel`] | `parallel_speedup` |

pub mod chaos;
pub mod drift;
pub mod fig234;
pub mod fig5;
pub mod fig6;
pub mod parallel;
pub mod plan_choice;
pub mod scenarios;
pub mod table;
pub mod tradeoffs;
