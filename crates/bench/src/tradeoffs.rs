//! The §6.2 summarization tradeoffs: storage, lookup work, and estimation
//! error as the statistics cache is compacted from full detail down to a
//! single blanket row per call — across argument-popularity skews.
//!
//! Levels:
//!
//! * **detail** — the raw cost vector database, aggregated per query (the
//!   "expensive aggregation" baseline);
//! * **lossless** — one summary row per distinct argument vector;
//! * **lossy(keep-video)** — drop the frame-range dimensions, keep the
//!   video name (what [`droppable_dimensions`] suggests when only the
//!   video name can be a planning-time constant);
//! * **blanket** — a single row per function.
//!
//! The probe set mixes previously-seen calls and unseen calls; error is
//! measured against fresh executions of each probe.
//!
//! [`droppable_dimensions`]: hermes_dcsm::droppable_dimensions

use crate::table::TextTable;
use hermes_common::rng::ZipfSampler;
use hermes_common::{GroundCall, Rng64, SimInstant, Value};
use hermes_dcsm::Dcsm;
use hermes_domains::video::gen::random_store;
use hermes_domains::Domain;

/// One summarization level's aggregate metrics.
#[derive(Clone, Debug)]
pub struct LevelResult {
    /// Level label.
    pub level: &'static str,
    /// Zipf skew of the training workload.
    pub skew: f64,
    /// Approximate storage, bytes.
    pub storage_bytes: usize,
    /// Mean rows/records examined per estimate.
    pub mean_lookup_work: f64,
    /// Mean relative error of `T_all` estimates vs fresh executions.
    pub mean_rel_error: f64,
}

/// A training/probe workload over the random video store.
struct Workload {
    calls: Vec<GroundCall>,
    probes: Vec<GroundCall>,
}

fn workload(seed: u64, skew: f64, n_train: usize, n_probe: usize) -> Workload {
    let mut rng = Rng64::new(seed);
    // Popular windows follow a Zipf over a window catalog.
    let windows: Vec<(u64, u64)> = (0..50)
        .map(|_| {
            let first = rng.range_u64(0, 1_500);
            let len = rng.range_u64(20, 400);
            (first, first + len)
        })
        .collect();
    let sampler = ZipfSampler::new(windows.len(), skew);
    let gen_call = |rng: &mut Rng64| {
        let vid = format!("video_{}", rng.range_usize(0, 4));
        let (f, l) = windows[sampler.sample(rng)];
        GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str(vid), Value::Int(f as i64), Value::Int(l as i64)],
        )
    };
    let calls: Vec<GroundCall> = (0..n_train).map(|_| gen_call(&mut rng)).collect();
    // Probes: half re-draws from the same distribution, half fresh windows.
    let mut probes: Vec<GroundCall> = (0..n_probe / 2).map(|_| gen_call(&mut rng)).collect();
    for _ in 0..(n_probe - probes.len()) {
        let vid = format!("video_{}", rng.range_usize(0, 4));
        let f = rng.range_u64(0, 1_500);
        let l = f + rng.range_u64(20, 400);
        probes.push(GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str(vid), Value::Int(f as i64), Value::Int(l as i64)],
        ));
    }
    Workload { calls, probes }
}

/// Runs the sweep for the given skews.
pub fn run(seed: u64, skews: &[f64]) -> Vec<LevelResult> {
    let store = random_store(seed, 4, 40, 2_000);
    let mut out = Vec::new();
    for &skew in skews {
        let w = workload(seed ^ 0x51EC, skew, 1_500, 60);

        // Ground truth for training calls and probes: the store's own
        // compute cost (we measure estimation quality, so no network noise).
        let exec = |call: &GroundCall| -> (f64, f64) {
            let outcome = store.call(&call.function, &call.args).expect("call runs");
            (
                outcome.compute.t_all.as_millis_f64(),
                outcome.answers.len() as f64,
            )
        };

        // Master detail DCSM.
        let mut master = Dcsm::new();
        for c in &w.calls {
            let (t_all, card) = exec(c);
            master.record(
                c,
                Some(t_all / 3.0),
                Some(t_all),
                Some(card),
                SimInstant::EPOCH,
            );
        }

        let truth: Vec<f64> = w.probes.iter().map(|c| exec(c).0).collect();

        // Level builders.
        let detail = || {
            let mut d = Dcsm::new();
            for c in &w.calls {
                let (t_all, card) = exec(c);
                d.record(
                    c,
                    Some(t_all / 3.0),
                    Some(t_all),
                    Some(card),
                    SimInstant::EPOCH,
                );
            }
            d
        };
        // Every summarized level also keeps the (tiny) blanket table so
        // unseen argument vectors relax to the global mean instead of the
        // prior — what a real deployment does.
        let with_tables = |mask: Option<Vec<bool>>| {
            let mut d = detail();
            match mask {
                None => {
                    d.build_lossless("video", "frames_to_objects");
                }
                Some(m) => {
                    d.build_lossy("video", "frames_to_objects", m);
                }
            }
            d.build_lossy("video", "frames_to_objects", vec![false, false, false]);
            d.drop_detail("video", "frames_to_objects");
            d
        };

        let levels: [(&'static str, Dcsm); 4] = [
            ("detail", detail()),
            ("lossless", with_tables(None)),
            (
                "lossy(keep-video)",
                with_tables(Some(vec![true, false, false])),
            ),
            ("blanket", with_tables(Some(vec![false, false, false]))),
        ];

        for (label, dcsm) in levels {
            let mut work = 0usize;
            let mut err = 0.0;
            for (probe, truth_ms) in w.probes.iter().zip(&truth) {
                let est = dcsm.cost(&probe.pattern());
                work += est.lookup_work;
                err += (est.t_all_ms() - truth_ms).abs() / truth_ms.max(1.0);
            }
            out.push(LevelResult {
                level: label,
                skew,
                storage_bytes: dcsm.approx_bytes(),
                mean_lookup_work: work as f64 / w.probes.len() as f64,
                mean_rel_error: err / w.probes.len() as f64,
            });
        }
    }
    out
}

/// Renders the sweep.
pub fn render(rows: &[LevelResult]) -> String {
    let mut t = TextTable::new([
        "Skew",
        "Level",
        "Storage (bytes)",
        "Mean lookup work",
        "Mean rel. error",
    ]);
    for r in rows {
        t.row([
            format!("{:.1}", r.skew),
            r.level.to_string(),
            r.storage_bytes.to_string(),
            format!("{:.1}", r.mean_lookup_work),
            format!("{:.3}", r.mean_rel_error),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_shrinks_monotonically_with_summarization() {
        let rows = run(5, &[1.0]);
        let get = |level: &str| rows.iter().find(|r| r.level == level).unwrap();
        let detail = get("detail");
        let lossless = get("lossless");
        let keep_video = get("lossy(keep-video)");
        let blanket = get("blanket");
        assert!(detail.storage_bytes > lossless.storage_bytes);
        assert!(lossless.storage_bytes >= keep_video.storage_bytes);
        assert!(keep_video.storage_bytes > blanket.storage_bytes);
    }

    #[test]
    fn summaries_cut_lookup_work_and_errors_grow_gracefully() {
        let rows = run(6, &[1.0]);
        let get = |level: &str| rows.iter().find(|r| r.level == level).unwrap();
        assert!(get("detail").mean_lookup_work > get("lossless").mean_lookup_work);
        // Error grows as dimensions are dropped, but not catastrophically.
        assert!(get("blanket").mean_rel_error >= get("lossless").mean_rel_error * 0.9);
        assert!(get("blanket").mean_rel_error < 5.0);
    }
}
