//! Recency-weighting ablation (§6.2's closing remark: "it is possible to
//! perform the summaries in a more biased fashion … by giving precedence
//! to more recent statistics. Currently we are exploring these
//! possibilities.") — we built it, so we measure it.
//!
//! Setup: a source whose effective service time *drifts* over virtual time
//! (a strong diurnal load curve on its link). Two DCSMs observe the same
//! call stream — one with plain averages (the paper's default), one with
//! exponential recency decay — and both keep predicting the next call's
//! `T_all`. Under drift, the decayed estimator should track the moving
//! level; with a flat network the two should be indistinguishable.

use crate::table::TextTable;
use hermes_common::{GroundCall, SimClock, SimDuration, Value};
use hermes_dcsm::{Dcsm, DcsmConfig};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_net::{Network, Site};
use std::sync::Arc;

/// One ablation row.
#[derive(Clone, Debug)]
pub struct DriftRow {
    /// Load-curve amplitude of the link (0 = flat).
    pub load_amplitude: f64,
    /// Mean relative prediction error with plain averaging.
    pub plain_error: f64,
    /// Mean relative prediction error with recency decay.
    pub decayed_error: f64,
}

fn drifting_site(amplitude: f64) -> Site {
    Site::new(
        "drifty",
        "USA",
        hermes_net::LinkModel {
            connect_ms: 300.0,
            rtt_ms: 60.0,
            jitter_frac: 0.05,
            bytes_per_ms: 50.0,
            load_amplitude: amplitude,
            // One full load cycle per simulated hour.
            load_period_ms: 3_600_000.0,
            failure_rate: 0.0,
        },
    )
}

/// Runs the ablation for each load amplitude.
pub fn run(seed: u64, amplitudes: &[f64]) -> Vec<DriftRow> {
    amplitudes
        .iter()
        .map(|&amp| {
            let domain =
                SyntheticDomain::generate("src", seed, &[RelationSpec::uniform("r", 40, 3.0)]);
            let values = domain.domain_values("r");
            let mut net = Network::new(seed);
            net.place(Arc::new(domain), drifting_site(amp));

            let mut plain = Dcsm::new();
            let mut decayed = Dcsm::with_config(DcsmConfig {
                keep_detail: false,
                recency_decay: Some(0.85),
                ..DcsmConfig::default()
            });
            // Both predict through the blanket table (steady-state
            // operation after summarization).
            // Seed the blanket shapes so online updates have a target.
            let blanket_pattern =
                GroundCall::new("src", "r_bf", vec![Value::str("x")]).blanket_pattern();
            decayed.ensure_table(hermes_common::PatternShape::new("src", "r_bf", vec![false]));

            let mut clock = SimClock::new();
            let mut rng = hermes_common::Rng64::new(seed ^ 0x0D21F7);
            let mut plain_err = 0.0;
            let mut decayed_err = 0.0;
            let mut measured = 0usize;
            // 240 calls spread over ~4 simulated hours: the load level
            // moves several times within the window.
            for i in 0..240 {
                clock.advance(SimDuration::from_secs(60));
                let arg = rng.pick(&values).clone();
                let call = GroundCall::new("src", "r_bf", vec![arg]);
                let outcome = net.execute(&call, clock.now()).expect("call runs");
                let actual = outcome.t_all.as_millis_f64();
                // Predict before folding the observation in; skip the
                // cold-start phase.
                if i >= 20 {
                    let p = plain.cost(&blanket_pattern).t_all_ms();
                    let d = decayed.cost(&blanket_pattern).t_all_ms();
                    plain_err += (p - actual).abs() / actual;
                    decayed_err += (d - actual).abs() / actual;
                    measured += 1;
                }
                plain.record(
                    &call,
                    None,
                    Some(actual),
                    Some(outcome.cardinality() as f64),
                    clock.now(),
                );
                decayed.record(
                    &call,
                    None,
                    Some(actual),
                    Some(outcome.cardinality() as f64),
                    clock.now(),
                );
            }
            // The decayed DCSM has no detail, so make sure its blanket
            // table really answered (otherwise the comparison is void).
            debug_assert!(decayed.tables().len() == 1);
            DriftRow {
                load_amplitude: amp,
                plain_error: plain_err / measured as f64,
                decayed_error: decayed_err / measured as f64,
            }
        })
        .collect()
}

/// Renders the ablation table.
pub fn render(rows: &[DriftRow]) -> String {
    let mut t = TextTable::new([
        "Load amplitude",
        "Plain-average error",
        "Recency-decayed error",
        "Winner",
    ]);
    for r in rows {
        let winner = if r.decayed_error < r.plain_error * 0.95 {
            "decayed"
        } else if r.plain_error < r.decayed_error * 0.95 {
            "plain"
        } else {
            "tie"
        };
        t.row([
            format!("{:.1}", r.load_amplitude),
            format!("{:.3}", r.plain_error),
            format!("{:.3}", r.decayed_error),
            winner.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decay_wins_under_drift_and_ties_when_flat() {
        let rows = run(11, &[0.0, 3.0]);
        let flat = &rows[0];
        let drifting = &rows[1];
        // Under heavy drift the decayed estimator must beat plain
        // averaging...
        assert!(
            drifting.decayed_error < drifting.plain_error,
            "drift: decayed {} vs plain {}",
            drifting.decayed_error,
            drifting.plain_error
        );
        // ... and on a flat network it must not be much worse.
        assert!(
            flat.decayed_error < flat.plain_error + 0.15,
            "flat: decayed {} vs plain {}",
            flat.decayed_error,
            flat.plain_error
        );
    }
}
