//! Figures 2–4: the cost-vector database examples (T16–T19), their
//! lossless summaries (T20–T21), and the lossy summaries after dropping
//! the un-instantiable `B` dimension (Figure 4 / Example 6.2).

use crate::table::TextTable;
use hermes_common::PatternShape;
use hermes_dcsm::{vectordb::figure2_database, CostVectorDb, SummaryTable};

/// Renders a detail table (Figure 2 style) for one function.
pub fn render_detail(db: &CostVectorDb, domain: &str, function: &str) -> String {
    let records = db.records_for(domain, function);
    let arity = records.first().map(|r| r.call.args.len()).unwrap_or(0);
    let mut header: Vec<String> = (1..=arity).map(|i| format!("arg{i}")).collect();
    header.extend(["Card".to_string(), "T_a".to_string()]);
    let mut t = TextTable::new(header);
    for r in records {
        let mut row: Vec<String> = r.call.args.iter().map(|v| v.to_string()).collect();
        row.push(
            r.vector
                .cardinality
                .map(|c| format!("{c:.0}"))
                .unwrap_or_else(|| "?".into()),
        );
        row.push(
            r.vector
                .t_all_ms
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "?".into()),
        );
        t.row(row);
    }
    format!("{domain}:{function} (detail, Figure 2)\n{}", t.render())
}

/// Renders a summary table (Figures 3–4 style).
pub fn render_summary(table: &SummaryTable, caption: &str) -> String {
    let dims = table.shape.dimension_count();
    let mut header: Vec<String> = (1..=dims).map(|i| format!("dim{i}")).collect();
    header.extend(["Card".to_string(), "T_a".to_string(), "l".to_string()]);
    let mut t = TextTable::new(header);
    let mut rows: Vec<_> = table.iter().collect();
    rows.sort_by(|a, b| a.0.cmp(b.0));
    for (key, row) in rows {
        let mut cells: Vec<String> = key.iter().map(|v| v.to_string()).collect();
        cells.push(
            row.card
                .mean()
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "?".into()),
        );
        cells.push(
            row.t_all
                .mean()
                .map(|c| format!("{c:.2}"))
                .unwrap_or_else(|| "?".into()),
        );
        cells.push(row.l.to_string());
        t.row(cells);
    }
    format!("{} ({})\n{}", table.shape, caption, t.render())
}

/// Regenerates all of Figures 2–4 as one report string.
pub fn report() -> String {
    let db = figure2_database();
    let mut out = String::new();
    for (domain, function) in [
        ("d1", "p_bf"),
        ("d1", "p_bb"),
        ("d2", "q_bf"),
        ("d2", "q_ff"),
    ] {
        out.push_str(&render_detail(&db, domain, function));
        out.push('\n');
    }
    // Figure 3: lossless summaries of T16 and T19.
    let t20 = SummaryTable::summarize_lossless(&db, "d1", "p_bf");
    out.push_str(&render_summary(&t20, "lossless summary, Figure 3 / T20"));
    out.push('\n');
    let t21 = SummaryTable::summarize_lossless(&db, "d2", "q_ff");
    out.push_str(&render_summary(&t21, "lossless summary, Figure 3 / T21"));
    out.push('\n');
    // Figure 4: drop the B dimension of p_bb and q_bf (Example 6.2).
    let pbb = SummaryTable::summarize_lossless(&db, "d1", "p_bb");
    let lossy_pbb = pbb
        .derive_lossy(PatternShape::new("d1", "p_bb", vec![true, false]))
        .expect("derivable");
    out.push_str(&render_summary(&lossy_pbb, "lossy summary, Figure 4"));
    out.push('\n');
    let qbf = SummaryTable::summarize_lossless(&db, "d2", "q_bf");
    let lossy_qbf = qbf
        .derive_lossy(PatternShape::new("d2", "q_bf", vec![false]))
        .expect("derivable");
    out.push_str(&render_summary(&lossy_qbf, "lossy summary, Figure 4"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_paper_values() {
        let r = report();
        // T16 detail rows.
        assert!(r.contains("2.20"));
        // T20 lossless: A='a' → T_a 2.10, l=2.
        assert!(r.contains("2.10"));
        // T21: q_ff single row T_a 5.20.
        assert!(r.contains("5.20"));
        // Figure 4: q_bf fully lossy mean (1.10+1.30+1.15)/3 = 1.18.
        assert!(r.contains("1.18"));
    }

    #[test]
    fn detail_tables_have_expected_row_counts() {
        let db = figure2_database();
        assert!(render_detail(&db, "d1", "p_bf").lines().count() >= 6);
        assert!(render_detail(&db, "d2", "q_ff").lines().count() >= 4);
    }
}
