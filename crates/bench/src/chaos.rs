//! Resilience under injected faults: what the circuit breakers, failover
//! replanning, and serve-stale machinery buy, measured.
//!
//! Setup: two replicas of one synthetic relation — `d1` on a well-connected
//! US link that *flaps* (down one second in every ten), `d2` across the
//! Atlantic on a healthy but slow link — with a seeded [`FaultPlan`]
//! dropping calls to both sites at increasing rates. A fixed workload of
//! point queries runs against two mediator configurations:
//!
//! * **retries only** — the pre-resilience posture: exponential backoff,
//!   no breakers (threshold effectively infinite), no failover;
//! * **resilient** — per-site circuit breakers, failover replanning onto
//!   the surviving replica, and serve-stale-on-outage.
//!
//! The table reports, per drop rate and configuration, how many queries
//! were answered at all, how many completely, and the mean simulated
//! latency per query — completeness *and* latency under the same storm.

use crate::table::TextTable;
use hermes_common::SimDuration;
use hermes_core::{BreakerConfig, Mediator};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_net::{profiles, FaultPlan, Network};
use std::sync::Arc;

/// One measured cell: a (drop rate, configuration) pair over the workload.
#[derive(Clone, Debug)]
pub struct ChaosRow {
    /// Probability that any single call is transiently dropped.
    pub drop_rate: f64,
    /// Configuration label.
    pub config: &'static str,
    /// Queries that returned answers (possibly incomplete).
    pub answered: usize,
    /// Queries that returned their *complete* answer set.
    pub complete: usize,
    /// Queries that failed outright.
    pub failed: usize,
    /// Mean simulated milliseconds per query (failures included — their
    /// burned retry time is real).
    pub mean_ms: f64,
    /// Failovers onto the surviving replica.
    pub failovers: u64,
    /// Calls rejected instantly by an open breaker.
    pub short_circuits: u64,
}

fn storm_world(seed: u64, drop_rate: f64, resilient: bool) -> Mediator {
    let spec = [RelationSpec::uniform("p", 8, 2.0)];
    let d1 = SyntheticDomain::generate("d1", seed, &spec);
    let d2 = SyntheticDomain::generate("d2", seed, &spec);
    let mut net = Network::new(seed);
    net.place(Arc::new(d1), profiles::cornell());
    net.place(Arc::new(d2), profiles::italy());
    net.set_fault_plan(
        FaultPlan::new(seed ^ 0xC4A0)
            .flapping(
                "cornell",
                SimDuration::from_secs(10),
                SimDuration::from_secs(1),
                SimDuration::from_secs(2),
            )
            .drop_rate("cornell", drop_rate)
            .drop_rate("milan", drop_rate),
    );
    let mut m = Mediator::from_source(
        "
        item(A, B) :- in(B, d1:p_bf(A)).
        item(A, B) :- in(B, d2:p_bf(A)).
        ",
        net,
    )
    .expect("storm world program compiles");
    let exec = &mut m.config_mut().exec;
    exec.retry_attempts = 2;
    exec.retry_backoff_ms = 500.0;
    m.config_mut().failover = resilient;
    // A short cooldown suits a storm of *transient* drops: the breaker
    // saves the intra-query retry ladder once tripped, but is half-open
    // again (willing to probe) by the time the next query arrives, so an
    // open breaker never writes a merely-flaky site off for good.
    m.breakers().lock().set_config(BreakerConfig {
        failure_threshold: if resilient { 3 } else { u32::MAX },
        cooldown: SimDuration::from_millis(2_500),
    });
    m.caches().set_serve_stale(resilient);
    m
}

/// Runs the fixed workload under one (drop rate, configuration) pair.
fn measure(seed: u64, drop_rate: f64, resilient: bool, queries: usize) -> ChaosRow {
    let mut m = storm_world(seed, drop_rate, resilient);
    let mut row = ChaosRow {
        drop_rate,
        config: if resilient {
            "resilient"
        } else {
            "retries only"
        },
        answered: 0,
        complete: 0,
        failed: 0,
        mean_ms: 0.0,
        failovers: 0,
        short_circuits: 0,
    };
    let mut total = SimDuration::ZERO;
    for i in 0..queries {
        // Eight distinct keys: the second lap onward can hit the cache,
        // which is part of the story — cached answers ride out faults.
        let q = format!("?- item('p_{}', B).", i % 8);
        let before = m.now();
        match m.query(&q) {
            Ok(r) => {
                row.answered += 1;
                if !r.incomplete {
                    row.complete += 1;
                }
                row.failovers += u64::from(r.failovers);
                row.short_circuits += r.stats.breaker_short_circuits;
            }
            Err(_) => row.failed += 1,
        }
        total += m.now().duration_since(before);
        // Drift across the flap schedule rather than sampling one phase.
        m.advance_clock(SimDuration::from_millis(2_700));
    }
    row.mean_ms = total.as_millis_f64() / queries as f64;
    row
}

/// The full sweep: both configurations at each drop rate.
pub fn run(seed: u64, drop_rates: &[f64], queries: usize) -> Vec<ChaosRow> {
    let mut rows = Vec::new();
    for &p in drop_rates {
        rows.push(measure(seed, p, false, queries));
        rows.push(measure(seed, p, true, queries));
    }
    rows
}

/// Renders the sweep as a text table.
pub fn render(rows: &[ChaosRow]) -> String {
    let mut t = TextTable::new([
        "drop rate",
        "config",
        "answered",
        "complete",
        "failed",
        "mean ms/query",
        "failovers",
        "short-circuits",
    ]);
    for r in rows {
        t.row([
            format!("{:.0}%", r.drop_rate * 100.0),
            r.config.to_string(),
            r.answered.to_string(),
            r.complete.to_string(),
            r.failed.to_string(),
            format!("{:.1}", r.mean_ms),
            r.failovers.to_string(),
            r.short_circuits.to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resilient_config_answers_at_least_as_many_queries() {
        let rows = run(1996, &[0.0, 0.5], 24);
        assert_eq!(rows.len(), 4);
        for pair in rows.chunks(2) {
            let (retry, resilient) = (&pair[0], &pair[1]);
            assert_eq!(retry.drop_rate, resilient.drop_rate);
            assert!(
                resilient.answered >= retry.answered,
                "at {:.0}% drop: resilient answered {} < retry-only {}",
                retry.drop_rate * 100.0,
                resilient.answered,
                retry.answered
            );
        }
        // Under a real storm the resilient stack actually fails over.
        let stormy = &rows[3];
        assert_eq!(stormy.config, "resilient");
        assert!(stormy.failovers > 0, "{stormy:?}");
    }

    #[test]
    fn calm_weather_costs_nothing() {
        // With no drops, both configurations answer everything completely.
        let rows = run(9, &[0.0], 16);
        for r in &rows {
            assert_eq!(r.failed, 0);
            assert_eq!(r.complete, r.answered);
        }
    }

    #[test]
    fn render_has_a_row_per_cell() {
        let rows = run(3, &[0.2], 8);
        let text = render(&rows);
        assert!(text.contains("retries only"));
        assert!(text.contains("resilient"));
    }
}
