//! Figure 5: *Executing Remote Calls with Caching and/or Invariants*.
//!
//! Three AVIS queries over "The Rope", each run under four configurations
//! — no cache; cache only; cache + equality invariant; cache + partial
//! invariant — with the video store hosted at a USA site and at the
//! Italian site. Reported: simulated time to first answer and to all
//! answers, plus answer counts, mirroring the paper's table.
//!
//! Warm-up protocol per configuration (a fresh world per cell):
//!
//! * **no cache** — the query runs cold against the remote source.
//! * **cache only** — the exact query ran once before; the measured run is
//!   an exact cache hit.
//! * **cache + equality inv** — a *replica* of the store (`mirror`, on the
//!   local LAN) answered the same call earlier; the equality invariant
//!   `video:… = mirror:…` lets CIM serve the measured call from that
//!   entry.
//! * **cache + partial inv** — a *narrower* frame range was cached; the
//!   monotone range invariant yields those answers immediately while the
//!   real call completes in parallel.

use crate::scenarios::{frame_range_invariant, mirror_invariant, rope_world, VideoSite};
use crate::table::{ms_opt, TextTable};
use hermes_cim::CimPolicy;

/// The four Figure 5 configurations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Config {
    /// Direct calls, no caching.
    NoCache,
    /// Exact-hit caching only.
    CacheOnly,
    /// Caching plus the replica equality invariant.
    CacheEquality,
    /// Caching plus the monotone-range partial invariant.
    CachePartial,
}

impl Config {
    /// All configurations, in the paper's row order.
    pub const ALL: [Config; 4] = [
        Config::NoCache,
        Config::CacheOnly,
        Config::CacheEquality,
        Config::CachePartial,
    ];

    /// The row label.
    pub fn label(self) -> &'static str {
        match self {
            Config::NoCache => "no cache, no invar.",
            Config::CacheOnly => "cache only",
            Config::CacheEquality => "cache + equality inv.",
            Config::CachePartial => "cache + partial inv.",
        }
    }
}

/// One measured query.
#[derive(Clone, Copy, Debug)]
pub struct QuerySpec {
    /// Display label.
    pub label: &'static str,
    /// The measured query.
    pub query: &'static str,
    /// Warm-up query for `CacheOnly` (the query itself).
    pub warm_exact: &'static str,
    /// Warm-up query for `CacheEquality` (via the mirror replica).
    pub warm_mirror: &'static str,
    /// Warm-up query for `CachePartial` (a narrower range).
    pub warm_narrow: &'static str,
}

/// The three Figure 5 queries.
pub const QUERIES: [QuerySpec; 3] = [
    QuerySpec {
        label: "Find all actors in 'The Rope'",
        query: "?- actors(0, 935, O, A).",
        warm_exact: "?- actors(0, 935, O, A).",
        warm_mirror: "?- mobjs(0, 935, O).",
        warm_narrow: "?- objs(0, 400, O).",
    },
    QuerySpec {
        label: "Objects between frames 4 and 47",
        query: "?- objs(4, 47, O).",
        warm_exact: "?- objs(4, 47, O).",
        warm_mirror: "?- mobjs(4, 47, O).",
        warm_narrow: "?- objs(10, 40, O).",
    },
    QuerySpec {
        label: "Objects between frames 4 and 127",
        query: "?- objs(4, 127, O).",
        warm_exact: "?- objs(4, 127, O).",
        warm_mirror: "?- mobjs(4, 127, O).",
        warm_narrow: "?- objs(10, 40, O).",
    },
];

/// One result row.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Which query.
    pub query: &'static str,
    /// Which configuration.
    pub config: Config,
    /// Where the video store was hosted.
    pub site: VideoSite,
    /// Simulated ms to the first answer.
    pub t_first_ms: f64,
    /// Simulated ms to all answers.
    pub t_all_ms: f64,
    /// Number of answers.
    pub answers: usize,
    /// CIM partial hits during the measured run.
    pub partial_hits: u64,
    /// CIM complete (exact + equality) hits during the measured run.
    pub complete_hits: u64,
}

/// Runs the full Figure 5 grid.
pub fn run(seed: u64) -> Vec<Fig5Row> {
    let mut rows = Vec::new();
    for spec in QUERIES {
        for site in [VideoSite::Usa, VideoSite::Italy] {
            for config in Config::ALL {
                rows.push(run_cell(seed, spec, site, config));
            }
        }
    }
    rows
}

/// Runs one cell of the grid.
pub fn run_cell(seed: u64, spec: QuerySpec, site: VideoSite, config: Config) -> Fig5Row {
    let policy = match config {
        Config::NoCache => CimPolicy::never(),
        _ => CimPolicy::cache_everything(),
    };
    let mut m = rope_world(seed, site, policy);
    match config {
        Config::NoCache => {}
        Config::CacheOnly => {
            m.query(spec.warm_exact).expect("warm-up query");
        }
        Config::CacheEquality => {
            m.caches().add_invariant(mirror_invariant()).unwrap();
            m.query(spec.warm_mirror).expect("warm-up query");
        }
        Config::CachePartial => {
            m.caches().add_invariant(frame_range_invariant()).unwrap();
            m.query(spec.warm_narrow).expect("warm-up query");
        }
    }
    let result = m.query(spec.query).expect("measured query");
    Fig5Row {
        query: spec.label,
        config,
        site,
        t_first_ms: result
            .t_first
            .map(|d| d.as_millis_f64())
            .unwrap_or(f64::NAN),
        t_all_ms: result.t_all.as_millis_f64(),
        answers: result.rows.len(),
        partial_hits: result.stats.cim_partial,
        complete_hits: result.stats.cim_exact + result.stats.cim_equal,
    }
}

/// Renders the rows as the paper-style table.
pub fn render(rows: &[Fig5Row]) -> String {
    let mut t = TextTable::new([
        "Query",
        "Type",
        "Time for First Ans.",
        "Time for All Ans.",
        "Answers",
        "Comments",
    ]);
    let mut last_query = "";
    for r in rows {
        let query = if r.query == last_query { "" } else { r.query };
        last_query = r.query;
        t.row([
            query.to_string(),
            r.config.label().to_string(),
            ms_opt(Some(hermes_common::SimDuration::from_millis_f64(
                r.t_first_ms,
            ))),
            ms_opt(Some(hermes_common::SimDuration::from_millis_f64(
                r.t_all_ms,
            ))),
            r.answers.to_string(),
            r.site.label().to_string(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_shapes_hold_for_usa_q2() {
        let spec = QUERIES[1];
        let no_cache = run_cell(7, spec, VideoSite::Usa, Config::NoCache);
        let cache = run_cell(7, spec, VideoSite::Usa, Config::CacheOnly);
        let equality = run_cell(7, spec, VideoSite::Usa, Config::CacheEquality);
        let partial = run_cell(7, spec, VideoSite::Usa, Config::CachePartial);

        // Everyone returns the same number of answers.
        assert_eq!(no_cache.answers, cache.answers);
        assert_eq!(no_cache.answers, equality.answers);
        assert_eq!(no_cache.answers, partial.answers);

        // "Using caches always leads to savings in time."
        assert!(cache.t_all_ms < no_cache.t_all_ms);
        assert!(equality.t_all_ms < no_cache.t_all_ms);
        assert_eq!(cache.complete_hits, 1);
        assert_eq!(equality.complete_hits, 1);

        // Partial invariant: fast first answer; all-answers pays the call.
        assert_eq!(partial.partial_hits, 1);
        assert!(partial.t_first_ms < no_cache.t_first_ms);
        assert!(partial.t_all_ms > cache.t_all_ms);
    }

    #[test]
    fn italy_amplifies_cache_savings() {
        let spec = QUERIES[2];
        let no_cache = run_cell(8, spec, VideoSite::Italy, Config::NoCache);
        let cache = run_cell(8, spec, VideoSite::Italy, Config::CacheOnly);
        assert!(no_cache.t_all_ms > cache.t_all_ms * 20.0);
    }
}
