//! The §8 plan-choice claims, as a randomized sweep:
//!
//! 1. *All answers*: "If DCSM predicts Q1 is better than Q2, then Q1
//!    almost always runs much faster than Q2."
//! 2. *First answers*: "If DCSM predicts Q1 is better than Q2 by at least
//!    a 50% margin, then Q1 usually runs faster. … by a small margin, the
//!    results are unpredictable."
//!
//! Each trial builds a random two-relation federation with asymmetric cost
//! profiles, trains DCSM on neighboring queries, then compares the
//! *predicted* plan ordering with the *measured* ordering for every plan
//! pair, bucketed by predicted margin.

use crate::table::TextTable;
use hermes_cim::CimPolicy;
use hermes_common::Rng64;
use hermes_core::{Mediator, Planned};
use hermes_domains::synthetic::{CostProfile, RelationSpec, SyntheticDomain};
use hermes_net::{profiles, Network};
use std::sync::Arc;

/// One predicted-vs-actual plan pair observation.
#[derive(Clone, Copy, Debug)]
pub struct PairObservation {
    /// Predicted cost ratio `worse/better` (≥ 1).
    pub predicted_margin: f64,
    /// True if the predicted-better plan actually ran faster.
    pub prediction_held: bool,
    /// True if this pair was measured on first-answer time (else all).
    pub first_answer_mode: bool,
}

/// Aggregated accuracy for one margin bucket.
#[derive(Clone, Debug)]
pub struct Bucket {
    /// Display label, e.g. `1.0-1.5x`.
    pub label: String,
    /// Pairs in the bucket.
    pub pairs: usize,
    /// Fraction where the prediction held.
    pub accuracy: f64,
}

fn build_world(seed: u64) -> Mediator {
    let mut rng = Rng64::new(seed);
    let spec_a = RelationSpec::uniform("ra", 40 + rng.range_usize(0, 200), rng.range_f64(1.0, 8.0))
        .with_profile(CostProfile {
            start_ms: rng.range_f64(1.0, 20.0),
            per_answer_ms: rng.range_f64(0.05, 0.8),
            per_probe_ms: rng.range_f64(0.2, 3.0),
        })
        .with_skew(rng.range_f64(0.0, 1.2));
    let spec_b = RelationSpec::uniform("rb", 10 + rng.range_usize(0, 60), rng.range_f64(1.0, 4.0))
        .with_profile(CostProfile {
            start_ms: rng.range_f64(0.5, 6.0),
            per_answer_ms: rng.range_f64(0.02, 0.3),
            per_probe_ms: rng.range_f64(0.1, 1.0),
        });
    let da = SyntheticDomain::generate("sa", seed ^ 0xA, &[spec_a]);
    let db = SyntheticDomain::generate("sb", seed ^ 0xB, &[spec_b]);
    let mut net = Network::new(seed);
    let far_site = if rng.chance(0.5) {
        profiles::cornell()
    } else {
        profiles::bucknell()
    };
    net.place(Arc::new(da), far_site);
    net.place(Arc::new(db), profiles::maryland());
    let mut m = Mediator::from_source(
        "
        ra(A, B) :- in(B, sa:ra_bf(A)).
        ra(A, B) :- in(A, sa:ra_fb(B)).
        ra(A, B) :- in(Ans, sa:ra_ff()) & =(Ans.a, A) & =(Ans.b, B).
        rb(A, B) :- in(B, sb:rb_bf(A)).
        rb(A, B) :- in(A, sb:rb_fb(B)).
        rb(A, B) :- in(Ans, sb:rb_ff()) & =(Ans.a, A) & =(Ans.b, B).
        chain(X, Y, Z) :- ra(X, Y) & rb(Z, Y).
        ",
        net,
    )
    .unwrap();
    m.caches()
        .policy()
        .routing(CimPolicy::never())
        .apply()
        .unwrap();
    m.config_mut().rewrite.max_plans = 8;
    m
}

fn train(m: &mut Mediator, seed: u64) {
    // Cover every call pattern with varied instantiations, as the paper
    // does ("about 20 different instantiations for the arguments of a
    // domain call"): the bound probes, the inverses, and the full scans.
    let mut rng = Rng64::new(seed ^ 0x7717);
    for _ in 0..12 {
        let x = rng.range_usize(0, 40);
        let y = rng.range_i64(0, 80);
        let _ = m.query(format!("?- in(B, sa:ra_bf('ra_{x}'))."));
        let _ = m.query(format!("?- in(A, sa:ra_fb({y}))."));
        let _ = m.query(format!("?- in(X, sa:ra_bb('ra_{x}', {y}))."));
        let _ = m.query(format!(
            "?- in(B, sb:rb_bf('rb_{}')).",
            rng.range_usize(0, 10)
        ));
        let _ = m.query(format!("?- in(A, sb:rb_fb({y}))."));
        let _ = m.query(format!(
            "?- in(X, sb:rb_bb('rb_{}', {y})).",
            rng.range_usize(0, 10)
        ));
    }
    for _ in 0..3 {
        let _ = m.query("?- in(P, sa:ra_ff()).");
        let _ = m.query("?- in(P, sb:rb_ff()).");
    }
}

/// Measures every candidate plan of `planned` on fresh worlds; returns
/// per-plan (t_first_ms, t_all_ms).
fn measure_plans(seed: u64, q: &str, planned: &Planned) -> Vec<(f64, f64)> {
    (0..planned.plans.len())
        .map(|i| {
            let mut fresh = build_world(seed);
            // Re-train so DCSM state does not matter for the measurement
            // (we reuse the same network/cost world).
            let single = Planned {
                plans: vec![planned.plans[i].clone()],
                estimates: vec![planned.estimates[i]],
                chosen: 0,
            };
            let _ = q;
            let r = fresh.execute(single, None).expect("plan executes");
            (
                r.t_first
                    .map(|d| d.as_millis_f64())
                    .unwrap_or(r.t_all.as_millis_f64()),
                r.t_all.as_millis_f64(),
            )
        })
        .collect()
}

/// Runs `trials` random federations; returns all pair observations.
pub fn run(base_seed: u64, trials: usize) -> Vec<PairObservation> {
    let mut out = Vec::new();
    for t in 0..trials {
        let seed = base_seed + t as u64 * 977;
        let mut m = build_world(seed);
        train(&mut m, seed);
        let x = t % 30;
        let q = format!("?- chain('ra_{x}', Y, Z).");
        let Ok(planned) = m.plan(&q) else { continue };
        if planned.plans.len() < 2 {
            continue;
        }
        let measured = measure_plans(seed, &q, &planned);
        for i in 0..planned.plans.len() {
            for j in 0..planned.plans.len() {
                if i == j {
                    continue;
                }
                for first_mode in [false, true] {
                    let (pi, pj, ai, aj) = if first_mode {
                        (
                            planned.estimates[i].t_first_ms.unwrap(),
                            planned.estimates[j].t_first_ms.unwrap(),
                            measured[i].0,
                            measured[j].0,
                        )
                    } else {
                        (
                            planned.estimates[i].t_all_ms.unwrap(),
                            planned.estimates[j].t_all_ms.unwrap(),
                            measured[i].1,
                            measured[j].1,
                        )
                    };
                    if pi >= pj || pi <= 0.0 {
                        continue; // consider each unordered pair once, i better
                    }
                    out.push(PairObservation {
                        predicted_margin: pj / pi,
                        prediction_held: ai <= aj,
                        first_answer_mode: first_mode,
                    });
                }
            }
        }
    }
    out
}

/// Buckets observations by predicted margin for one mode.
pub fn bucketize(obs: &[PairObservation], first_answer_mode: bool) -> Vec<Bucket> {
    // The paper's claim 2 names a "50% margin" (1.5x) as the reliability
    // boundary for first-answer predictions; finer buckets below it show
    // the unpredictable region.
    let edges: [(f64, f64, &str); 6] = [
        (1.0, 1.1, "1.0-1.1x"),
        (1.1, 1.3, "1.1-1.3x"),
        (1.3, 1.5, "1.3-1.5x"),
        (1.5, 3.0, "1.5-3.0x"),
        (3.0, 10.0, "3-10x"),
        (10.0, f64::INFINITY, ">10x"),
    ];
    edges
        .iter()
        .map(|(lo, hi, label)| {
            let in_bucket: Vec<&PairObservation> = obs
                .iter()
                .filter(|o| {
                    o.first_answer_mode == first_answer_mode
                        && o.predicted_margin >= *lo
                        && o.predicted_margin < *hi
                })
                .collect();
            let held = in_bucket.iter().filter(|o| o.prediction_held).count();
            Bucket {
                label: label.to_string(),
                pairs: in_bucket.len(),
                accuracy: if in_bucket.is_empty() {
                    f64::NAN
                } else {
                    held as f64 / in_bucket.len() as f64
                },
            }
        })
        .collect()
}

/// Renders the accuracy table for both modes.
pub fn render(obs: &[PairObservation]) -> String {
    let mut t = TextTable::new([
        "Predicted margin",
        "All-answers pairs",
        "All-answers accuracy",
        "First-answer pairs",
        "First-answer accuracy",
    ]);
    let all = bucketize(obs, false);
    let first = bucketize(obs, true);
    for (a, f) in all.iter().zip(&first) {
        t.row([
            a.label.clone(),
            a.pairs.to_string(),
            format!("{:.0}%", a.accuracy * 100.0),
            f.pairs.to_string(),
            format!("{:.0}%", f.accuracy * 100.0),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_hold_on_a_small_sweep() {
        let obs = run(100, 8);
        assert!(obs.len() > 20, "only {} observations", obs.len());
        // Claim 1: all-answers predictions with a *large* margin (>= 3x)
        // are reliable.
        let all = bucketize(&obs, false);
        let big: Vec<&Bucket> = all
            .iter()
            .filter(|b| (b.label == "3-10x" || b.label == ">10x") && b.pairs > 0)
            .collect();
        let weighted: f64 = big.iter().map(|b| b.accuracy * b.pairs as f64).sum::<f64>()
            / big.iter().map(|b| b.pairs as f64).sum::<f64>().max(1.0);
        assert!(
            weighted > 0.8,
            "all-answers >=3x-margin accuracy {weighted}"
        );
    }
}
