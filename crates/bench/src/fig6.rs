//! Figure 6: *The Utility of DCSM* — actual vs DCSM-predicted running
//! times, for the appendix queries and their primed reorderings.
//!
//! Procedure (mirroring §8):
//!
//! 1. warm DCSM with ~20 instantiations per domain call, at varied
//!    arguments, by running training calls against the live sources;
//! 2. build a **lossless** DCSM view (detail + lossless summary tables)
//!    and a **lossy** view ("obtained by dropping all the attributes of
//!    the cached domain call statistics": blanket tables only);
//! 3. for each appendix query, fix the *written* subgoal order (the primed
//!    variants are the reorderings), predict `[T_first, T_all]` with both
//!    views, then execute the same plan and record the actual times.

use crate::scenarios::{plan_in_written_order, rope_world, VideoSite};
use crate::table::{ms, TextTable};
use hermes_cim::CimPolicy;
use hermes_common::{Rng64, SimClock};
use hermes_core::{estimate_plan, CostConfig, ExecConfig, Executor};
use hermes_dcsm::{Dcsm, DcsmConfig};
use hermes_domains::video::gen::ROPE_CAST;

/// The appendix queries, written-order. `First = 4`, `Last = 47`.
pub const QUERIES: [(&str, &str); 6] = [
    (
        "query1",
        "?- in(Size, video:video_size('rope')) &
            in(Object, video:frames_to_objects('rope', 4, 47)).",
    ),
    (
        "query1'",
        "?- in(Object, video:frames_to_objects('rope', 4, 47)) &
            in(Size, video:video_size('rope')).",
    ),
    (
        "query2",
        "?- in(Object, video:frames_to_objects('rope', 4, 47)) &
            in(Frames, video:object_to_frames('rope', Object)) &
            in(Actor, relation:select_eq('cast', 'role', Object)).",
    ),
    (
        "query2'",
        "?- in(Object, video:frames_to_objects('rope', 4, 47)) &
            in(Actor, relation:select_eq('cast', 'role', Object)) &
            in(Frames, video:object_to_frames('rope', Object)).",
    ),
    (
        "query3",
        "?- in(Object, video:frames_to_objects('rope', 4, 47)) &
            in(Actor, relation:select_eq('cast', 'role', Object)).",
    ),
    (
        "query4",
        "?- in(P, relation:all('cast')) &
            =(P.name, Actor) & =(P.role, Object) &
            in(Object, video:frames_to_objects('rope', 4, 47)).",
    ),
];

/// One result row.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Query label.
    pub query: &'static str,
    /// Measured ms to first answer.
    pub actual_first_ms: f64,
    /// Measured ms to all answers.
    pub actual_all_ms: f64,
    /// Lossless-DCSM prediction, first answer.
    pub lossless_first_ms: f64,
    /// Lossless-DCSM prediction, all answers.
    pub lossless_all_ms: f64,
    /// Lossy-DCSM prediction, first answer.
    pub lossy_first_ms: f64,
    /// Lossy-DCSM prediction, all answers.
    pub lossy_all_ms: f64,
}

/// Runs the experiment.
pub fn run(seed: u64) -> Vec<Fig6Row> {
    // Sources over the network (video at a USA site, relation local).
    let mut m = rope_world(seed, VideoSite::Usa, CimPolicy::never());
    train(&mut m, seed);

    // The lossless view: the mediator's own DCSM, plus lossless tables.
    {
        let dcsm_arc = m.dcsm();
        let mut dcsm = dcsm_arc.lock();
        for (domain, function) in dcsm.db().functions() {
            dcsm.build_lossless(&domain, &function);
        }
    }
    // The lossy view: replay all records, keep only blanket tables.
    let lossy = {
        let mut lossy = Dcsm::with_config(DcsmConfig {
            keep_detail: true,
            ..DcsmConfig::default()
        });
        let master = m.dcsm();
        let master = master.lock();
        for (domain, function) in master.db().functions() {
            for r in master.db().records_for(&domain, &function) {
                lossy.record(
                    &r.call,
                    r.vector.t_first_ms,
                    r.vector.t_all_ms,
                    r.vector.cardinality,
                    r.recorded_at,
                );
            }
        }
        for (domain, function) in master.db().functions() {
            let arity = master
                .db()
                .records_for(&domain, &function)
                .first()
                .map(|r| r.call.args.len())
                .unwrap_or(0);
            lossy.build_lossy(&domain, &function, vec![false; arity]);
            lossy.drop_detail(&domain, &function);
        }
        lossy
    };

    let cost_cfg = CostConfig::default();
    let mut rows = Vec::new();
    for (label, query_src) in QUERIES {
        let plan = plan_in_written_order(query_src);
        let (lossless_first, lossless_all) = {
            let dcsm = m.dcsm();
            let dcsm = dcsm.lock();
            let e = estimate_plan(&plan, &*dcsm, &cost_cfg);
            (e.t_first_ms.unwrap(), e.t_all_ms.unwrap())
        };
        let lossy_est = estimate_plan(&plan, &lossy, &cost_cfg);

        // Execute the written-order plan without contaminating statistics.
        let scratch_cim = hermes_common::sync::Mutex::new(hermes_cim::Cim::new());
        let dcsm_arc = m.dcsm();
        let outcome = Executor::new(
            m.network(),
            &scratch_cim,
            dcsm_arc.as_ref(),
            SimClock::new(),
            ExecConfig::builder()
                .record_stats(false)
                .store_results(false)
                .build(),
        )
        .run(&plan, None)
        .expect("measured query runs");

        rows.push(Fig6Row {
            query: label,
            actual_first_ms: outcome
                .t_first
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN),
            actual_all_ms: outcome.t_all.as_millis_f64(),
            lossless_first_ms: lossless_first,
            lossless_all_ms: lossless_all,
            lossy_first_ms: lossy_est.t_first_ms.unwrap(),
            lossy_all_ms: lossy_est.t_all_ms.unwrap(),
        });
    }
    rows
}

/// Runs ~20 training instantiations per domain call against the live
/// sources, so the statistics cache has the paper's stated coverage.
fn train(m: &mut hermes_core::Mediator, seed: u64) {
    let mut rng = Rng64::new(seed ^ 0xD5C3);
    // frames_to_objects at varied windows, over both stored videos —
    // vertigo is longer, so its sweeps are slower; per-video (lossless)
    // statistics can tell them apart, blanket (lossy) tables cannot.
    for _ in 0..20 {
        let first = rng.range_u64(0, 800);
        let len = rng.range_u64(10, 160);
        let _ = m.query(format!("?- objs({first}, {}, O).", first + len));
        let vfirst = rng.range_u64(0, 1_300);
        let vlen = rng.range_u64(100, 900);
        let _ = m.query(format!(
            "?- vobjs('vertigo', {vfirst}, {}, O).",
            (vfirst + vlen).min(1_535)
        ));
    }
    // video_size / object_to_frames / select_eq / all at varied args.
    let _ = m.query("?- in(S, video:video_size('rope')).");
    let _ = m.query("?- in(S, video:video_size('vertigo')).");
    for _ in 0..20 {
        let (role, _) = ROPE_CAST[rng.range_usize(0, ROPE_CAST.len())];
        let _ = m.query(format!(
            "?- in(F, video:object_to_frames('rope', '{role}'))."
        ));
        let _ = m.query(format!(
            "?- in(T, relation:select_eq('cast', 'role', '{role}'))."
        ));
    }
    let _ = m.query("?- in(P, relation:all('cast')).");
    let _ = m.query("?- in(P, relation:all('cast')).");
    // A couple of probes with values outside the cast.
    let _ = m.query("?- in(T, relation:select_eq('cast', 'role', 'chest')).");
}

/// Renders the rows as the paper-style table.
pub fn render(rows: &[Fig6Row]) -> String {
    let mut t = TextTable::new([
        "Query",
        "Actual First",
        "DCSM-Lossless First",
        "DCSM-Lossy First",
        "Actual All",
        "DCSM-Lossless All",
        "DCSM-Lossy All",
    ]);
    for r in rows {
        t.row([
            r.query.to_string(),
            ms(r.actual_first_ms),
            ms(r.lossless_first_ms),
            ms(r.lossy_first_ms),
            ms(r.actual_all_ms),
            ms(r.lossless_all_ms),
            ms(r.lossy_all_ms),
        ]);
    }
    t.render()
}

/// Mean relative error of a prediction column against the actual column.
pub fn mean_relative_error(rows: &[Fig6Row], lossy: bool, first: bool) -> f64 {
    let mut total = 0.0;
    for r in rows {
        let (actual, predicted) = match (lossy, first) {
            (false, false) => (r.actual_all_ms, r.lossless_all_ms),
            (false, true) => (r.actual_first_ms, r.lossless_first_ms),
            (true, false) => (r.actual_all_ms, r.lossy_all_ms),
            (true, true) => (r.actual_first_ms, r.lossy_first_ms),
        };
        total += (predicted - actual).abs() / actual.max(1.0);
    }
    total / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predictions_track_actuals_for_all_answers() {
        let rows = run(17);
        assert_eq!(rows.len(), 6);
        // The §8 observation: for all-answers, lossless predictions
        // closely match actual times (within a small factor), and lossy
        // does no better than lossless on average.
        let lossless_err = mean_relative_error(&rows, false, false);
        let lossy_err = mean_relative_error(&rows, true, false);
        assert!(
            lossless_err < 0.7,
            "lossless all-answers error {lossless_err}"
        );
        assert!(
            lossy_err >= lossless_err * 0.5,
            "lossy {lossy_err} unexpectedly beats lossless {lossless_err} decisively"
        );
    }

    #[test]
    fn query1_prime_is_slower_and_predicted_so() {
        // query1 runs video_size (1 answer) before the frame sweep;
        // query1' runs the sweep first and then calls video_size once per
        // object — predictably worse.
        let rows = run(18);
        let q1 = rows.iter().find(|r| r.query == "query1").unwrap();
        let q1p = rows.iter().find(|r| r.query == "query1'").unwrap();
        assert!(q1p.actual_all_ms > q1.actual_all_ms);
        assert!(q1p.lossless_all_ms > q1.lossless_all_ms);
    }
}
