//! Parallel scheduler speedup on the four-independent-site scenario. Run
//! with `cargo bench -p hermes-bench --bench parallel_speedup`; CI passes
//! `-- --test-mode` for the single-row smoke variant.
//!
//! Exits non-zero if the overlapped run loses answers or falls short of
//! the 2x simulated speedup bar.

use hermes_bench::parallel;

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test-mode");
    let seed = 1996;

    let rows = if test_mode {
        vec![parallel::run(seed)]
    } else {
        [1, 2, 3, 4]
            .into_iter()
            .map(|k| parallel::run_at(seed, k))
            .collect()
    };

    println!("\nParallel scheduler speedup (4 independent sites, simulated ms)\n");
    println!("{}", parallel::render(&rows));

    let headline = rows.last().expect("at least one row");
    assert!(
        headline.answers_match,
        "overlapped run changed the answer set"
    );
    assert!(
        headline.speedup >= 2.0,
        "speedup {:.2}x below the 2x bar (serial {:.1}ms, parallel {:.1}ms)",
        headline.speedup,
        headline.serial_ms,
        headline.parallel_ms
    );
    println!(
        "headline: {:.2}x at {} slots, answers identical ({} rows)",
        headline.speedup, headline.parallelism, headline.answers
    );
    if test_mode {
        println!("parallel_speedup: OK (test mode)");
    }
}
