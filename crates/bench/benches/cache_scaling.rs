//! Cache-side hot-path scaling: `find_hits` latency as the answer cache
//! grows from 10² to 10⁵ entries. Run with
//! `cargo bench -p hermes-bench --bench cache_scaling`; CI passes
//! `-- --test-mode` for a quick smoke run that asserts the 10⁵/10² latency
//! ratio stays below a generous bound.
//!
//! The full run emits `BENCH_pr4.json` at the repo root — the first point
//! in the performance trajectory (see README "Performance"). Three series:
//!
//! * `find_hits_monotone_ns` — indexed probe through a monotone `<=`
//!   invariant (ordered-index range scan; should be ~flat in cache size),
//! * `find_hits_equality_ns` — indexed probe through a ground equality
//!   invariant (single exact peek; ~flat),
//! * `find_hits_naive_ns` — the retained full-scan reference (linear in
//!   cache size, kept as the comparison column).

use hermes_cim::{AnswerCache, InvariantStore};
use hermes_common::{GroundCall, SimInstant, Value};
use hermes_lang::parse_invariant;
use std::time::{Duration, Instant};

const POPULATIONS: [usize; 4] = [100, 1_000, 10_000, 100_000];
const BATCHES: usize = 7;

/// Generous CI bound on the 10⁵/10² indexed-probe latency ratio. The
/// acceptance bar is 10×; 64× absorbs shared-runner noise while still
/// failing loudly on an accidental return to linear scanning (~1000×).
const TEST_MODE_RATIO_BOUND: f64 = 64.0;

fn select_lt(table: &str, threshold: i64) -> GroundCall {
    GroundCall::new(
        "rel",
        "select_lt",
        vec![Value::str(table), Value::str("qty"), Value::Int(threshold)],
    )
}

fn spatial_range(dist: i64) -> GroundCall {
    GroundCall::new(
        "spatial",
        "range",
        vec![
            Value::str("points"),
            Value::Int(0),
            Value::Int(0),
            Value::Int(dist),
        ],
    )
}

fn invariants() -> InvariantStore {
    let mut s = InvariantStore::new();
    s.add(
        parse_invariant("V1 <= V2 => rel:select_lt(T, A, V2) >= rel:select_lt(T, A, V1).")
            .expect("parse"),
    )
    .expect("monotone invariant");
    s.add(
        parse_invariant(
            "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
        )
        .expect("parse"),
    )
    .expect("equality invariant");
    s
}

/// A cache with `n` `rel:select_lt` entries (each under its own table, so
/// probe candidate counts stay constant while the population grows — the
/// scaling series isolates index overhead, not hit fan-out) plus the one
/// `spatial:range(…, 142)` entry the equality probe targets.
fn populated_cache(store: &InvariantStore, n: usize) -> AnswerCache {
    let mut cache = AnswerCache::new();
    for (domain, function, pos) in store.ordered_index_specs() {
        cache.register_ordered_index(domain, function, pos);
    }
    for j in 0..n {
        cache.insert(
            select_lt(&format!("t{j}"), 10),
            vec![Value::Int(j as i64)],
            true,
            SimInstant::EPOCH,
        );
    }
    cache.insert(
        spatial_range(142),
        vec![Value::Int(7)],
        true,
        SimInstant::EPOCH,
    );
    cache
}

/// Median wall-clock seconds per call of `f`, batched like `micro.rs`.
fn time_median(measure: Duration, mut f: impl FnMut()) -> f64 {
    // Warm up and size the batch so each batch fills measure/BATCHES.
    let warm = Instant::now();
    let warm_window = measure / 4;
    let mut iters: u64 = 0;
    while warm.elapsed() < warm_window {
        f();
        iters += 1;
    }
    let per_batch = (iters * 4 / BATCHES as u64).max(1);
    let mut means = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let start = Instant::now();
        for _ in 0..per_batch {
            f();
        }
        means.push(start.elapsed().as_secs_f64() / per_batch as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    means[BATCHES / 2]
}

struct Row {
    population: usize,
    monotone_s: f64,
    equality_s: f64,
    naive_s: f64,
}

fn measure(population: usize, window: Duration) -> Row {
    let store = invariants();
    let cache = populated_cache(&store, population);
    // Monotone probe: one candidate survives the ordered-index range scan.
    let monotone_probe = select_lt("t0", 500);
    // Equality probe: ground plan, single exact peek.
    let equality_probe = spatial_range(999);
    let monotone_s = time_median(window, || {
        std::hint::black_box(store.find_hits(std::hint::black_box(&monotone_probe), &cache));
    });
    let equality_s = time_median(window, || {
        std::hint::black_box(store.find_hits(std::hint::black_box(&equality_probe), &cache));
    });
    // The naive reference is O(population); give it the same window and let
    // the batch sizing shrink the iteration count.
    let naive_s = time_median(window, || {
        std::hint::black_box(store.find_hits_naive(std::hint::black_box(&monotone_probe), &cache));
    });
    Row {
        population,
        monotone_s,
        equality_s,
        naive_s,
    }
}

fn write_json(rows: &[Row], ratio_monotone: f64, ratio_naive: f64) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr4.json");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"cache_scaling\",\n");
    body.push_str(
        "  \"description\": \"find_hits latency vs AnswerCache population (ns/probe, median)\",\n",
    );
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"population\": {}, \"find_hits_monotone_ns\": {:.1}, \
             \"find_hits_equality_ns\": {:.1}, \"find_hits_naive_ns\": {:.1}}}{}\n",
            r.population,
            r.monotone_s * 1e9,
            r.equality_s * 1e9,
            r.naive_s * 1e9,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"ratio_monotone_1e5_over_1e2\": {ratio_monotone:.2},\n"
    ));
    body.push_str(&format!(
        "  \"ratio_naive_1e5_over_1e2\": {ratio_naive:.2}\n"
    ));
    body.push_str("}\n");
    std::fs::write(path, body)?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test-mode");
    let window = if test_mode {
        Duration::from_millis(80)
    } else {
        Duration::from_millis(600)
    };
    let populations: &[usize] = if test_mode {
        &[100, 100_000]
    } else {
        &POPULATIONS
    };

    println!("cache_scaling: find_hits latency vs cache population\n");
    println!(
        "{:>10}  {:>16}  {:>16}  {:>16}",
        "entries", "monotone (ns)", "equality (ns)", "naive scan (ns)"
    );
    let rows: Vec<Row> = populations.iter().map(|&n| measure(n, window)).collect();
    for r in &rows {
        println!(
            "{:>10}  {:>16.1}  {:>16.1}  {:>16.1}",
            r.population,
            r.monotone_s * 1e9,
            r.equality_s * 1e9,
            r.naive_s * 1e9
        );
    }

    let smallest = rows.first().expect("at least one row");
    let largest = rows.last().expect("at least one row");
    let ratio_monotone = largest.monotone_s / smallest.monotone_s;
    let ratio_naive = largest.naive_s / smallest.naive_s;
    println!("\nindexed 1e5/1e2 ratio: {ratio_monotone:.2}x (naive reference: {ratio_naive:.2}x)");

    if test_mode {
        assert!(
            ratio_monotone < TEST_MODE_RATIO_BOUND,
            "indexed find_hits no longer flat: 1e5/1e2 ratio {ratio_monotone:.2} \
             exceeds {TEST_MODE_RATIO_BOUND}"
        );
        println!("cache_scaling: OK (test mode)");
    } else if let Err(e) = write_json(&rows, ratio_monotone, ratio_naive) {
        eprintln!("failed to write BENCH_pr4.json: {e}");
        std::process::exit(1);
    }
}
