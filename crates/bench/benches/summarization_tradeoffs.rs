//! Regenerates the **§6.2 summarization tradeoff** experiment: storage,
//! lookup work, and estimation error across summarization levels and
//! workload skews. Run with
//! `cargo bench -p hermes-bench --bench summarization_tradeoffs`.

use hermes_bench::{drift, tradeoffs};

fn main() {
    println!("\n§6.2 summarization tradeoffs (per-level aggregates)\n");
    let rows = tradeoffs::run(1996, &[0.0, 1.0, 1.5]);
    println!("{}", tradeoffs::render(&rows));
    println!(
        "(expected shape: storage and lookup work drop monotonically with \
         summarization.\n Error is lowest for full detail on re-seen \
         calls; lossless summaries pay on\n never-seen argument vectors \
         (they relax to the blanket mean); the per-video\n lossy level is \
         robust across both; the blanket level is worst. This is the\n \
         storage/accuracy dial §6.2 describes.)"
    );

    println!("\n§6.2 recency-weighting ablation (drifting network load)\n");
    let rows = drift::run(1996, &[0.0, 1.0, 3.0]);
    println!("{}", drift::render(&rows));
    println!(
        "(expected shape: plain averages and recency decay tie on a flat \
         network;\n under drift the decayed estimator tracks the moving \
         service time)"
    );
}
