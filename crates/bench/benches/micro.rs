//! Micro-benchmarks of the optimizer machinery itself — the *real*
//! (wall-clock) costs, including the §8 claim that "the overhead of
//! checking the cache and the invariants without success … is negligible".
//! Run with `cargo bench -p hermes-bench --bench micro`.
//!
//! Dependency-free harness: each case is warmed up, then timed over enough
//! iterations to fill a fixed measurement window; we report the mean and
//! the spread across batches.

use hermes_cim::{Cim, CimPolicy};
use hermes_common::{GroundCall, SimInstant, Value};
use hermes_core::{enumerate_plans, estimate_plan, CostConfig, RewriteConfig};
use hermes_dcsm::Dcsm;
use hermes_lang::{parse_invariant, parse_program, parse_query};
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(200);
const MEASURE: Duration = Duration::from_millis(800);
const BATCHES: usize = 10;

/// Times `f` (which must consume a fresh input from `setup` per iteration)
/// and prints a `name: mean ± spread` line.
fn bench<I, O>(name: &str, mut setup: impl FnMut() -> I, mut f: impl FnMut(I) -> O) {
    // Warm-up: discover a per-iteration cost and heat caches.
    let warm_start = Instant::now();
    let mut iters: u64 = 0;
    while warm_start.elapsed() < WARMUP {
        let input = setup();
        std::hint::black_box(f(std::hint::black_box(input)));
        iters += 1;
    }
    let per_batch =
        (iters.max(1) * MEASURE.as_micros() as u64 / WARMUP.as_micros() as u64 / BATCHES as u64)
            .max(1);

    let mut means = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        // Build inputs outside the timed region (criterion's iter_batched).
        let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            std::hint::black_box(f(std::hint::black_box(input)));
        }
        means.push(start.elapsed().as_secs_f64() / per_batch as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    let mid = means[BATCHES / 2];
    let spread = means[BATCHES - 1] - means[0];
    let scale = |s: f64| {
        if s >= 1e-3 {
            format!("{:8.3} ms", s * 1e3)
        } else if s >= 1e-6 {
            format!("{:8.3} us", s * 1e6)
        } else {
            format!("{:8.1} ns", s * 1e9)
        }
    };
    println!(
        "  {name:<44} {}  (spread {}, {} iters/batch)",
        scale(mid),
        scale(spread),
        per_batch
    );
}

fn populated_cim(entries: usize, invariants: bool) -> Cim {
    let mut cim = Cim::new();
    if invariants {
        cim.add_invariant(
            parse_invariant(
                "F2 <= F1 & L1 <= L2 =>
                 video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).",
            )
            .unwrap(),
        )
        .unwrap();
        cim.add_invariant(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
    }
    for i in 0..entries {
        cim.store(
            GroundCall::new(
                "video",
                "frames_to_objects",
                vec![
                    Value::str("rope"),
                    Value::Int(i as i64),
                    Value::Int(i as i64 + 40),
                ],
            ),
            (0..10).map(Value::Int).collect::<Vec<_>>(),
            true,
            SimInstant::EPOCH,
        );
    }
    cim
}

fn bench_cim() {
    println!("cim_lookup:");
    for &n in &[16usize, 256] {
        let hit_call = GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("rope"), Value::Int(3), Value::Int(43)],
        );
        let miss_call = GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("vertigo"), Value::Int(1), Value::Int(2)],
        );
        bench(
            &format!("exact_hit_{n}_entries"),
            || populated_cim(n, false),
            |mut cim| cim.lookup(&hit_call, SimInstant::EPOCH),
        );
        bench(
            &format!("miss_with_invariants_{n}_entries"),
            || populated_cim(n, true),
            |mut cim| cim.lookup(&miss_call, SimInstant::EPOCH),
        );
        let wide = GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("rope"), Value::Int(0), Value::Int(900)],
        );
        bench(
            &format!("partial_hit_{n}_entries"),
            || populated_cim(n, true),
            |mut cim| cim.lookup(&wide, SimInstant::EPOCH),
        );
    }
}

fn warmed_dcsm(records: usize) -> Dcsm {
    let mut d = Dcsm::new();
    for i in 0..records {
        d.record(
            &GroundCall::new(
                "video",
                "frames_to_objects",
                vec![
                    Value::str("rope"),
                    Value::Int((i % 40) as i64),
                    Value::Int((i % 40) as i64 + 50),
                ],
            ),
            Some(1.0),
            Some(10.0 + i as f64),
            Some(20.0),
            SimInstant::EPOCH,
        );
    }
    d
}

fn bench_dcsm() {
    println!("dcsm_estimate:");
    let detail = warmed_dcsm(1_000);
    let mut summarized = warmed_dcsm(1_000);
    summarized.build_lossless("video", "frames_to_objects");
    summarized.build_lossy("video", "frames_to_objects", vec![false, false, false]);
    summarized.drop_detail("video", "frames_to_objects");

    let seen = GroundCall::new(
        "video",
        "frames_to_objects",
        vec![Value::str("rope"), Value::Int(3), Value::Int(53)],
    )
    .pattern();
    let unseen = GroundCall::new(
        "video",
        "frames_to_objects",
        vec![Value::str("rope"), Value::Int(999), Value::Int(1_000)],
    )
    .pattern();

    bench("detail_aggregation_seen", || (), |_| detail.cost(&seen));
    bench(
        "detail_aggregation_unseen_relaxes",
        || (),
        |_| detail.cost(&unseen),
    );
    bench("summary_lookup_seen", || (), |_| summarized.cost(&seen));
    bench(
        "summary_lookup_unseen_relaxes",
        || (),
        |_| summarized.cost(&unseen),
    );
}

fn bench_rewriter() {
    println!("rewriter:");
    let program = parse_program(
        "
        p(A, B) :- in(B, d1:p_bf(A)).
        p(A, B) :- in(A, d1:p_fb(B)).
        p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
        q(A, B) :- in(B, d2:q_bf(A)).
        q(A, B) :- in(A, d2:q_fb(B)).
        q(A, B) :- in(Ans, d2:q_ff()) & =(Ans.a, A) & =(Ans.b, B).
        join(X, Y, Z) :- p(X, Y) & q(Z, Y).
        ",
    )
    .unwrap();
    let query = parse_query("?- join('a', Y, Z).").unwrap();
    let policy = CimPolicy::cache_everything();
    bench(
        "enumerate_join_plans",
        || (),
        |_| enumerate_plans(&program, &query, &policy, RewriteConfig::default()).unwrap(),
    );

    let plans = enumerate_plans(&program, &query, &policy, RewriteConfig::default()).unwrap();
    let dcsm = warmed_dcsm(100);
    bench(
        "cost_estimate_per_plan",
        || (),
        |_| {
            for p in &plans {
                std::hint::black_box(estimate_plan(p, &dcsm, &CostConfig::default()));
            }
        },
    );
}

fn bench_executor() {
    use hermes_core::{ExecConfig, Executor, Mediator};
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_net::{profiles, Network};
    use std::sync::Arc;

    println!("executor:");
    // Wall-clock cost of running a fully-cached query: the real overhead a
    // mediator adds once the network is out of the picture.
    let mut m = {
        let d = SyntheticDomain::generate("d1", 3, &[RelationSpec::uniform("p", 20, 4.0)]);
        let mut net = Network::new(3);
        net.place(Arc::new(d), profiles::maryland());
        Mediator::from_source(
            "p(A, B) :- in(B, d1:p_bf(A)).
             p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).",
            net,
        )
        .unwrap()
    };
    let planned = m.plan("?- p('p_3', B).").unwrap();
    let plan = planned.plan().clone();
    // Warm the cache.
    m.query("?- p('p_3', B).").unwrap();
    let network = m.network();
    // Raw CIM handle: this micro-bench drives Executor directly, bypassing
    // the mediator (and thus the caches() facade) on purpose.
    #[allow(deprecated)]
    let cim = m.cim();
    let dcsm = m.dcsm();
    bench(
        "cached_query_wall_time",
        || (),
        |_| {
            Executor::new(
                network,
                cim.as_ref(),
                dcsm.as_ref(),
                hermes_common::SimClock::new(),
                ExecConfig::builder().record_stats(false).build(),
            )
            .run(&plan, None)
            .unwrap()
        },
    );
}

fn bench_parser() {
    println!("parser:");
    let src = "
        routetosupplies(From, Sup1, To, R) :-
            in(Tuple, ingres:select_eq('inventory', 'item', Sup1)) &
            =(Tuple.loc, To) &
            in(R, terraindb:findrte(From, To)).
    ";
    bench("parse_rule", || (), |_| parse_program(src).unwrap());
}

fn main() {
    println!("micro-benchmarks (wall-clock; median of {BATCHES} batches)\n");
    bench_cim();
    bench_dcsm();
    bench_rewriter();
    bench_executor();
    bench_parser();
}
