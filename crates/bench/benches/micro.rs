//! Criterion micro-benchmarks of the optimizer machinery itself — the
//! *real* (wall-clock) costs, including the §8 claim that "the overhead of
//! checking the cache and the invariants without success … is negligible".
//! Run with `cargo bench -p hermes-bench --bench micro`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hermes_cim::{Cim, CimPolicy};
use hermes_common::{GroundCall, SimInstant, Value};
use hermes_core::{enumerate_plans, estimate_plan, CostConfig, RewriteConfig};
use hermes_dcsm::Dcsm;
use hermes_lang::{parse_invariant, parse_program, parse_query};

fn populated_cim(entries: usize, invariants: bool) -> Cim {
    let mut cim = Cim::new();
    if invariants {
        cim.add_invariant(
            parse_invariant(
                "F2 <= F1 & L1 <= L2 =>
                 video:frames_to_objects(V, F2, L2) >= video:frames_to_objects(V, F1, L1).",
            )
            .unwrap(),
        )
        .unwrap();
        cim.add_invariant(
            parse_invariant(
                "Dist > 142 => spatial:range(F, X, Y, Dist) = spatial:range(F, X, Y, 142).",
            )
            .unwrap(),
        )
        .unwrap();
    }
    for i in 0..entries {
        cim.store(
            GroundCall::new(
                "video",
                "frames_to_objects",
                vec![Value::str("rope"), Value::Int(i as i64), Value::Int(i as i64 + 40)],
            ),
            (0..10).map(Value::Int).collect(),
            true,
            SimInstant::EPOCH,
        );
    }
    cim
}

fn bench_cim(c: &mut Criterion) {
    let mut group = c.benchmark_group("cim_lookup");
    for &n in &[16usize, 256] {
        let hit_call = GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("rope"), Value::Int(3), Value::Int(43)],
        );
        let miss_call = GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("vertigo"), Value::Int(1), Value::Int(2)],
        );
        group.bench_function(format!("exact_hit_{n}_entries"), |b| {
            b.iter_batched(
                || populated_cim(n, false),
                |mut cim| cim.lookup(&hit_call, SimInstant::EPOCH),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("miss_with_invariants_{n}_entries"), |b| {
            b.iter_batched(
                || populated_cim(n, true),
                |mut cim| cim.lookup(&miss_call, SimInstant::EPOCH),
                BatchSize::SmallInput,
            );
        });
        group.bench_function(format!("partial_hit_{n}_entries"), |b| {
            let wide = GroundCall::new(
                "video",
                "frames_to_objects",
                vec![Value::str("rope"), Value::Int(0), Value::Int(900)],
            );
            b.iter_batched(
                || populated_cim(n, true),
                |mut cim| cim.lookup(&wide, SimInstant::EPOCH),
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn warmed_dcsm(records: usize) -> Dcsm {
    let mut d = Dcsm::new();
    for i in 0..records {
        d.record(
            &GroundCall::new(
                "video",
                "frames_to_objects",
                vec![
                    Value::str("rope"),
                    Value::Int((i % 40) as i64),
                    Value::Int((i % 40) as i64 + 50),
                ],
            ),
            Some(1.0),
            Some(10.0 + i as f64),
            Some(20.0),
            SimInstant::EPOCH,
        );
    }
    d
}

fn bench_dcsm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dcsm_estimate");
    let detail = warmed_dcsm(1_000);
    let mut summarized = warmed_dcsm(1_000);
    summarized.build_lossless("video", "frames_to_objects");
    summarized.build_lossy("video", "frames_to_objects", vec![false, false, false]);
    summarized.drop_detail("video", "frames_to_objects");

    let seen = GroundCall::new(
        "video",
        "frames_to_objects",
        vec![Value::str("rope"), Value::Int(3), Value::Int(53)],
    )
    .pattern();
    let unseen = GroundCall::new(
        "video",
        "frames_to_objects",
        vec![Value::str("rope"), Value::Int(999), Value::Int(1_000)],
    )
    .pattern();

    group.bench_function("detail_aggregation_seen", |b| {
        b.iter(|| detail.cost(std::hint::black_box(&seen)))
    });
    group.bench_function("detail_aggregation_unseen_relaxes", |b| {
        b.iter(|| detail.cost(std::hint::black_box(&unseen)))
    });
    group.bench_function("summary_lookup_seen", |b| {
        b.iter(|| summarized.cost(std::hint::black_box(&seen)))
    });
    group.bench_function("summary_lookup_unseen_relaxes", |b| {
        b.iter(|| summarized.cost(std::hint::black_box(&unseen)))
    });
    group.finish();
}

fn bench_rewriter(c: &mut Criterion) {
    let program = parse_program(
        "
        p(A, B) :- in(B, d1:p_bf(A)).
        p(A, B) :- in(A, d1:p_fb(B)).
        p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).
        q(A, B) :- in(B, d2:q_bf(A)).
        q(A, B) :- in(A, d2:q_fb(B)).
        q(A, B) :- in(Ans, d2:q_ff()) & =(Ans.a, A) & =(Ans.b, B).
        join(X, Y, Z) :- p(X, Y) & q(Z, Y).
        ",
    )
    .unwrap();
    let query = parse_query("?- join('a', Y, Z).").unwrap();
    let policy = CimPolicy::cache_everything();
    c.bench_function("rewriter_enumerate_join_plans", |b| {
        b.iter(|| {
            enumerate_plans(
                std::hint::black_box(&program),
                std::hint::black_box(&query),
                &policy,
                RewriteConfig::default(),
            )
            .unwrap()
        })
    });

    let plans = enumerate_plans(&program, &query, &policy, RewriteConfig::default()).unwrap();
    let dcsm = warmed_dcsm(100);
    c.bench_function("cost_estimate_per_plan", |b| {
        b.iter(|| {
            for p in &plans {
                std::hint::black_box(estimate_plan(p, &dcsm, &CostConfig::default()));
            }
        })
    });
}

fn bench_executor(c: &mut Criterion) {
    use hermes_core::{ExecConfig, Executor, Mediator};
    use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
    use hermes_net::{profiles, Network};
    use std::sync::Arc;

    // Wall-clock cost of running a fully-cached query: the real overhead a
    // mediator adds once the network is out of the picture.
    let mut m = {
        let d = SyntheticDomain::generate("d1", 3, &[RelationSpec::uniform("p", 20, 4.0)]);
        let mut net = Network::new(3);
        net.place(Arc::new(d), profiles::maryland());
        Mediator::from_source(
            "p(A, B) :- in(B, d1:p_bf(A)).
             p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.a, A) & =(Ans.b, B).",
            net,
        )
        .unwrap()
    };
    let planned = m.plan("?- p('p_3', B).").unwrap();
    let plan = planned.plan().clone();
    // Warm the cache.
    m.query("?- p('p_3', B).").unwrap();
    let network = m.network();
    let cim = m.cim();
    let dcsm = m.dcsm();
    c.bench_function("executor_cached_query_wall_time", |b| {
        b.iter(|| {
            Executor::new(
                network,
                &cim,
                &dcsm,
                hermes_common::SimClock::new(),
                ExecConfig {
                    record_stats: false,
                    ..ExecConfig::default()
                },
            )
            .run(std::hint::black_box(&plan), None)
            .unwrap()
        })
    });
}

fn bench_parser(c: &mut Criterion) {
    let src = "
        routetosupplies(From, Sup1, To, R) :-
            in(Tuple, ingres:select_eq('inventory', 'item', Sup1)) &
            =(Tuple.loc, To) &
            in(R, terraindb:findrte(From, To)).
    ";
    c.bench_function("parse_rule", |b| {
        b.iter(|| parse_program(std::hint::black_box(src)).unwrap())
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cim, bench_dcsm, bench_rewriter, bench_executor, bench_parser
);
criterion_main!(benches);
