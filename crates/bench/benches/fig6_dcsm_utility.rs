//! Regenerates **Figure 6**: The Utility of DCSM — actual vs predicted
//! running times (lossless and lossy statistics) for the appendix queries.
//! Run with `cargo bench -p hermes-bench --bench fig6_dcsm_utility`.

use hermes_bench::fig6;

fn main() {
    let rows = fig6::run(1996);
    println!("\nFigure 6: The Utility of DCSM (simulated milliseconds)\n");
    println!("{}", fig6::render(&rows));
    println!(
        "mean relative error, all answers:  lossless {:.2}, lossy {:.2}",
        fig6::mean_relative_error(&rows, false, false),
        fig6::mean_relative_error(&rows, true, false),
    );
    println!(
        "mean relative error, first answer: lossless {:.2}, lossy {:.2}",
        fig6::mean_relative_error(&rows, false, true),
        fig6::mean_relative_error(&rows, true, true),
    );
    println!(
        "\n(the paper's reading: all-answers predictions closely match the \
         actual times;\n lossy tables do worse mainly through cardinality \
         error; first-answer times\n can be under-predicted when \
         backtracking dominates)"
    );
}
