//! Regenerates **Figures 2–4**: the example cost-vector tables (T16–T19),
//! their lossless summaries (T20–T21), and the lossy summaries of Example
//! 6.2. Run with `cargo bench -p hermes-bench --bench fig_2_3_4_summaries`.

fn main() {
    println!("\nFigures 2-4: statistics tables and their summarizations\n");
    println!("{}", hermes_bench::fig234::report());
}
