//! Regenerates **Figure 5**: Executing Remote Calls with Caching and/or
//! Invariants. Run with `cargo bench -p hermes-bench --bench fig5_remote_calls`.

use hermes_bench::fig5;

fn main() {
    let rows = fig5::run(1996);
    println!("\nFigure 5: Executing Remote Calls with Caching and/or Invariants");
    println!("(simulated milliseconds; three AVIS queries × four configurations × two sites)\n");
    println!("{}", fig5::render(&rows));

    // Headline ratios, for quick comparison with the paper.
    let find = |q: &str, c: fig5::Config, site: hermes_bench::scenarios::VideoSite| {
        rows.iter()
            .find(|r| r.query.contains(q) && r.config == c && r.site == site)
            .expect("cell present")
    };
    use fig5::Config::*;
    use hermes_bench::scenarios::VideoSite::*;
    let nc_usa = find("actors", NoCache, Usa);
    let nc_it = find("actors", NoCache, Italy);
    let c_it = find("actors", CacheOnly, Italy);
    let p_it = find("actors", CachePartial, Italy);
    println!("headline (actors query):");
    println!(
        "  Italy/USA no-cache slowdown:        {:>6.1}x (paper: ~19x)",
        nc_it.t_all_ms / nc_usa.t_all_ms
    );
    println!(
        "  Italy cache speedup (all answers):  {:>6.1}x (paper: ~30x)",
        nc_it.t_all_ms / c_it.t_all_ms
    );
    println!(
        "  Italy partial-inv first-answer win: {:>6.1}x",
        nc_it.t_first_ms / p_it.t_first_ms
    );
}
