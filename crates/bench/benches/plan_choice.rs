//! Regenerates the **§8 plan-choice claims**: predicted-vs-actual plan
//! orderings over randomized federations, bucketed by predicted margin.
//! Run with `cargo bench -p hermes-bench --bench plan_choice`.

use hermes_bench::plan_choice;

fn main() {
    let trials = std::env::var("HERMES_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    println!("\n§8 plan-choice reliability ({trials} random federations)\n");
    let obs = plan_choice::run(2024, trials);
    println!("{}", plan_choice::render(&obs));
    println!(
        "(paper: all-answers predictions are reliable; first-answer \
         predictions are\n trustworthy only above a ~50% predicted margin \
         — the 1.0-1.5x bucket)"
    );
}
