//! Repeated workload: the PR 8 subplan materialization cache under a
//! multi-client replay of the same query set. Run with `cargo bench -p
//! hermes-bench --bench repeated_workload`; CI passes `-- --test-mode`
//! for a quick smoke run that asserts sharing saves source calls and
//! virtual time and that HA071-volatile subplans never hit the cache.
//!
//! The full run emits `BENCH_pr8.json` at the repo root.
//!
//! Three configurations replay K distinct queries for R rounds from four
//! client threads, under a deliberately tiny answer-cache budget so the
//! CIM's ground-call entries thrash between rounds:
//!
//! * **sharing_off** — the paper-exact pipeline: every round re-joins, and
//!   once the answer cache starts evicting, re-pays source calls too;
//! * **sharing_on** — `share_subplans(true)`: after round 0 the whole-plan
//!   snapshots serve repeats at zero virtual-time cost, independent of
//!   the thrashing answer cache;
//! * **volatile** — sharing on, but the workload only reads a source
//!   routed `Direct` (around the CIM), so every subplan is HA071-volatile:
//!   the matcache must refuse it a ticket and record zero hits.

use hermes_cim::{CimPolicy, RoutingDecision};
use hermes_core::{ConcurrentMediator, MatCacheStats, Mediator};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_net::{profiles, Network};
use std::sync::{Arc, Barrier};

/// Client threads replaying the workload.
const THREADS: usize = 4;
/// Answer-cache byte budget: below a single entry's wire size, so each
/// CIM shard retains only its most recent ground call and the replayed
/// mix keeps evicting itself — the sharing-off configuration re-pays
/// source calls every round.
const ANSWER_BUDGET: usize = 16;

fn build_server(seed: u64, k: usize, share: bool) -> ConcurrentMediator {
    let specs: Vec<RelationSpec> = (0..k)
        .map(|i| RelationSpec::uniform(format!("r{i}"), 16, 4.0))
        .collect();
    let db = SyntheticDomain::generate("db", seed, &specs);
    let live = SyntheticDomain::generate("live", seed + 1, &[RelationSpec::uniform("v", 16, 4.0)]);
    let mut net = Network::new(seed);
    net.place(Arc::new(db), profiles::maryland());
    net.place(Arc::new(live), profiles::cornell());

    let mut src = String::new();
    for i in 0..k {
        src.push_str(&format!("q{i}(A, B) :- in(B, db:r{i}_bf(A)).\n"));
    }
    src.push_str("vq(A, B) :- in(B, live:v_bf(A)).\n");
    let mut m = Mediator::from_source(&src, net).expect("bench program parses");

    // `live` bypasses the CIM, which makes every subplan reading it
    // HA071-volatile; `db` is cached and safe.
    let mut policy = CimPolicy::cache_everything();
    policy.set_domain("live", RoutingDecision::Direct);
    let mut p = m
        .caches()
        .policy()
        .routing(policy)
        .answer_budget(Some(ANSWER_BUDGET));
    if share {
        p = p.share_subplans(true);
    }
    p.apply().expect("serial policy applies");
    m.to_concurrent(THREADS)
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct Round {
    round: usize,
    source_calls: u64,
    p50_ms: f64,
    p99_ms: f64,
}

struct Run {
    config: &'static str,
    rounds: Vec<Round>,
    source_calls_total: u64,
    mat: MatCacheStats,
}

/// Replays `queries` for `rounds` rounds from [`THREADS`] clients, each
/// walking the list from a different offset. Per round: the source-call
/// delta and the p50/p99 of per-query *virtual* time (the simulated
/// network clock — the quantity Figure 5 measures).
fn run_workload(
    config: &'static str,
    seed: u64,
    queries: &[String],
    rounds: usize,
    share: bool,
) -> Run {
    let server = build_server(seed, queries.len(), share);
    let barrier = Barrier::new(THREADS);
    let mut out = Vec::new();
    let mut calls_before = server.network().source_calls();
    for round in 0..rounds {
        let mut virt_ms: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let (server, barrier) = (&server, &barrier);
                    s.spawn(move || {
                        barrier.wait();
                        (0..queries.len())
                            .map(|i| {
                                let q = &queries[(t + i) % queries.len()];
                                let r = server.query(q.as_str()).expect("query runs");
                                r.t_all.as_millis_f64()
                            })
                            .collect::<Vec<f64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("no panics"))
                .collect()
        });
        virt_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let calls_now = server.network().source_calls();
        out.push(Round {
            round,
            source_calls: calls_now - calls_before,
            p50_ms: percentile(&virt_ms, 50.0),
            p99_ms: percentile(&virt_ms, 99.0),
        });
        calls_before = calls_now;
    }
    let mat = server.caches().stats().subplans;
    Run {
        config,
        source_calls_total: calls_before,
        rounds: out,
        mat,
    }
}

fn write_json(runs: &[Run]) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr8.json");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"repeated_workload\",\n");
    body.push_str(
        "  \"description\": \"subplan materialization cache vs the paper-exact pipeline \
         replaying K distinct queries for R rounds from 4 client threads under a thrashing \
         answer-cache budget; latencies are simulated-network virtual time; the volatile \
         config reads only a CIM-bypassing source and must record zero cache hits\",\n",
    );
    body.push_str(&format!("  \"answer_budget_bytes\": {ANSWER_BUDGET},\n"));
    body.push_str("  \"rows\": [\n");
    let total_rows: usize = runs.iter().map(|r| r.rounds.len()).sum();
    let mut n = 0;
    for run in runs {
        for r in &run.rounds {
            n += 1;
            body.push_str(&format!(
                "    {{\"config\": \"{}\", \"round\": {}, \"source_calls\": {}, \
                 \"p50_virtual_ms\": {:.3}, \"p99_virtual_ms\": {:.3}}}{}\n",
                run.config,
                r.round,
                r.source_calls,
                r.p50_ms,
                r.p99_ms,
                if n < total_rows { "," } else { "" },
            ));
        }
    }
    body.push_str("  ],\n");
    body.push_str("  \"summary\": [\n");
    for (i, run) in runs.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"config\": \"{}\", \"source_calls_total\": {}, \"subplan_hits\": {}, \
             \"subplans_coalesced\": {}, \"subplans_materialized\": {}, \
             \"volatile_skips\": {}}}{}\n",
            run.config,
            run.source_calls_total,
            run.mat.hits,
            run.mat.coalesced,
            run.mat.materialized,
            run.mat.volatile_skips,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n");
    body.push_str("}\n");
    std::fs::write(path, body)?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test-mode");
    let (k, rounds) = if test_mode { (6, 3) } else { (12, 6) };

    // K distinct safe queries over the cached `db` source, fixed keys so
    // every round replays the identical plan set.
    let safe: Vec<String> = (0..k).map(|i| format!("?- q{i}('r{i}_3', B).")).collect();
    // The volatile workload: K repeats of queries over the `Direct` source.
    let volatile: Vec<String> = (0..k)
        .map(|i| format!("?- vq('v_{}', B).", i % 4))
        .collect();

    println!("repeated_workload: subplan materialization cache under replay\n");
    println!(
        "{:>12}  {:>5}  {:>12}  {:>16}  {:>16}",
        "config", "round", "source_calls", "p50 virtual (ms)", "p99 virtual (ms)"
    );
    let runs = vec![
        run_workload("sharing_off", 42, &safe, rounds, false),
        run_workload("sharing_on", 42, &safe, rounds, true),
        run_workload("volatile", 42, &volatile, rounds, true),
    ];
    for run in &runs {
        for r in &run.rounds {
            println!(
                "{:>12}  {:>5}  {:>12}  {:>16.3}  {:>16.3}",
                run.config, r.round, r.source_calls, r.p50_ms, r.p99_ms
            );
        }
        println!(
            "{:>12}  total source calls {}, mat: {} hits, {} coalesced, {} materialized, {} volatile skips\n",
            run.config,
            run.source_calls_total,
            run.mat.hits,
            run.mat.coalesced,
            run.mat.materialized,
            run.mat.volatile_skips
        );
    }

    let by = |name: &str| runs.iter().find(|r| r.config == name).expect("config row");
    let (off, on, vol) = (by("sharing_off"), by("sharing_on"), by("volatile"));

    // Sharing must save source calls outright under the thrashing budget…
    assert!(
        on.source_calls_total < off.source_calls_total,
        "sharing saved no source calls: {} vs {}",
        on.source_calls_total,
        off.source_calls_total
    );
    // …and serve warm rounds faster than the re-joining pipeline.
    let warm = |run: &Run| {
        let mut ms: Vec<f64> = run.rounds[1..].iter().map(|r| r.p50_ms).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(&ms, 50.0)
    };
    assert!(
        warm(on) <= warm(off),
        "sharing slowed warm rounds: p50 {} vs {}",
        warm(on),
        warm(off)
    );
    assert!(on.mat.hits > 0, "sharing_on never hit the subplan cache");
    // HA071: the volatile workload must never be served from a snapshot.
    assert_eq!(vol.mat.hits, 0, "volatile subplan served from the cache");
    assert_eq!(vol.mat.materialized, 0, "volatile subplan was stored");
    assert!(
        vol.mat.volatile_skips > 0,
        "volatile plans were never refused a ticket"
    );

    if test_mode {
        println!("repeated_workload: OK (test mode)");
    } else if let Err(e) = write_json(&runs) {
        eprintln!("failed to write BENCH_pr8.json: {e}");
        std::process::exit(1);
    }
}
