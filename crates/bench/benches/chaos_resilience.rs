//! Completeness and latency under injected faults, with and without the
//! resilience layer. Run with
//! `cargo bench -p hermes-bench --bench chaos_resilience`.

use hermes_bench::chaos;

fn main() {
    let drop_rates = [0.0, 0.1, 0.3, 0.5];
    let rows = chaos::run(1996, &drop_rates, 24);
    println!("\nResilience under a seeded storm (flapping replica + transient drops)");
    println!("(24 point queries per cell; simulated milliseconds)\n");
    println!("{}", chaos::render(&rows));

    // Headline: what the resilient stack buys at the heaviest drop rate.
    let worst = *drop_rates.last().unwrap();
    let cell = |cfg: &str| {
        rows.iter()
            .find(|r| r.drop_rate == worst && r.config == cfg)
            .expect("cell present")
    };
    let retry = cell("retries only");
    let resilient = cell("resilient");
    println!("headline ({:.0}% drop rate):", worst * 100.0);
    println!(
        "  answered:      {:>2}/24 retries-only vs {:>2}/24 resilient",
        retry.answered, resilient.answered
    );
    println!(
        "  mean ms/query: {:>8.1} retries-only vs {:>8.1} resilient",
        retry.mean_ms, resilient.mean_ms
    );
}
