//! `wire_connscale` — connection scaling: the epoll reactor versus the
//! worker pool, on the same warm loopback workload (PR 10).
//!
//! Three experiments, written to `BENCH_pr10.json`:
//!
//! * **conn_scale** — 100 and 1000 churning closed-loop clients
//!   (connect, run a short slice, hang up) against an 8-worker server
//!   in each mode. The pool survives *churn* by cycling connections
//!   through its accept queue (refusing what overflows it); the
//!   reactor holds every connection concurrently with zero refusals
//!   and bounded p99. Both keep the gate invariant exact.
//! * **idle_scale** — the experiment the reactor exists for:
//!   *held-open* connections. The reactor holds 1000 open idle
//!   connections (125× the worker count) while a foreground client is
//!   served at microsecond latency through the noise. The pool parks
//!   one worker per open connection, so 4× workers of idle clients
//!   starve a deadline-bounded foreground probe outright — measured
//!   as `starved`, not suffered as a hang.
//! * **pipeline_sweep** — one reactor server, fixed connections,
//!   client-side pipeline depth swept 1 → beyond the server's cap;
//!   depths past `pipeline_depth` shed `pipeline-full` in FIFO order
//!   instead of queueing unboundedly.
//!
//! The gate invariant `admitted + shed == queries` is asserted after
//! every pass in both modes. `--test-mode` shrinks everything and turns
//! the comparisons into assertions for CI.

use hermes_common::{HermesError, QueryFrame, Rng64};
use hermes_core::{ConcurrentMediator, Mediator, NetServer, ServeConfig, ServeMode, WireClient};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_domains::SlowDomain;
use hermes_net::{profiles, Network};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Real wall-clock delay per executed (cold) source call.
const SOURCE_DELAY: Duration = Duration::from_millis(3);
/// Keys per relation — matches the `hermes-serve` synthetic world.
const KEYS: usize = 64;
/// Query workers per server in every experiment.
const WORKERS: usize = 8;

// ---------------------------------------------------------------- world

/// The serving world: two SlowDomain-wrapped synthetic sites, the same
/// shape `hermes-serve` builds, so bench numbers transfer.
fn build_server(seed: u64) -> ConcurrentMediator {
    build_world(seed, SOURCE_DELAY)
}

fn build_world(seed: u64, delay: Duration) -> ConcurrentMediator {
    let d0 = SyntheticDomain::generate(
        "d0",
        seed,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
        ],
    );
    let d1 = SyntheticDomain::generate(
        "d1",
        seed + 1,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
        ],
    );
    let mut net = Network::new(seed);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d0), delay)),
        profiles::maryland(),
    );
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d1), delay)),
        profiles::cornell(),
    );
    let m = Mediator::from_source(
        "
        q0(A, B) :- in(B, d0:r0_bf(A)).
        q1(A, B) :- in(B, d0:r1_bf(A)).
        q2(A, B) :- in(B, d1:r0_bf(A)).
        q3(A, B) :- in(B, d1:r1_bf(A)).
        ",
        net,
    )
    .expect("bench program parses");
    m.to_concurrent(8)
}

/// The Zipf-skewed mix over the serving world's query forms — identical
/// in shape to `hermes-load` and the other wire bench.
fn zipf_mix(seed: u64, count: usize) -> Vec<String> {
    let mut rng = Rng64::new(seed ^ 0x7F4A_7C15);
    (0..count)
        .map(|_| {
            let f = rng.range_usize(0, 4);
            let key = rng.zipf(KEYS, 1.1) % KEYS;
            let rel = if f.is_multiple_of(2) { "r0" } else { "r1" };
            format!("?- q{f}('{rel}_{key}', B).")
        })
        .collect()
}

/// Pre-warms every key of every form through one connection, so the
/// measured passes run against a hot CIM (source calls near zero) and
/// the comparison isolates *connection handling*, not source latency.
fn warm(addr: &str) {
    let mut client =
        WireClient::connect_retry(addr, Duration::from_secs(5)).expect("warm client connects");
    for f in 0..4usize {
        let rel = if f.is_multiple_of(2) { "r0" } else { "r1" };
        for k in 0..KEYS {
            client
                .query(QueryFrame::new(format!("?- q{f}('{rel}_{k}', B).")))
                .expect("warm query runs");
        }
    }
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

// ------------------------------------------------------------ conn scale

#[derive(Default)]
struct PassTally {
    issued: u64,
    answered: u64,
    sheds: BTreeMap<String, u64>,
    transport_errors: u64,
    served_conns: u64,
    latencies_us: Vec<u64>,
}

struct PassRow {
    mode: &'static str,
    conns: usize,
    issued: u64,
    answered: u64,
    shed_total: u64,
    sheds: BTreeMap<String, u64>,
    transport_errors: u64,
    served_conns: u64,
    refused: u64,
    evicted: u64,
    wall_s: f64,
    qps: f64,
    p50_us: u64,
    p99_us: u64,
}

/// One measured pass: `conns` closed-loop clients, `per_conn` warm
/// queries each, against a fresh warmed server in `mode`.
fn run_pass(mode: ServeMode, conns: usize, per_conn: usize) -> PassRow {
    let mediator = Arc::new(build_server(42));
    let config = ServeConfig::builder().mode(mode).workers(WORKERS).build();
    let net = NetServer::bind(Arc::clone(&mediator), "127.0.0.1:0", config)
        .expect("conn-scale server binds");
    let addr = net.addr().to_string();
    warm(&addr);

    let t0 = Instant::now();
    let tallies: Vec<PassTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                let mix = zipf_mix(1000 + c as u64, per_conn);
                s.spawn(move || {
                    let mut tally = PassTally::default();
                    let mut client = match WireClient::connect_retry(&addr, Duration::from_secs(30))
                    {
                        Ok(cl) => cl,
                        Err(_) => {
                            tally.transport_errors += 1;
                            return tally;
                        }
                    };
                    for q in &mix {
                        tally.issued += 1;
                        let start = Instant::now();
                        match client.query(QueryFrame::new(q.clone())) {
                            Ok(_) => {
                                tally.answered += 1;
                                tally.latencies_us.push(start.elapsed().as_micros() as u64);
                            }
                            Err(HermesError::Shed { reason }) => {
                                *tally.sheds.entry(reason.to_string()).or_default() += 1;
                                // Socket-level sheds close the connection.
                                match WireClient::connect_retry(&addr, Duration::from_secs(30)) {
                                    Ok(cl) => client = cl,
                                    Err(_) => {
                                        tally.transport_errors += 1;
                                        break;
                                    }
                                }
                            }
                            Err(_) => {
                                tally.transport_errors += 1;
                                match WireClient::connect_retry(&addr, Duration::from_secs(30)) {
                                    Ok(cl) => client = cl,
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    tally.served_conns = u64::from(tally.answered > 0);
                    tally
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();

    let stats = mediator.stats();
    assert_eq!(
        stats.admitted + stats.shed,
        stats.queries,
        "gate invariant broken in {mode:?} at {conns} conns"
    );
    let net_stats = net.shutdown();

    let mut total = PassTally::default();
    for t in tallies {
        total.issued += t.issued;
        total.answered += t.answered;
        for (class, n) in t.sheds {
            *total.sheds.entry(class).or_default() += n;
        }
        total.transport_errors += t.transport_errors;
        total.served_conns += t.served_conns;
        total.latencies_us.extend(t.latencies_us);
    }
    total.latencies_us.sort_unstable();
    let shed_total: u64 = total.sheds.values().sum();
    PassRow {
        mode: if mode == ServeMode::Pool {
            "pool"
        } else {
            "reactor"
        },
        conns,
        issued: total.issued,
        answered: total.answered,
        shed_total,
        sheds: total.sheds,
        transport_errors: total.transport_errors,
        served_conns: total.served_conns,
        refused: net_stats.refused,
        evicted: net_stats.evicted,
        wall_s,
        qps: total.answered as f64 / wall_s,
        p50_us: percentile(&total.latencies_us, 0.50),
        p99_us: percentile(&total.latencies_us, 0.99),
    }
}

// ------------------------------------------------------------ idle scale

struct IdleScale {
    mode: &'static str,
    idle_conns: usize,
    workers: usize,
    accepted: u64,
    refused: u64,
    foreground_queries: u64,
    foreground_answered: u64,
    foreground_p50_us: u64,
    foreground_p99_us: u64,
    starved: bool,
}

/// Holds `idle_conns` open, idle connections, then probes with a
/// foreground client. This is the experiment the reactor exists for:
/// open connections must cost state, not threads. On the pool every
/// held-open connection parks a worker, so a handful of idle clients
/// starve the foreground — the probe is deadline-bounded (`patience`)
/// so starvation is *measured*, not hung on.
fn run_idle_scale(
    mode: ServeMode,
    idle_conns: usize,
    foreground: usize,
    patience: Duration,
) -> IdleScale {
    let mediator = Arc::new(build_server(43));
    let config = ServeConfig::builder().mode(mode).workers(WORKERS).build();
    let net = NetServer::bind(Arc::clone(&mediator), "127.0.0.1:0", config)
        .expect("idle-scale server binds");
    let addr = net.addr().to_string();
    warm(&addr);
    let reactor = mode != ServeMode::Pool;

    let mut idle: Vec<WireClient> = Vec::with_capacity(idle_conns);
    for _ in 0..idle_conns {
        let mut c =
            WireClient::connect_retry(&addr, Duration::from_secs(30)).expect("idle conn connects");
        if reactor {
            // On the pool a queued connection would block here forever;
            // open is all a parked client needs to hold its worker.
            c.ping().expect("idle conn is live");
        }
        idle.push(c);
    }

    let mut fg =
        WireClient::connect_retry(&addr, Duration::from_secs(30)).expect("foreground connects");
    let mix = zipf_mix(7, foreground);
    let mut latencies: Vec<u64> = Vec::with_capacity(foreground);
    let mut answered = 0u64;
    'probe: for q in &mix {
        let start = Instant::now();
        fg.send_query(QueryFrame::new(q.clone()))
            .expect("foreground send");
        loop {
            match fg.poll_result().expect("foreground poll") {
                Some(result) => {
                    result.expect("foreground query runs");
                    answered += 1;
                    latencies.push(start.elapsed().as_micros() as u64);
                    break;
                }
                None if start.elapsed() > patience => break 'probe,
                None => std::thread::sleep(Duration::from_micros(200)),
            }
        }
    }
    latencies.sort_unstable();

    if reactor {
        // Every idle connection is still alive after the foreground run.
        for c in idle.iter_mut() {
            c.ping().expect("idle conn survived the foreground run");
        }
    }
    drop(idle);
    drop(fg);

    let stats = mediator.stats();
    assert_eq!(stats.admitted + stats.shed, stats.queries);
    let net_stats = net.shutdown();
    assert!(
        idle_conns >= 4 * WORKERS,
        "experiment must exceed the 4x-workers acceptance bar"
    );
    IdleScale {
        mode: if reactor { "reactor" } else { "pool" },
        idle_conns,
        workers: WORKERS,
        accepted: net_stats.accepted,
        refused: net_stats.refused,
        foreground_queries: foreground as u64,
        foreground_answered: answered,
        foreground_p50_us: percentile(&latencies, 0.50),
        foreground_p99_us: percentile(&latencies, 0.99),
        starved: answered < foreground as u64,
    }
}

// --------------------------------------------------------- pipeline sweep

struct DepthRow {
    depth: usize,
    issued: u64,
    answered: u64,
    pipeline_sheds: u64,
    wall_s: f64,
    qps: f64,
    p99_us: u64,
}

/// One client, warm keys, `total` queries sent with a `depth`-deep
/// window. Depths beyond the server's `pipeline_depth` cap shed
/// `pipeline-full` — in FIFO order, not as hangups.
fn run_depth(addr: &str, depth: usize, total: usize) -> DepthRow {
    let mut client =
        WireClient::connect_retry(addr, Duration::from_secs(30)).expect("sweep client connects");
    let mix = zipf_mix(17, total);
    let mut latencies: Vec<u64> = Vec::with_capacity(total);
    let mut answered = 0u64;
    let mut pipeline_sheds = 0u64;
    let mut sent = 0usize;
    let mut starts: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();

    let t0 = Instant::now();
    while answered + pipeline_sheds < total as u64 {
        while sent < total && starts.len() < depth {
            client
                .send_query(QueryFrame::new(mix[sent].clone()))
                .expect("sweep send");
            starts.push_back(Instant::now());
            sent += 1;
        }
        match client.recv_result() {
            Ok(_) => {
                answered += 1;
                let start = starts.pop_front().expect("response matches a send");
                latencies.push(start.elapsed().as_micros() as u64);
            }
            Err(HermesError::Shed { reason }) => {
                assert_eq!(reason, "pipeline-full", "only depth sheds expected");
                starts.pop_front();
                pipeline_sheds += 1;
            }
            Err(e) => panic!("sweep query failed: {e}"),
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    DepthRow {
        depth,
        issued: total as u64,
        answered,
        pipeline_sheds,
        wall_s,
        qps: answered as f64 / wall_s,
        p99_us: percentile(&latencies, 0.99),
    }
}

fn run_pipeline_sweep(depths: &[usize], cap: usize, total: usize) -> Vec<DepthRow> {
    let mediator = Arc::new(build_server(44));
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .workers(WORKERS)
        .pipeline_depth(cap)
        .build();
    let net =
        NetServer::bind(Arc::clone(&mediator), "127.0.0.1:0", config).expect("sweep server binds");
    let addr = net.addr().to_string();
    warm(&addr);

    let rows: Vec<DepthRow> = depths.iter().map(|&d| run_depth(&addr, d, total)).collect();
    let stats = mediator.stats();
    assert_eq!(stats.admitted + stats.shed, stats.queries);
    net.shutdown();
    rows
}

struct Overflow {
    cap: usize,
    burst: usize,
    answered: u64,
    pipeline_sheds: u64,
}

/// Deterministic beyond-cap shedding: one worker, slow cold sources, a
/// burst wider than the per-connection pipeline cap. Every frame past
/// the cap arrives while the worker is still busy, so the reactor must
/// shed it with a typed `pipeline-full` error in its FIFO slot — the
/// connection survives and the gate invariant is untouched.
fn run_pipeline_overflow(cap: usize, burst: usize) -> Overflow {
    let mediator = Arc::new(build_world(45, Duration::from_millis(100)));
    let config = ServeConfig::builder()
        .mode(ServeMode::Reactor)
        .workers(1)
        .pipeline_depth(cap)
        .build();
    let net = NetServer::bind(Arc::clone(&mediator), "127.0.0.1:0", config)
        .expect("overflow server binds");
    let addr = net.addr().to_string();

    let mut client =
        WireClient::connect_retry(&addr, Duration::from_secs(30)).expect("overflow connects");
    // Distinct cold keys: every answered query really holds the worker
    // for the full source delay.
    for i in 0..burst {
        client
            .send_query(QueryFrame::new(format!("?- q0('r0_{}', B).", i % KEYS)))
            .expect("overflow send");
    }
    let mut answered = 0u64;
    let mut pipeline_sheds = 0u64;
    for _ in 0..burst {
        match client.recv_result() {
            Ok(_) => answered += 1,
            Err(HermesError::Shed { reason }) => {
                assert_eq!(reason, "pipeline-full", "only depth sheds expected");
                pipeline_sheds += 1;
            }
            Err(e) => panic!("overflow query failed: {e}"),
        }
    }
    // The connection is still usable after shedding.
    client.ping().expect("connection survives the overflow");

    let stats = mediator.stats();
    assert_eq!(stats.admitted + stats.shed, stats.queries);
    net.shutdown();
    assert!(pipeline_sheds > 0, "burst {burst} over cap {cap} must shed");
    assert_eq!(answered + pipeline_sheds, burst as u64);
    Overflow {
        cap,
        burst,
        answered,
        pipeline_sheds,
    }
}

// ----------------------------------------------------------------- main

fn write_json(
    passes: &[PassRow],
    idle_rows: &[IdleScale],
    sweep: &[DepthRow],
    overflow: &Overflow,
) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr10.json");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"wire_connscale\",\n");
    body.push_str(&format!("  \"workers\": {WORKERS},\n"));
    body.push_str("  \"conn_scale\": [\n");
    for (i, p) in passes.iter().enumerate() {
        let sheds: Vec<String> = p
            .sheds
            .iter()
            .map(|(class, n)| format!("\"{class}\": {n}"))
            .collect();
        body.push_str(&format!(
            "    {{\"mode\": \"{}\", \"conns\": {}, \"issued\": {}, \"answered\": {}, \
             \"shed\": {}, \"shed_classes\": {{{}}}, \"transport_errors\": {}, \
             \"served_conns\": {}, \"refused\": {}, \"evicted\": {}, \"wall_s\": {:.3}, \
             \"qps\": {:.1}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            p.mode,
            p.conns,
            p.issued,
            p.answered,
            p.shed_total,
            sheds.join(", "),
            p.transport_errors,
            p.served_conns,
            p.refused,
            p.evicted,
            p.wall_s,
            p.qps,
            p.p50_us,
            p.p99_us,
            if i + 1 < passes.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"idle_scale\": [\n");
    for (i, idle) in idle_rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"mode\": \"{}\", \"idle_conns\": {}, \"workers\": {}, \
             \"conns_per_worker\": {:.0}, \"accepted\": {}, \"refused\": {}, \
             \"foreground_queries\": {}, \"foreground_answered\": {}, \
             \"foreground_p50_us\": {}, \"foreground_p99_us\": {}, \"starved\": {}}}{}\n",
            idle.mode,
            idle.idle_conns,
            idle.workers,
            idle.idle_conns as f64 / idle.workers as f64,
            idle.accepted,
            idle.refused,
            idle.foreground_queries,
            idle.foreground_answered,
            idle.foreground_p50_us,
            idle.foreground_p99_us,
            idle.starved,
            if i + 1 < idle_rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    body.push_str("  \"pipeline_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"depth\": {}, \"issued\": {}, \"answered\": {}, \"pipeline_sheds\": {}, \
             \"wall_s\": {:.3}, \"qps\": {:.1}, \"p99_us\": {}}}{}\n",
            r.depth,
            r.issued,
            r.answered,
            r.pipeline_sheds,
            r.wall_s,
            r.qps,
            r.p99_us,
            if i + 1 < sweep.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"pipeline_overflow\": {{\"cap\": {}, \"burst\": {}, \"answered\": {}, \
         \"pipeline_sheds\": {}}}\n",
        overflow.cap, overflow.burst, overflow.answered, overflow.pipeline_sheds,
    ));
    body.push_str("}\n");
    std::fs::write(path, body)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test-mode");
    let reactor_available = cfg!(target_os = "linux");
    if !reactor_available {
        // The comparison is reactor-vs-pool; without epoll there is
        // nothing to compare, and the fallback path is covered by the
        // serve unit tests.
        println!("wire_connscale: reactor unavailable on this platform; skipping");
        return;
    }

    let (conn_counts, per_conn, idle_conns, foreground, sweep_total): (
        Vec<usize>,
        usize,
        usize,
        usize,
        usize,
    ) = if test_mode {
        (vec![32], 4, 64, 64, 96)
    } else {
        (vec![100, 1000], 10, 1000, 512, 2048)
    };
    let cap = 32usize;
    let depths: Vec<usize> = if test_mode {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32]
    };
    let (overflow_cap, overflow_burst) = if test_mode { (2, 8) } else { (4, 16) };

    println!("wire_connscale: conn scaling, {WORKERS} workers per server");
    println!(
        "  {:<8} {:>6} {:>8} {:>9} {:>7} {:>9} {:>7} {:>10} {:>10}",
        "mode", "conns", "answered", "shed", "refused", "served", "qps", "p50_us", "p99_us"
    );
    let mut passes = Vec::new();
    for &conns in &conn_counts {
        for mode in [ServeMode::Pool, ServeMode::Reactor] {
            let row = run_pass(mode, conns, per_conn);
            println!(
                "  {:<8} {:>6} {:>8} {:>9} {:>7} {:>9} {:>7.0} {:>10} {:>10}",
                row.mode,
                row.conns,
                row.answered,
                row.shed_total,
                row.refused,
                row.served_conns,
                row.qps,
                row.p50_us,
                row.p99_us,
            );
            passes.push(row);
        }
    }

    // Held-open connections: the reactor holds `idle_conns` (well past
    // the 4x-workers bar) and still answers the foreground instantly;
    // the pool parks a worker per open connection, so 4x workers of
    // idle clients starve the deadline-bounded foreground probe.
    let patience = Duration::from_millis(if test_mode { 500 } else { 2000 });
    let idle_rows = [
        run_idle_scale(ServeMode::Reactor, idle_conns, foreground, patience),
        run_idle_scale(ServeMode::Pool, 4 * WORKERS, 4, patience),
    ];
    for idle in &idle_rows {
        println!(
            "  idle-scale {:<8}: {} idle conns over {} workers ({}x), fg {}/{} answered, \
             p50 {} us p99 {} us{}",
            idle.mode,
            idle.idle_conns,
            idle.workers,
            idle.idle_conns / idle.workers,
            idle.foreground_answered,
            idle.foreground_queries,
            idle.foreground_p50_us,
            idle.foreground_p99_us,
            if idle.starved { " (starved)" } else { "" },
        );
    }

    println!("  pipeline sweep (server cap {cap}):");
    let sweep = run_pipeline_sweep(&depths, cap, sweep_total);
    for r in &sweep {
        println!(
            "    depth {:>3}: {:>7.0} qps, p99 {:>8} us, {} sheds",
            r.depth, r.qps, r.p99_us, r.pipeline_sheds
        );
    }

    let overflow = run_pipeline_overflow(overflow_cap, overflow_burst);
    println!(
        "  pipeline overflow: burst {} over cap {} -> {} answered, {} shed pipeline-full",
        overflow.burst, overflow.cap, overflow.answered, overflow.pipeline_sheds
    );

    // The headline claims, asserted every run (CI included).
    for row in &passes {
        if row.mode == "reactor" {
            assert_eq!(row.refused, 0, "reactor must accept every connection");
            assert_eq!(row.transport_errors, 0, "reactor must not drop clients");
            assert_eq!(
                row.served_conns, row.conns as u64,
                "reactor must serve every connection"
            );
            assert!(
                row.conns >= 4 * WORKERS,
                "experiment must exceed 4x workers"
            );
        }
    }
    let reactor_idle = &idle_rows[0];
    assert_eq!(reactor_idle.refused, 0);
    assert_eq!(
        reactor_idle.accepted,
        reactor_idle.idle_conns as u64 + 2,
        "idle + warm + fg"
    );
    assert_eq!(
        reactor_idle.foreground_answered, reactor_idle.foreground_queries,
        "reactor foreground must be fully served through idle noise"
    );
    assert!(
        idle_rows[1].starved,
        "pool must starve the foreground behind held-open connections"
    );
    for r in &sweep {
        assert_eq!(
            r.pipeline_sheds, 0,
            "in-cap depth {} must not shed",
            r.depth
        );
        assert_eq!(r.answered + r.pipeline_sheds, r.issued);
    }

    if test_mode {
        println!("wire_connscale: test-mode assertions passed");
    } else {
        write_json(&passes, &idle_rows, &sweep, &overflow).expect("write BENCH_pr10.json");
        println!("wire_connscale: wrote BENCH_pr10.json");
    }
}
