//! Network serving throughput: sustained loopback qps of a [`NetServer`]
//! with wall-clock latency percentiles, plus the framing micro-benchmark
//! (binary frame codec vs the text wire codec). Run with
//! `cargo bench -p hermes-bench --bench wire_throughput`; CI passes
//! `-- --test-mode` for a quick smoke run with assertions.
//!
//! The full run emits `BENCH_pr9.json` at the repo root — the serving
//! point in the performance trajectory (see README "Performance").
//!
//! Three experiments:
//!
//! * **codec** — round-trip a corpus of answer-shaped values through the
//!   binary (`value_to_bytes`/`value_from_bytes`) and text
//!   (`encode_value`/`value_from_str`) codecs and compare ns/round-trip
//!   and encoded size. The binary framing exists because the profile
//!   showed text parsing dominating warm cache hits; this keeps the
//!   receipt honest.
//! * **serving** — a real `NetServer` on a loopback socket over the same
//!   Zipf world as `hermes-serve`, sources behind [`SlowDomain`] (3 ms
//!   real latency per executed call). Client threads drive the mix cold
//!   (cache misses pay real source time) and then warm (CIM hits pay
//!   only wire + parse time), reporting qps and p50/p95/p99 wall-clock
//!   latency per phase.
//! * **overload** — a deliberately small server (2 workers, 2 pending
//!   conns, gate bounded at 2 concurrent queries) driven by 2× more
//!   connections than pool + queue can hold, on cold keys so every
//!   admitted query really occupies a worker. Reports how much load was
//!   shed at the gate vs refused at the socket — backpressure must show
//!   up as *counted* sheds, not as transport errors or hangs.

use hermes_common::frame::{value_from_bytes, value_to_bytes};
use hermes_common::wire::{encode_value, value_from_str};
use hermes_common::{QueryFrame, Record, Rng64, Value};
use hermes_core::{
    ConcurrentMediator, GateConfig, Mediator, NetServer, ServeConfig, ServeMode, WireClient,
};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_domains::SlowDomain;
use hermes_net::{profiles, Network};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Real wall-clock delay per executed source call.
const SOURCE_DELAY: Duration = Duration::from_millis(3);
/// Keys per relation — matches the `hermes-serve` synthetic world.
const KEYS: usize = 64;

// ---------------------------------------------------------------- world

/// The serving world: two SlowDomain-wrapped synthetic sites, the same
/// shape `hermes-serve` builds, so bench numbers transfer.
fn build_server(seed: u64) -> ConcurrentMediator {
    let d0 = SyntheticDomain::generate(
        "d0",
        seed,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
            RelationSpec::uniform("h", KEYS, 2.0),
        ],
    );
    let d1 = SyntheticDomain::generate(
        "d1",
        seed + 1,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
        ],
    );
    let mut net = Network::new(seed);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d0), SOURCE_DELAY)),
        profiles::maryland(),
    );
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d1), SOURCE_DELAY)),
        profiles::cornell(),
    );
    let m = Mediator::from_source(
        "
        q0(A, B) :- in(B, d0:r0_bf(A)).
        q1(A, B) :- in(B, d0:r1_bf(A)).
        q2(A, B) :- in(B, d1:r0_bf(A)).
        q3(A, B) :- in(B, d1:r1_bf(A)).
        hot(A, B) :- in(B, d0:h_bf(A)).
        ",
        net,
    )
    .expect("bench program parses");
    m.to_concurrent(8)
}

/// The Zipf-skewed mix over the serving world's query forms — identical
/// in shape to `hermes-load` and the `mediator_throughput` bench.
fn zipf_mix(seed: u64, count: usize) -> Vec<String> {
    let mut rng = Rng64::new(seed ^ 0x7F4A_7C15);
    (0..count)
        .map(|_| {
            let f = rng.range_usize(0, 4);
            let key = rng.zipf(KEYS, 1.1) % KEYS;
            let rel = if f.is_multiple_of(2) { "r0" } else { "r1" };
            format!("?- q{f}('{rel}_{key}', B).")
        })
        .collect()
}

// ---------------------------------------------------------------- codec

/// Answer-shaped values: records with string/int/float fields, the
/// payload every batch frame actually carries.
fn sample_values(n: usize) -> Vec<Value> {
    let mut rng = Rng64::new(0x00DE_CC0D);
    (0..n)
        .map(|i| {
            Value::Record(Record::from_fields(vec![
                ("a", Value::Str(format!("r{}_{}", i % 4, i % KEYS).into())),
                ("b", Value::Int(rng.range_i64(-1_000_000, 1_000_000))),
                ("c", Value::Float(rng.range_f64(0.0, 1.0))),
                (
                    "tags",
                    Value::List(vec![
                        Value::Str("hot".into()),
                        Value::Bool(rng.chance(0.5)),
                        Value::Null,
                    ]),
                ),
            ]))
        })
        .collect()
}

struct CodecRow {
    values: usize,
    iters: usize,
    binary_ns_per_roundtrip: f64,
    text_ns_per_roundtrip: f64,
    binary_bytes_per_value: f64,
    text_bytes_per_value: f64,
    speedup: f64,
}

fn bench_codec(values: usize, iters: usize) -> CodecRow {
    let corpus = sample_values(values);

    // Encoded sizes, once.
    let bin_bytes: usize = corpus.iter().map(|v| value_to_bytes(v).len()).sum();
    let text_bytes: usize = corpus
        .iter()
        .map(|v| {
            let mut s = String::new();
            encode_value(v, &mut s);
            s.len()
        })
        .sum();

    // Binary round trips.
    let t0 = Instant::now();
    for _ in 0..iters {
        for v in &corpus {
            let bytes = value_to_bytes(v);
            let back = value_from_bytes(&bytes).expect("binary codec round-trips");
            assert_eq!(&back, v);
        }
    }
    let bin_ns = t0.elapsed().as_nanos() as f64 / (iters * values) as f64;

    // Text round trips.
    let t0 = Instant::now();
    for _ in 0..iters {
        for v in &corpus {
            let mut s = String::new();
            encode_value(v, &mut s);
            let back = value_from_str(&s).expect("text codec round-trips");
            assert_eq!(&back, v);
        }
    }
    let text_ns = t0.elapsed().as_nanos() as f64 / (iters * values) as f64;

    CodecRow {
        values,
        iters,
        binary_ns_per_roundtrip: bin_ns,
        text_ns_per_roundtrip: text_ns,
        binary_bytes_per_value: bin_bytes as f64 / values as f64,
        text_bytes_per_value: text_bytes as f64 / values as f64,
        speedup: text_ns / bin_ns,
    }
}

// -------------------------------------------------------------- serving

struct Phase {
    name: &'static str,
    conns: usize,
    queries: u64,
    wall_s: f64,
    qps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    source_calls: u64,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((sorted_us.len() as f64) * p).ceil() as usize;
    sorted_us[rank.clamp(1, sorted_us.len()) - 1]
}

/// Drives `mix` split across `conns` client threads against `addr` and
/// reports throughput + latency percentiles for the pass. The caller
/// fills in `source_calls` from the server's own counters afterwards.
fn run_phase(addr: &str, conns: usize, mix: &[String], name: &'static str) -> Phase {
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let lo = c * mix.len() / conns;
                let hi = (c + 1) * mix.len() / conns;
                let slice = &mix[lo..hi];
                s.spawn(move || {
                    let mut client = WireClient::connect_retry(addr, Duration::from_secs(5))
                        .expect("bench client connects");
                    let mut lat = Vec::with_capacity(slice.len());
                    for q in slice {
                        let start = Instant::now();
                        client
                            .query(QueryFrame::new(q.clone()))
                            .expect("bench query runs");
                        lat.push(start.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let wall_s = t0.elapsed().as_secs_f64();
    latencies.sort_unstable();
    Phase {
        name,
        conns,
        queries: mix.len() as u64,
        wall_s,
        qps: mix.len() as f64 / wall_s,
        p50_us: percentile(&latencies, 0.50),
        p95_us: percentile(&latencies, 0.95),
        p99_us: percentile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        source_calls: 0,
    }
}

// ------------------------------------------------------------- overload

struct Overload {
    conns: usize,
    workers: usize,
    issued: u64,
    answered: u64,
    shed: u64,
    socket_refused: u64,
    transport_errors: u64,
}

/// 2× overload: a small pool + queue + gate, driven by twice as many
/// connections as they can hold, on cold keys (every admitted query
/// occupies a worker for real source time).
fn run_overload(duration: Duration) -> Overload {
    let workers = 2usize;
    let mediator = Arc::new(build_server(77));
    mediator.set_gate(GateConfig::bounded(2));
    // Pinned to the pool engine: this scenario measures the pool's
    // accept-queue backpressure specifically (the reactor has no
    // per-worker connection ceiling to overload this way).
    let config = ServeConfig::builder()
        .mode(ServeMode::Pool)
        .workers(workers)
        .pending_conns(2)
        .build();
    let net = NetServer::bind(Arc::clone(&mediator), "127.0.0.1:0", config)
        .expect("overload server binds");
    let addr = net.addr().to_string();
    // 2× of (workers + pending queue + gate capacity).
    let conns = 2 * (workers + 2 + 2);

    let tallies: Vec<(u64, u64, u64, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let addr = addr.clone();
                s.spawn(move || {
                    let mut rng = Rng64::new(0xBEEF ^ c as u64);
                    let mut client = match WireClient::connect_retry(&addr, Duration::from_secs(5))
                    {
                        Ok(c) => c,
                        Err(_) => return (0, 0, 0, 1),
                    };
                    let (mut issued, mut answered, mut shed, mut transport) = (0, 0, 0, 0);
                    let deadline = Instant::now() + duration;
                    while Instant::now() < deadline {
                        // A cold key most of the time: occupy the worker.
                        let key = rng.range_usize(0, KEYS);
                        let q = format!("?- q{}('r0_{key}', B).", rng.range_usize(0, 2) * 2);
                        issued += 1;
                        match client.query(QueryFrame::new(q)) {
                            Ok(_) => answered += 1,
                            Err(hermes_common::HermesError::Shed { .. }) => {
                                shed += 1;
                                // An accept-queue shed closes the socket;
                                // reconnect either way and keep pushing.
                                match WireClient::connect_retry(&addr, Duration::from_secs(5)) {
                                    Ok(c) => client = c,
                                    Err(_) => {
                                        transport += 1;
                                        break;
                                    }
                                }
                            }
                            Err(_) => {
                                transport += 1;
                                match WireClient::connect_retry(&addr, Duration::from_secs(5)) {
                                    Ok(c) => client = c,
                                    Err(_) => break,
                                }
                            }
                        }
                    }
                    (issued, answered, shed, transport)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let server_shed = mediator.stats().shed;
    let net_stats = net.shutdown();
    let mut o = Overload {
        conns,
        workers,
        issued: 0,
        answered: 0,
        shed: 0,
        socket_refused: net_stats.refused,
        transport_errors: 0,
    };
    for (i, a, s, t) in tallies {
        o.issued += i;
        o.answered += a;
        o.shed += s;
        o.transport_errors += t;
    }
    // The client saw every gate shed the server counted (socket refusals
    // are counted separately, before a query ever exists).
    assert!(
        o.shed >= server_shed,
        "client sheds {} < gate sheds {server_shed}",
        o.shed
    );
    o
}

// ----------------------------------------------------------------- main

fn write_json(codec: &CodecRow, phases: &[Phase], over: &Overload) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr9.json");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"wire_throughput\",\n");
    body.push_str(
        "  \"description\": \"NetServer loopback qps with wall-clock latency percentiles \
         (cold vs warm cache, 3 ms real source latency), binary-vs-text codec \
         micro-bench, and shed accounting under 2x overload\",\n",
    );
    body.push_str(&format!(
        "  \"codec\": {{\"values\": {}, \"iters\": {}, \"binary_ns_per_roundtrip\": {:.1}, \
         \"text_ns_per_roundtrip\": {:.1}, \"binary_bytes_per_value\": {:.1}, \
         \"text_bytes_per_value\": {:.1}, \"binary_speedup\": {:.2}}},\n",
        codec.values,
        codec.iters,
        codec.binary_ns_per_roundtrip,
        codec.text_ns_per_roundtrip,
        codec.binary_bytes_per_value,
        codec.text_bytes_per_value,
        codec.speedup,
    ));
    body.push_str("  \"serving\": [\n");
    for (i, p) in phases.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"phase\": \"{}\", \"conns\": {}, \"queries\": {}, \"wall_s\": {:.3}, \
             \"qps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
             \"source_calls\": {}}}{}\n",
            p.name,
            p.conns,
            p.queries,
            p.wall_s,
            p.qps,
            p.p50_us,
            p.p95_us,
            p.p99_us,
            p.max_us,
            p.source_calls,
            if i + 1 < phases.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!(
        "  \"overload\": {{\"conns\": {}, \"workers\": {}, \"issued\": {}, \"answered\": {}, \
         \"shed\": {}, \"socket_refused\": {}, \"transport_errors\": {}}}\n",
        over.conns,
        over.workers,
        over.issued,
        over.answered,
        over.shed,
        over.socket_refused,
        over.transport_errors,
    ));
    body.push_str("}\n");
    std::fs::write(path, body)?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test-mode");
    let (codec_values, codec_iters, conns, mix_len, warm_len, overload_ms) = if test_mode {
        (64, 20, 4, 200, 400, 250)
    } else {
        (512, 200, 8, 3000, 20000, 1500)
    };

    println!("wire_throughput: binary framing + loopback serving\n");

    // Codec micro-bench.
    let codec = bench_codec(codec_values, codec_iters);
    println!(
        "codec: binary {:.0} ns/rt ({:.0} B), text {:.0} ns/rt ({:.0} B) -> {:.2}x",
        codec.binary_ns_per_roundtrip,
        codec.binary_bytes_per_value,
        codec.text_ns_per_roundtrip,
        codec.text_bytes_per_value,
        codec.speedup,
    );

    // Serving: one server, cold pass then warm pass over the same keys.
    let mediator = Arc::new(build_server(42));
    let net = NetServer::bind(Arc::clone(&mediator), "127.0.0.1:0", ServeConfig::default())
        .expect("bench server binds");
    let addr = net.addr().to_string();

    let cold_mix = zipf_mix(42, mix_len);
    let mut cold = run_phase(&addr, conns, &cold_mix, "cold");
    cold.source_calls = mediator.stats().source_calls;
    // Unmeasured sweep of every (form, key) combo: the Zipf tail may
    // never come up cold, and the warm pass must be all cache hits.
    let sweep: Vec<String> = (0..4usize)
        .flat_map(|f| {
            (0..KEYS).map(move |k| {
                let rel = if f.is_multiple_of(2) { "r0" } else { "r1" };
                format!("?- q{f}('{rel}_{k}', B).")
            })
        })
        .collect();
    run_phase(&addr, conns, &sweep, "sweep");
    let after_sweep = mediator.stats().source_calls;
    let warm_mix = zipf_mix(42, warm_len);
    let mut warm = run_phase(&addr, conns, &warm_mix, "warm");
    warm.source_calls = mediator.stats().source_calls - after_sweep;
    net.shutdown();
    let phases = [cold, warm];
    println!(
        "\n{:>6}  {:>6}  {:>8}  {:>9}  {:>8}  {:>8}  {:>8}  {:>9}",
        "phase", "conns", "queries", "qps", "p50 us", "p95 us", "p99 us", "src calls"
    );
    for p in &phases {
        println!(
            "{:>6}  {:>6}  {:>8}  {:>9.0}  {:>8}  {:>8}  {:>8}  {:>9}",
            p.name, p.conns, p.queries, p.qps, p.p50_us, p.p95_us, p.p99_us, p.source_calls
        );
    }

    // Overload.
    let over = run_overload(Duration::from_millis(overload_ms));
    println!(
        "\noverload: {} conns vs {} workers: issued {}  answered {}  shed {}  \
         socket-refused {}  transport-errors {}",
        over.conns,
        over.workers,
        over.issued,
        over.answered,
        over.shed,
        over.socket_refused,
        over.transport_errors,
    );

    let (cold, warm) = (&phases[0], &phases[1]);
    // Invariants that hold in any mode; test mode turns them into the
    // CI contract, the full run still refuses to write nonsense.
    assert!(
        codec.binary_speedup_ok(),
        "binary codec slower than text: {:.2}x",
        codec.speedup
    );
    assert!(
        warm.source_calls == 0,
        "warm pass paid {} source calls",
        warm.source_calls
    );
    assert!(cold.source_calls > 0, "cold pass never reached a source");
    assert!(
        warm.qps > cold.qps,
        "warm serving no faster than cold: {:.0} <= {:.0}",
        warm.qps,
        cold.qps
    );
    assert!(
        over.shed + over.socket_refused > 0,
        "2x overload shed nothing — backpressure never engaged"
    );
    assert_eq!(
        over.answered + over.shed + over.transport_errors,
        over.issued,
        "overload queries unaccounted for"
    );

    if test_mode {
        println!("\nwire_throughput: OK (test mode)");
    } else if let Err(e) = write_json(&codec, &phases, &over) {
        eprintln!("failed to write BENCH_pr9.json: {e}");
        std::process::exit(1);
    }
}

impl CodecRow {
    /// The whole point of the binary framing: it must not lose to text.
    fn binary_speedup_ok(&self) -> bool {
        self.speedup >= 1.0
    }
}
