//! Concurrent-serving throughput: queries/sec of a [`ConcurrentMediator`]
//! as client threads scale from 1 to 8 over a Zipf-skewed query mix. Run
//! with `cargo bench -p hermes-bench --bench mediator_throughput`; CI
//! passes `-- --test-mode` for a quick smoke run that asserts 8 threads
//! beat 1 thread and that call coalescing actually fires.
//!
//! The full run emits `BENCH_pr5.json` at the repo root — the second point
//! in the performance trajectory (see README "Performance").
//!
//! Sources are wrapped in [`SlowDomain`] so every *real* source call costs
//! real wall-clock time (the simulator otherwise charges only virtual
//! time, and a single CPU would show no concurrency benefit). Threads
//! serving cache hits, or coalescing onto another query's in-flight call,
//! skip the delay — so the measured speedup is exactly the paper's story:
//! caching + coalescing turn source latency into shared work.
//!
//! Each run has two phases per thread count, against a cold server:
//!
//! * **stampede** — every thread issues the *same* cold call at the same
//!   instant (barrier-released), exercising the single-flight registry;
//! * **mix** — a pre-generated Zipf-skewed workload over 4 `(domain,
//!   function)` pairs × 64 keys, split evenly across the threads.

use hermes_core::{ConcurrentMediator, Mediator};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_domains::SlowDomain;
use hermes_net::{profiles, Network};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Real wall-clock delay per executed source call.
const SOURCE_DELAY: Duration = Duration::from_millis(3);
/// Keys per relation; the Zipf mix draws from these.
const KEYS: usize = 64;
/// Identical queries per stampede round (divisible by every thread count).
const PER_ROUND: usize = 8;

/// Generous CI bound for `--test-mode`: 8 threads must beat 1 thread by at
/// least this factor. The acceptance bar for the committed full run is 4×;
/// 1.3× absorbs shared-runner noise while still failing loudly if the
/// server ever serializes clients again (~1.0×).
const TEST_MODE_SPEEDUP_BOUND: f64 = 1.3;

fn build_server(seed: u64) -> ConcurrentMediator {
    let d0 = SyntheticDomain::generate(
        "d0",
        seed,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
            RelationSpec::uniform("h", KEYS, 2.0),
        ],
    );
    let d1 = SyntheticDomain::generate(
        "d1",
        seed + 1,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
        ],
    );
    let mut net = Network::new(seed);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d0), SOURCE_DELAY)),
        profiles::maryland(),
    );
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d1), SOURCE_DELAY)),
        profiles::cornell(),
    );
    let m = Mediator::from_source(
        "
        q0(A, B) :- in(B, d0:r0_bf(A)).
        q1(A, B) :- in(B, d0:r1_bf(A)).
        q2(A, B) :- in(B, d1:r0_bf(A)).
        q3(A, B) :- in(B, d1:r1_bf(A)).
        hot(A, B) :- in(B, d0:h_bf(A)).
        ",
        net,
    )
    .expect("bench program parses");
    m.to_concurrent(8)
}

/// The Zipf-skewed mix: `count` queries over the 4 `(domain, function)`
/// pairs, keys drawn Zipf(s = 1.1) so hot keys repeat (cache hits) while
/// the tail stays cold (real source calls).
fn zipf_mix(seed: u64, count: usize) -> Vec<String> {
    let mut rng = hermes_common::Rng64::new(seed ^ 0x7F4A_7C15);
    (0..count)
        .map(|_| {
            let f = rng.range_usize(0, 4);
            let key = rng.zipf(KEYS, 1.1) % KEYS;
            let rel = if f.is_multiple_of(2) { "r0" } else { "r1" };
            format!("?- q{f}('{rel}_{key}', B).")
        })
        .collect()
}

struct Run {
    threads: usize,
    total_queries: usize,
    wall_s: f64,
    qps: f64,
    source_calls: u64,
    calls_coalesced: u64,
    round_trips_saved: u64,
    coalesced_ratio: f64,
    shard_contention: u64,
}

/// Serves the whole workload from `threads` client threads against a cold
/// server and reports wall-clock throughput plus coalescing counters.
fn run_workload(threads: usize, mix: &[String], stampede_rounds: usize, seed: u64) -> Run {
    let server = build_server(seed);
    let barrier = Barrier::new(threads);
    let copies = PER_ROUND / threads;
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let (server, barrier) = (&server, &barrier);
            let lo = t * mix.len() / threads;
            let hi = (t + 1) * mix.len() / threads;
            let slice = &mix[lo..hi];
            s.spawn(move || {
                // Stampede: all threads fire the same cold call at once.
                for round in 0..stampede_rounds {
                    barrier.wait();
                    for _ in 0..copies {
                        server
                            .query(format!("?- hot('h_{round}', B).").as_str())
                            .expect("stampede query runs");
                    }
                }
                // Mix: this thread's share of the Zipf workload.
                for q in slice {
                    server.query(q.as_str()).expect("mix query runs");
                }
            });
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = server.stats();
    let total_queries = mix.len() + stampede_rounds * PER_ROUND;
    assert_eq!(stats.queries as usize, total_queries);
    let attempted = stats.source_calls + stats.calls_coalesced;
    Run {
        threads,
        total_queries,
        wall_s,
        qps: total_queries as f64 / wall_s,
        source_calls: stats.source_calls,
        calls_coalesced: stats.calls_coalesced,
        round_trips_saved: stats.round_trips_saved,
        coalesced_ratio: if attempted > 0 {
            stats.calls_coalesced as f64 / attempted as f64
        } else {
            0.0
        },
        shard_contention: stats.cim_lock_contention + stats.dcsm_lock_contention,
    }
}

fn write_json(rows: &[Run], speedup: f64) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr5.json");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"mediator_throughput\",\n");
    body.push_str(
        "  \"description\": \"ConcurrentMediator queries/sec vs client threads \
         (Zipf mix + stampede phase, 3 ms real source latency)\",\n",
    );
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"threads\": {}, \"queries\": {}, \"wall_s\": {:.3}, \"qps\": {:.1}, \
             \"source_calls\": {}, \"calls_coalesced\": {}, \"round_trips_saved\": {}, \
             \"coalesced_ratio\": {:.3}, \"shard_lock_contention\": {}}}{}\n",
            r.threads,
            r.total_queries,
            r.wall_s,
            r.qps,
            r.source_calls,
            r.calls_coalesced,
            r.round_trips_saved,
            r.coalesced_ratio,
            r.shard_contention,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ],\n");
    body.push_str(&format!("  \"speedup_8x_over_1x\": {speedup:.2}\n"));
    body.push_str("}\n");
    std::fs::write(path, body)?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test-mode");
    let (thread_counts, mix_len, stampede_rounds): (&[usize], usize, usize) = if test_mode {
        (&[1, 8], 96, 3)
    } else {
        (&[1, 2, 4, 8], 400, 6)
    };
    let mix = zipf_mix(42, mix_len);

    println!("mediator_throughput: concurrent serving, Zipf mix + stampede\n");
    println!(
        "{:>8}  {:>9}  {:>8}  {:>9}  {:>13}  {:>10}  {:>11}",
        "threads", "wall (s)", "qps", "src calls", "coalesced", "ratio", "contention"
    );
    let rows: Vec<Run> = thread_counts
        .iter()
        .map(|&n| {
            let r = run_workload(n, &mix, stampede_rounds, 42);
            println!(
                "{:>8}  {:>9.3}  {:>8.1}  {:>9}  {:>13}  {:>10.3}  {:>11}",
                r.threads,
                r.wall_s,
                r.qps,
                r.source_calls,
                r.calls_coalesced,
                r.coalesced_ratio,
                r.shard_contention
            );
            r
        })
        .collect();

    let one = rows.first().expect("at least one row");
    let eight = rows.last().expect("at least one row");
    let speedup = eight.qps / one.qps;
    println!("\n8-thread / 1-thread speedup: {speedup:.2}x");

    if test_mode {
        assert!(
            speedup >= TEST_MODE_SPEEDUP_BOUND,
            "concurrent serving no faster than serial: {speedup:.2}x < {TEST_MODE_SPEEDUP_BOUND}x"
        );
        assert!(
            eight.calls_coalesced > 0,
            "stampede phase never coalesced a call"
        );
        println!("mediator_throughput: OK (test mode)");
    } else if let Err(e) = write_json(&rows, speedup) {
        eprintln!("failed to write BENCH_pr5.json: {e}");
        std::process::exit(1);
    }
}
