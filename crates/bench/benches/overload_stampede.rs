//! Overload stampede: tail latency and load shedding at 2–4× the client
//! load of the PR 5 throughput bench. Run with `cargo bench -p
//! hermes-bench --bench overload_stampede`; CI passes `-- --test-mode`
//! for a quick smoke run that asserts the admission accounting is exact
//! and that a bounded gate actually sheds under a thundering herd.
//!
//! The full run emits `BENCH_pr6.json` at the repo root.
//!
//! Two configurations serve the identical workload (Zipf mix plus
//! barrier-released stampede rounds, 3 ms of real latency per executed
//! source call):
//!
//! * **unbounded** — the PR 5 behavior: every query admitted at `Full`,
//!   overload queues behind the slow sources;
//! * **gated** — a bounded admission gate (capacity 8, 6 `Full` slots):
//!   excess queries are shed immediately with [`HermesError::Shed`], and
//!   queries arriving under high load start at a cheaper plan tier.
//!
//! Every query is accounted for exactly once:
//! `shed + downgraded + full == issued`, where `full` is the admitted
//! queries that served at the paper-exact tier end to end.

use hermes_common::HermesError;
use hermes_core::{ConcurrentMediator, GateConfig, Mediator};
use hermes_domains::synthetic::{RelationSpec, SyntheticDomain};
use hermes_domains::SlowDomain;
use hermes_net::{profiles, Network};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Real wall-clock delay per executed source call.
const SOURCE_DELAY: Duration = Duration::from_millis(3);
/// Keys per relation; the Zipf mix draws from these.
const KEYS: usize = 64;
/// Identical queries per stampede round (divisible by every thread count).
const PER_ROUND: usize = 32;
/// Total concurrently admitted queries in the gated configuration.
const GATE_CAPACITY: usize = 8;
/// `Full`-tier slots in the gated configuration.
const GATE_FULL_SLOTS: usize = 6;

fn build_server(seed: u64) -> ConcurrentMediator {
    let d0 = SyntheticDomain::generate(
        "d0",
        seed,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
            RelationSpec::uniform("h", KEYS, 2.0),
        ],
    );
    let d1 = SyntheticDomain::generate(
        "d1",
        seed + 1,
        &[
            RelationSpec::uniform("r0", KEYS, 2.0),
            RelationSpec::uniform("r1", KEYS, 2.0),
        ],
    );
    let mut net = Network::new(seed);
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d0), SOURCE_DELAY)),
        profiles::maryland(),
    );
    net.place(
        Arc::new(SlowDomain::new(Arc::new(d1), SOURCE_DELAY)),
        profiles::cornell(),
    );
    let m = Mediator::from_source(
        "
        q0(A, B) :- in(B, d0:r0_bf(A)).
        q1(A, B) :- in(B, d0:r1_bf(A)).
        q2(A, B) :- in(B, d1:r0_bf(A)).
        q3(A, B) :- in(B, d1:r1_bf(A)).
        hot(A, B) :- in(B, d0:h_bf(A)).
        ",
        net,
    )
    .expect("bench program parses");
    m.to_concurrent(8)
}

/// The same Zipf-skewed mix as the PR 5 bench, at a larger count.
fn zipf_mix(seed: u64, count: usize) -> Vec<String> {
    let mut rng = hermes_common::Rng64::new(seed ^ 0x7F4A_7C15);
    (0..count)
        .map(|_| {
            let f = rng.range_usize(0, 4);
            let key = rng.zipf(KEYS, 1.1) % KEYS;
            let rel = if f.is_multiple_of(2) { "r0" } else { "r1" };
            format!("?- q{f}('{rel}_{key}', B).")
        })
        .collect()
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

struct Run {
    config: &'static str,
    threads: usize,
    issued: usize,
    admitted: u64,
    shed: u64,
    downgraded: u64,
    full: u64,
    wall_s: f64,
    qps: f64,
    served_p50_ms: f64,
    served_p99_ms: f64,
    shed_p99_ms: f64,
}

/// Serves the workload from `threads` clients, recording per-query wall
/// latency; `gated` bounds the admission gate first.
fn run_workload(
    threads: usize,
    mix: &[String],
    stampede_rounds: usize,
    seed: u64,
    gated: bool,
) -> Run {
    let server = build_server(seed);
    if gated {
        server.set_gate(GateConfig {
            capacity: GATE_CAPACITY,
            cache_only_slots: usize::MAX,
            cached_cheap_slots: usize::MAX,
            full_slots: GATE_FULL_SLOTS,
        });
    }
    let barrier = Barrier::new(threads);
    let copies = PER_ROUND / threads;
    let t0 = Instant::now();
    let (mut served_ms, mut shed_ms) = (Vec::new(), Vec::new());
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let (server, barrier) = (&server, &barrier);
                let lo = t * mix.len() / threads;
                let hi = (t + 1) * mix.len() / threads;
                let slice = &mix[lo..hi];
                s.spawn(move || {
                    let mut served = Vec::new();
                    let mut shed = Vec::new();
                    let mut run_one = |q: &str| {
                        let q0 = Instant::now();
                        match server.query(q) {
                            Ok(_) => served.push(q0.elapsed().as_secs_f64() * 1e3),
                            Err(HermesError::Shed { .. }) => {
                                shed.push(q0.elapsed().as_secs_f64() * 1e3)
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    };
                    for round in 0..stampede_rounds {
                        barrier.wait();
                        for _ in 0..copies {
                            run_one(&format!("?- hot('h_{round}', B)."));
                        }
                    }
                    for q in slice {
                        run_one(q);
                    }
                    (served, shed)
                })
            })
            .collect();
        for h in handles {
            let (served, shed) = h.join().expect("no panics");
            served_ms.extend(served);
            shed_ms.extend(shed);
        }
    });
    let wall_s = t0.elapsed().as_secs_f64();
    let stats = server.stats();
    let issued = mix.len() + stampede_rounds * PER_ROUND;

    // The accounting identity: every issued query is exactly one of shed,
    // downgraded, or served at the paper-exact Full tier.
    assert_eq!(stats.queries as usize, issued);
    assert_eq!(stats.admitted + stats.shed, stats.queries);
    assert_eq!(stats.admitted as usize, served_ms.len());
    assert_eq!(stats.shed as usize, shed_ms.len());
    let full = stats.admitted - stats.downgraded;
    assert_eq!(stats.shed + stats.downgraded + full, stats.queries);

    served_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    shed_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Run {
        config: if gated { "gated" } else { "unbounded" },
        threads,
        issued,
        admitted: stats.admitted,
        shed: stats.shed,
        downgraded: stats.downgraded,
        full,
        wall_s,
        qps: issued as f64 / wall_s,
        served_p50_ms: percentile(&served_ms, 50.0),
        served_p99_ms: percentile(&served_ms, 99.0),
        shed_p99_ms: percentile(&shed_ms, 99.0),
    }
}

fn write_json(rows: &[Run]) -> std::io::Result<()> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_pr6.json");
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str("  \"bench\": \"overload_stampede\",\n");
    body.push_str(
        "  \"description\": \"bounded admission gate vs unbounded serving under a \
         thundering herd (Zipf mix + stampede, 3 ms real source latency); \
         shed + downgraded + full == issued for every row\",\n",
    );
    body.push_str(&format!(
        "  \"gate\": {{\"capacity\": {GATE_CAPACITY}, \"full_slots\": {GATE_FULL_SLOTS}}},\n"
    ));
    body.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        body.push_str(&format!(
            "    {{\"config\": \"{}\", \"threads\": {}, \"issued\": {}, \"admitted\": {}, \
             \"shed\": {}, \"downgraded\": {}, \"full\": {}, \"wall_s\": {:.3}, \
             \"qps\": {:.1}, \"served_p50_ms\": {:.3}, \"served_p99_ms\": {:.3}, \
             \"shed_p99_ms\": {:.3}}}{}\n",
            r.config,
            r.threads,
            r.issued,
            r.admitted,
            r.shed,
            r.downgraded,
            r.full,
            r.wall_s,
            r.qps,
            r.served_p50_ms,
            r.served_p99_ms,
            r.shed_p99_ms,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    body.push_str("  ]\n");
    body.push_str("}\n");
    std::fs::write(path, body)?;
    println!("wrote {path}");
    Ok(())
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test-mode");
    // 2–4x the PR 5 full-run load (8 client threads there).
    let (thread_counts, mix_len, stampede_rounds): (&[usize], usize, usize) = if test_mode {
        (&[16], 160, 2)
    } else {
        (&[16, 32], 1200, 8)
    };
    let mix = zipf_mix(42, mix_len);

    println!("overload_stampede: bounded admission gate under a thundering herd\n");
    println!(
        "{:>10}  {:>7}  {:>7}  {:>8}  {:>5}  {:>10}  {:>5}  {:>9}  {:>9}  {:>9}",
        "config",
        "threads",
        "issued",
        "admitted",
        "shed",
        "downgraded",
        "full",
        "p50 (ms)",
        "p99 (ms)",
        "wall (s)"
    );
    let mut rows = Vec::new();
    for &threads in thread_counts {
        for gated in [false, true] {
            let r = run_workload(threads, &mix, stampede_rounds, 42, gated);
            println!(
                "{:>10}  {:>7}  {:>7}  {:>8}  {:>5}  {:>10}  {:>5}  {:>9.3}  {:>9.3}  {:>9.3}",
                r.config,
                r.threads,
                r.issued,
                r.admitted,
                r.shed,
                r.downgraded,
                r.full,
                r.served_p50_ms,
                r.served_p99_ms,
                r.wall_s
            );
            rows.push(r);
        }
    }

    if test_mode {
        let gated = rows
            .iter()
            .find(|r| r.config == "gated")
            .expect("gated row");
        let unbounded = rows
            .iter()
            .find(|r| r.config == "unbounded")
            .expect("unbounded row");
        assert_eq!(
            unbounded.shed, 0,
            "an unbounded gate must never shed anything"
        );
        assert!(
            gated.shed > 0,
            "16 threads against a capacity-{GATE_CAPACITY} gate never shed a query"
        );
        assert!(
            gated.shed + gated.downgraded + gated.full == gated.issued as u64,
            "accounting leak: {} + {} + {} != {}",
            gated.shed,
            gated.downgraded,
            gated.full,
            gated.issued
        );
        println!("\noverload_stampede: OK (test mode)");
    } else if let Err(e) = write_json(&rows) {
        eprintln!("failed to write BENCH_pr6.json: {e}");
        std::process::exit(1);
    }
}
