//! Sites and their link models.

use hermes_common::{SimDuration, SimInstant};
use std::sync::Arc;

/// The network characteristics of the path from the mediator to a site.
///
/// All times in milliseconds. The effective service time of a call is
///
/// ```text
/// connect + rtt * load(t) * jitter + bytes / bandwidth
/// ```
///
/// where `load(t)` is a deterministic diurnal curve over virtual time and
/// `jitter` is a per-call lognormal-ish factor drawn from the network's
/// seeded RNG.
#[derive(Clone, Debug)]
pub struct LinkModel {
    /// Per-call connection setup cost, ms (TCP + application handshake).
    pub connect_ms: f64,
    /// Round-trip time, ms.
    pub rtt_ms: f64,
    /// Relative standard deviation of per-call jitter (0 disables).
    pub jitter_frac: f64,
    /// Usable bandwidth, bytes per millisecond.
    pub bytes_per_ms: f64,
    /// Amplitude of the diurnal load curve (0 disables; 1.0 doubles
    /// latency at peak).
    pub load_amplitude: f64,
    /// Period of the load curve, ms of virtual time.
    pub load_period_ms: f64,
    /// Probability that a call fails outright (connection refused).
    pub failure_rate: f64,
}

impl Default for LinkModel {
    fn default() -> Self {
        LinkModel {
            connect_ms: 1.0,
            rtt_ms: 1.0,
            jitter_frac: 0.0,
            bytes_per_ms: 1_000.0,
            load_amplitude: 0.0,
            load_period_ms: 3_600_000.0,
            failure_rate: 0.0,
        }
    }
}

impl LinkModel {
    /// The deterministic load multiplier at virtual time `t` (≥ 1).
    pub fn load_factor(&self, t: SimInstant) -> f64 {
        if self.load_amplitude <= 0.0 {
            return 1.0;
        }
        let phase = (t.as_millis_f64() / self.load_period_ms) * std::f64::consts::TAU;
        1.0 + self.load_amplitude * 0.5 * (1.0 + phase.sin())
    }

    /// Transfer time for `bytes` at this link's bandwidth.
    pub fn transfer(&self, bytes: usize) -> SimDuration {
        SimDuration::from_millis_f64(bytes as f64 / self.bytes_per_ms.max(1e-9))
    }
}

/// A named site hosting one or more domains.
#[derive(Clone, Debug)]
pub struct Site {
    /// Site name, e.g. `umd`, `milan`.
    pub name: Arc<str>,
    /// Geographic region label used in experiment tables ("USA", "Italy").
    pub region: Arc<str>,
    /// The mediator→site link.
    pub link: LinkModel,
    /// Scheduled outages, as closed virtual-time intervals.
    pub outages: Vec<(SimInstant, SimInstant)>,
}

impl Site {
    /// Builds a site.
    pub fn new(name: impl Into<Arc<str>>, region: impl Into<Arc<str>>, link: LinkModel) -> Self {
        Site {
            name: name.into(),
            region: region.into(),
            link,
            outages: Vec::new(),
        }
    }

    /// A zero-cost local site (the mediator's own machine).
    pub fn local() -> Self {
        Site::new(
            "local",
            "local",
            LinkModel {
                connect_ms: 0.0,
                rtt_ms: 0.0,
                ..LinkModel::default()
            },
        )
    }

    /// Adds a scheduled outage.
    pub fn with_outage(mut self, from: SimInstant, to: SimInstant) -> Self {
        self.outages.push((from, to));
        self
    }

    /// True if the site is down at virtual time `t`.
    pub fn is_down(&self, t: SimInstant) -> bool {
        self.outages.iter().any(|(a, b)| t >= *a && t <= *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::SimDuration;

    #[test]
    fn load_factor_oscillates_at_or_above_one() {
        let link = LinkModel {
            load_amplitude: 1.0,
            load_period_ms: 1_000.0,
            ..LinkModel::default()
        };
        let mut seen_high = false;
        for i in 0..20 {
            let t = SimInstant::EPOCH + SimDuration::from_millis(i * 100);
            let f = link.load_factor(t);
            assert!((1.0..=2.0 + 1e-9).contains(&f), "factor {f}");
            if f > 1.5 {
                seen_high = true;
            }
        }
        assert!(seen_high);
    }

    #[test]
    fn zero_amplitude_is_flat() {
        let link = LinkModel::default();
        assert_eq!(link.load_factor(SimInstant::EPOCH), 1.0);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let link = LinkModel {
            bytes_per_ms: 100.0,
            ..LinkModel::default()
        };
        assert_eq!(link.transfer(1_000).as_millis(), 10);
        assert_eq!(link.transfer(0), SimDuration::ZERO);
    }

    #[test]
    fn outages_cover_closed_intervals() {
        let t = |ms| SimInstant::EPOCH + SimDuration::from_millis(ms);
        let site = Site::new("s", "USA", LinkModel::default()).with_outage(t(100), t(200));
        assert!(!site.is_down(t(99)));
        assert!(site.is_down(t(100)));
        assert!(site.is_down(t(200)));
        assert!(!site.is_down(t(201)));
    }

    #[test]
    fn local_site_is_free() {
        let s = Site::local();
        assert_eq!(s.link.connect_ms, 0.0);
        assert_eq!(s.link.rtt_ms, 0.0);
    }
}
