//! Canned site profiles reproducing the paper's testbed.
//!
//! Parameters are calibrated so that the Figure 5 experiment lands in the
//! same regime the paper reports: a small AVIS query answered from a USA
//! site in ~1.5–2.5 simulated seconds and from the Italian site in tens of
//! seconds (the paper measured 2.6 s vs 49 s for "actors in The Rope").
//! 1996 transatlantic IP: multi-second connection setup, ~1 KB/s effective
//! throughput at peak, heavy congestion swings.

use crate::site::{LinkModel, Site};

/// University of Maryland — the mediator's home site (LAN).
pub fn maryland() -> Site {
    Site::new(
        "umd",
        "USA",
        LinkModel {
            connect_ms: 40.0,
            rtt_ms: 4.0,
            jitter_frac: 0.05,
            bytes_per_ms: 500.0,
            load_amplitude: 0.1,
            load_period_ms: 3_600_000.0,
            failure_rate: 0.0,
        },
    )
}

/// Cornell — a well-connected US site.
pub fn cornell() -> Site {
    Site::new(
        "cornell",
        "USA",
        LinkModel {
            connect_ms: 350.0,
            rtt_ms: 45.0,
            jitter_frac: 0.15,
            bytes_per_ms: 40.0,
            load_amplitude: 0.3,
            load_period_ms: 3_600_000.0,
            failure_rate: 0.0,
        },
    )
}

/// Bucknell — a smaller US site on a thinner pipe.
pub fn bucknell() -> Site {
    Site::new(
        "bucknell",
        "USA",
        LinkModel {
            connect_ms: 500.0,
            rtt_ms: 70.0,
            jitter_frac: 0.2,
            bytes_per_ms: 15.0,
            load_amplitude: 0.4,
            load_period_ms: 3_600_000.0,
            failure_rate: 0.0,
        },
    )
}

/// The Italian site — 1996 transatlantic conditions.
pub fn italy() -> Site {
    Site::new(
        "milan",
        "Italy",
        LinkModel {
            connect_ms: 9_000.0,
            rtt_ms: 900.0,
            jitter_frac: 0.35,
            bytes_per_ms: 1.2,
            load_amplitude: 1.5,
            load_period_ms: 3_600_000.0,
            failure_rate: 0.0,
        },
    )
}

/// An unreliable variant of the Italian site, for availability
/// experiments (temporary unavailability is a §1 motivation for caching).
pub fn italy_flaky(failure_rate: f64) -> Site {
    let mut s = italy();
    s.link.failure_rate = failure_rate;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::SimInstant;

    #[test]
    fn profiles_are_ordered_by_distance() {
        let md = maryland().link;
        let co = cornell().link;
        let it = italy().link;
        assert!(md.connect_ms < co.connect_ms);
        assert!(co.connect_ms < it.connect_ms);
        assert!(md.bytes_per_ms > co.bytes_per_ms);
        assert!(co.bytes_per_ms > it.bytes_per_ms);
    }

    #[test]
    fn italy_is_an_order_of_magnitude_slower() {
        // Base service time for a 3 KB result.
        let service = |link: &crate::site::LinkModel| {
            link.connect_ms + link.rtt_ms + 3_000.0 / link.bytes_per_ms
        };
        let usa = service(&cornell().link);
        let it = service(&italy().link);
        assert!(it > usa * 8.0, "italy {it} usa {usa}");
    }

    #[test]
    fn flaky_italy_sets_failure_rate() {
        assert_eq!(italy_flaky(0.3).link.failure_rate, 0.3);
        assert!(!italy().is_down(SimInstant::EPOCH));
    }
}
