//! The network: domain placement and remote call execution.

use crate::site::Site;
use hermes_common::{
    GroundCall, HermesError, Result, Rng64, SimDuration, SimInstant, Value,
};
use hermes_domains::{Domain, DomainRegistry};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The result of executing a call across the (simulated) network.
#[derive(Clone, Debug)]
pub struct RemoteOutcome {
    /// The answers.
    pub answers: Vec<Value>,
    /// Simulated time until the first answer arrived at the mediator.
    pub t_first: SimDuration,
    /// Simulated time until the full answer set arrived.
    pub t_all: SimDuration,
    /// Bytes received (answers on the wire).
    pub bytes: usize,
    /// The site that served the call.
    pub site: Arc<str>,
}

impl RemoteOutcome {
    /// Number of answers.
    pub fn cardinality(&self) -> usize {
        self.answers.len()
    }
}

/// Domains placed at sites, plus the shared deterministic jitter stream.
///
/// `execute` is the single entry point the mediator uses to reach the
/// outside world. Figure 5's "sites in USA" / "sites in Italy" variants are
/// two `Network`s placing the same domain behind different [`Site`]s.
pub struct Network {
    registry: DomainRegistry,
    placement: BTreeMap<Arc<str>, Arc<Site>>,
    rng: Mutex<Rng64>,
}

impl Network {
    /// An empty network with a seeded jitter stream.
    pub fn new(seed: u64) -> Self {
        Network {
            registry: DomainRegistry::new(),
            placement: BTreeMap::new(),
            rng: Mutex::new(Rng64::new(seed)),
        }
    }

    /// Places a domain at a site.
    pub fn place(&mut self, domain: Arc<dyn Domain>, site: Site) {
        let name: Arc<str> = Arc::from(domain.name());
        self.registry.register(domain);
        self.placement.insert(name, Arc::new(site));
    }

    /// Places a domain on the mediator's own machine (zero network cost).
    pub fn place_local(&mut self, domain: Arc<dyn Domain>) {
        self.place(domain, Site::local());
    }

    /// The registry of placed domains.
    pub fn registry(&self) -> &DomainRegistry {
        &self.registry
    }

    /// The site hosting `domain`.
    pub fn site_of(&self, domain: &str) -> Result<&Arc<Site>> {
        self.placement
            .get(domain)
            .ok_or_else(|| HermesError::UnknownDomain(domain.to_string()))
    }

    /// Executes a ground call at virtual time `now`.
    ///
    /// Fails with [`HermesError::Unavailable`] when the hosting site is in
    /// a scheduled outage or the link's failure rate fires — the situation
    /// in which only the answer cache can serve the query (§1, §4).
    pub fn execute(&self, call: &GroundCall, now: SimInstant) -> Result<RemoteOutcome> {
        let site = self.site_of(&call.domain)?.clone();
        if site.is_down(now) {
            return Err(HermesError::Unavailable {
                site: site.name.to_string(),
                reason: "scheduled outage".into(),
            });
        }
        let jitter = {
            let mut rng = self.rng.lock();
            if site.link.failure_rate > 0.0 && rng.chance(site.link.failure_rate) {
                return Err(HermesError::Unavailable {
                    site: site.name.to_string(),
                    reason: "connection failed".into(),
                });
            }
            if site.link.jitter_frac > 0.0 {
                // Lognormal-ish positive factor around 1.
                (1.0 + site.link.jitter_frac * rng.gaussian()).clamp(0.25, 4.0)
            } else {
                1.0
            }
        };

        let outcome = self.registry.execute(call)?;
        let bytes = outcome.answer_bytes();
        let load = site.link.load_factor(now);
        let lat = &site.link;

        let request_overhead = SimDuration::from_millis_f64(
            (lat.connect_ms + lat.rtt_ms) * load * jitter,
        ) + lat.transfer(call.request_bytes());

        // First answer: overhead + source's time-to-first + first tuple on
        // the wire (approximated by the mean answer size).
        let first_bytes = if outcome.answers.is_empty() {
            0
        } else {
            bytes / outcome.answers.len()
        };
        let t_first = request_overhead
            + outcome.compute.t_first
            + lat.transfer(first_bytes) * (load * jitter);
        let t_all = request_overhead
            + outcome.compute.t_all
            + lat.transfer(bytes) * (load * jitter);

        Ok(RemoteOutcome {
            answers: outcome.answers,
            t_first,
            t_all: t_all.max(t_first),
            bytes,
            site: site.name.clone(),
        })
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let placement: Vec<String> = self
            .placement
            .iter()
            .map(|(d, s)| format!("{d}@{}", s.name))
            .collect();
        f.debug_struct("Network").field("placement", &placement).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::site::LinkModel;
    use hermes_domains::video::gen::rope_store;

    fn call() -> GroundCall {
        GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("rope"), Value::Int(4), Value::Int(47)],
        )
    }

    #[test]
    fn local_placement_charges_only_compute() {
        let mut net = Network::new(1);
        net.place_local(Arc::new(rope_store()));
        let out = net.execute(&call(), SimInstant::EPOCH).unwrap();
        assert!(!out.answers.is_empty());
        // The video domain's own compute cost is a few ms; no network cost.
        assert!(out.t_all.as_millis_f64() < 50.0, "t_all {}", out.t_all);
    }

    #[test]
    fn remote_placement_adds_latency() {
        let mut local = Network::new(1);
        local.place_local(Arc::new(rope_store()));
        let mut remote = Network::new(1);
        remote.place(Arc::new(rope_store()), profiles::italy());
        let t_local = local.execute(&call(), SimInstant::EPOCH).unwrap().t_all;
        let t_remote = remote.execute(&call(), SimInstant::EPOCH).unwrap().t_all;
        assert!(t_remote > t_local * 5, "remote {t_remote} vs local {t_local}");
    }

    #[test]
    fn same_seed_same_timings() {
        let mk = || {
            let mut n = Network::new(9);
            n.place(Arc::new(rope_store()), profiles::cornell());
            n
        };
        let a = mk().execute(&call(), SimInstant::EPOCH).unwrap();
        let b = mk().execute(&call(), SimInstant::EPOCH).unwrap();
        assert_eq!(a.t_all, b.t_all);
        assert_eq!(a.answers, b.answers);
    }

    #[test]
    fn outage_returns_unavailable() {
        let site = profiles::cornell().with_outage(
            SimInstant::EPOCH,
            SimInstant::EPOCH + SimDuration::from_secs(60),
        );
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), site);
        let err = net.execute(&call(), SimInstant::EPOCH).unwrap_err();
        assert!(matches!(err, HermesError::Unavailable { .. }));
        // After the outage the call succeeds.
        let later = SimInstant::EPOCH + SimDuration::from_secs(61);
        assert!(net.execute(&call(), later).is_ok());
    }

    #[test]
    fn failure_rate_one_always_fails() {
        let site = Site::new(
            "flaky",
            "USA",
            LinkModel {
                failure_rate: 1.0,
                ..LinkModel::default()
            },
        );
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), site);
        assert!(matches!(
            net.execute(&call(), SimInstant::EPOCH),
            Err(HermesError::Unavailable { .. })
        ));
    }

    #[test]
    fn load_curve_slows_peak_hours() {
        let site = Site::new(
            "loaded",
            "USA",
            LinkModel {
                connect_ms: 100.0,
                rtt_ms: 100.0,
                load_amplitude: 1.0,
                load_period_ms: 1_000.0,
                ..LinkModel::default()
            },
        );
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), site);
        // Scan a period for min and max service times.
        let mut lo = SimDuration::from_secs(1_000_000);
        let mut hi = SimDuration::ZERO;
        for i in 0..10 {
            let t = SimInstant::EPOCH + SimDuration::from_millis(i * 100);
            let d = net.execute(&call(), t).unwrap().t_all;
            lo = if d < lo { d } else { lo };
            hi = hi.max(d);
        }
        assert!(hi.as_millis_f64() > lo.as_millis_f64() * 1.3);
    }

    #[test]
    fn unknown_domain_is_error() {
        let net = Network::new(1);
        assert!(matches!(
            net.execute(&call(), SimInstant::EPOCH),
            Err(HermesError::UnknownDomain(_))
        ));
    }

    #[test]
    fn larger_results_transfer_longer_on_thin_pipes() {
        // Same site, two calls with very different result sizes: the wide
        // frame sweep ships more bytes and pays proportionally.
        let mut net = Network::new(4);
        let mut site = profiles::italy();
        site.link.jitter_frac = 0.0; // isolate the transfer term
        net.place(Arc::new(rope_store()), site);
        let small = net
            .execute(
                &GroundCall::new("video", "video_size", vec![Value::str("rope")]),
                SimInstant::EPOCH,
            )
            .unwrap();
        let big = net
            .execute(
                &GroundCall::new(
                    "video",
                    "frames_to_objects",
                    vec![Value::str("rope"), Value::Int(0), Value::Int(900)],
                ),
                SimInstant::EPOCH,
            )
            .unwrap();
        assert!(big.bytes > small.bytes * 5);
        assert!(big.t_all > small.t_all);
        assert_eq!(big.cardinality(), big.answers.len());
    }

    #[test]
    fn site_of_reports_placement() {
        let mut net = Network::new(4);
        net.place(Arc::new(rope_store()), profiles::cornell());
        assert_eq!(net.site_of("video").unwrap().name.as_ref(), "cornell");
        assert!(net.site_of("nope").is_err());
        assert!(format!("{net:?}").contains("video@cornell"));
    }

    #[test]
    fn t_first_never_exceeds_t_all() {
        let mut net = Network::new(3);
        net.place(Arc::new(rope_store()), profiles::italy());
        for i in 0..20 {
            let t = SimInstant::EPOCH + SimDuration::from_millis(i * 137);
            let out = net.execute(&call(), t).unwrap();
            assert!(out.t_first <= out.t_all);
        }
    }
}
