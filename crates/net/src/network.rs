//! The network: domain placement and remote call execution.

use crate::fault::FaultPlan;
use crate::site::Site;
use hermes_common::sync::Mutex;
use hermes_common::{GroundCall, HermesError, Result, Rng64, SimDuration, SimInstant, Value};
use hermes_domains::{Domain, DomainRegistry};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The result of executing a call across the (simulated) network.
///
/// The answer set is `Arc`-backed: cloning an outcome — the executor's
/// prefetch map, the single-flight registry fanning one result out to K
/// coalesced queries — bumps a reference count instead of copying rows.
#[derive(Clone, Debug)]
pub struct RemoteOutcome {
    /// The answers (shared; clone is a reference bump).
    pub answers: Arc<[Value]>,
    /// Simulated time until the first answer arrived at the mediator.
    pub t_first: SimDuration,
    /// Simulated time until the full answer set arrived.
    pub t_all: SimDuration,
    /// Bytes received (answers on the wire).
    pub bytes: usize,
    /// The site that served the call.
    pub site: Arc<str>,
    /// True when an injected fault cut the answer set short: the answers
    /// present are genuine, but the set is incomplete and must not be
    /// cached as complete.
    pub truncated: bool,
}

impl RemoteOutcome {
    /// Number of answers.
    pub fn cardinality(&self) -> usize {
        self.answers.len()
    }
}

/// Domains placed at sites, plus the shared deterministic jitter stream.
///
/// `execute` is the single entry point the mediator uses to reach the
/// outside world. Figure 5's "sites in USA" / "sites in Italy" variants are
/// two `Network`s placing the same domain behind different [`Site`]s.
pub struct Network {
    registry: DomainRegistry,
    placement: BTreeMap<Arc<str>, Arc<Site>>,
    rng: Mutex<Rng64>,
    faults: Option<FaultPlan>,
    /// Peak concurrent in-flight calls observed per site. The parallel
    /// scheduler reports each dispatch schedule here; tests and benches
    /// query it to verify that overlap actually happened.
    inflight_peak: Mutex<BTreeMap<Arc<str>, usize>>,
    /// Live wall-clock in-flight counters per site. Unlike
    /// `inflight_peak` (a *schedule's* virtual-time claim, one query at a
    /// time), these count calls actually inside [`Network::execute_batched`]
    /// right now, so concurrent queries from many client threads are
    /// accounted correctly.
    live_in_flight: Mutex<BTreeMap<Arc<str>, Arc<SiteLoad>>>,
    /// Total calls that reached a source (the denominator for the
    /// single-flight "exactly one round trip" check).
    source_calls: AtomicU64,
}

/// Live in-flight accounting for one site (atomics — updated from many
/// client threads without taking the map lock per call boundary).
#[derive(Debug, Default)]
struct SiteLoad {
    current: AtomicUsize,
    peak: AtomicUsize,
}

/// RAII guard: one call in flight at a site until dropped (any exit path
/// of `execute_batched`, including faults and outages mid-attempt).
struct LoadGuard(Arc<SiteLoad>);

impl Drop for LoadGuard {
    fn drop(&mut self) {
        self.0.current.fetch_sub(1, Ordering::AcqRel);
    }
}

impl Network {
    /// An empty network with a seeded jitter stream.
    pub fn new(seed: u64) -> Self {
        Network {
            registry: DomainRegistry::new(),
            placement: BTreeMap::new(),
            rng: Mutex::new(Rng64::new(seed)),
            faults: None,
            inflight_peak: Mutex::new(BTreeMap::new()),
            live_in_flight: Mutex::new(BTreeMap::new()),
            source_calls: AtomicU64::new(0),
        }
    }

    /// Marks one call entering `site`, returning the guard that marks it
    /// leaving. Updates the site's live peak.
    fn enter_site(&self, site: &Arc<str>) -> LoadGuard {
        let load = {
            let mut map = self.live_in_flight.lock();
            map.entry(site.clone()).or_default().clone()
        };
        let concurrent = load.current.fetch_add(1, Ordering::AcqRel) + 1;
        load.peak.fetch_max(concurrent, Ordering::AcqRel);
        LoadGuard(load)
    }

    /// Total calls that reached a source over this network's lifetime.
    pub fn source_calls(&self) -> u64 {
        self.source_calls.load(Ordering::Relaxed)
    }

    /// Records that `concurrent` calls to `site` were in flight at the same
    /// simulated moment (the per-site high-water mark is kept).
    pub fn record_in_flight(&self, site: &str, concurrent: usize) {
        let mut peaks = self.inflight_peak.lock();
        let entry = peaks.entry(Arc::from(site)).or_insert(0);
        *entry = (*entry).max(concurrent);
    }

    /// The highest number of concurrent in-flight calls ever observed for
    /// `site` (0 when the site was never dispatched to in parallel): the
    /// max of scheduler-reported virtual-time peaks and the live
    /// wall-clock peak from concurrent client threads.
    pub fn peak_in_flight(&self, site: &str) -> usize {
        let reported = self.inflight_peak.lock().get(site).copied().unwrap_or(0);
        let live = self
            .live_in_flight
            .lock()
            .get(site)
            .map(|l| l.peak.load(Ordering::Acquire))
            .unwrap_or(0);
        reported.max(live)
    }

    /// Installs a fault-injection plan (chaos harness). The plan draws from
    /// its own seeded stream, so the network's organic jitter for calls the
    /// plan does not fault is unchanged.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Removes any installed fault plan.
    pub fn clear_fault_plan(&mut self) {
        self.faults = None;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Places a domain at a site.
    pub fn place(&mut self, domain: Arc<dyn Domain>, site: Site) {
        let name: Arc<str> = Arc::from(domain.name());
        self.registry.register(domain);
        self.placement.insert(name, Arc::new(site));
    }

    /// Places a domain on the mediator's own machine (zero network cost).
    pub fn place_local(&mut self, domain: Arc<dyn Domain>) {
        self.place(domain, Site::local());
    }

    /// The registry of placed domains.
    pub fn registry(&self) -> &DomainRegistry {
        &self.registry
    }

    /// The site hosting `domain`.
    pub fn site_of(&self, domain: &str) -> Result<&Arc<Site>> {
        self.placement
            .get(domain)
            .ok_or_else(|| HermesError::UnknownDomain(domain.to_string()))
    }

    /// Executes a ground call at virtual time `now`.
    ///
    /// Fails with [`HermesError::Unavailable`] when the hosting site is in
    /// a scheduled outage or the link's failure rate fires — the situation
    /// in which only the answer cache can serve the query (§1, §4).
    pub fn execute(&self, call: &GroundCall, now: SimInstant) -> Result<RemoteOutcome> {
        self.execute_batched(call, now, false)
    }

    /// Like [`Network::execute`], but `piggyback` marks the call as a
    /// non-first member of a `(site, function)` batch: its request rides in
    /// the batch leader's packet, so the connect + RTT request overhead is
    /// not paid again. Source compute and answer transfer are still the
    /// call's own.
    pub fn execute_batched(
        &self,
        call: &GroundCall,
        now: SimInstant,
        piggyback: bool,
    ) -> Result<RemoteOutcome> {
        let site = self.site_of(&call.domain)?.clone();
        if site.is_down(now) {
            return Err(HermesError::Unavailable {
                site: site.name.to_string(),
                reason: "scheduled outage".into(),
            });
        }
        let _in_flight = self.enter_site(&site.name);
        // Injected faults, drawn from the plan's own stream *before* the
        // network's jitter stream so untouched calls keep their timings.
        let mut latency_factor = 1.0;
        let mut bandwidth_divisor = 1.0;
        let mut truncation: Option<f64> = None;
        if let Some(plan) = &self.faults {
            if plan.flapping_down(&site.name, now) {
                return Err(HermesError::Unavailable {
                    site: site.name.to_string(),
                    reason: "site flapping (injected)".into(),
                });
            }
            if plan.draw_drop(&site.name) {
                return Err(HermesError::Unavailable {
                    site: site.name.to_string(),
                    reason: "transient drop (injected)".into(),
                });
            }
            latency_factor = plan.latency_factor(&site.name, now);
            bandwidth_divisor = plan.bandwidth_divisor(&site.name, now);
            truncation = plan.draw_truncation(&site.name);
        }
        let jitter = {
            let mut rng = self.rng.lock();
            if site.link.failure_rate > 0.0 && rng.chance(site.link.failure_rate) {
                return Err(HermesError::Unavailable {
                    site: site.name.to_string(),
                    reason: "connection failed".into(),
                });
            }
            if site.link.jitter_frac > 0.0 {
                // Lognormal-ish positive factor around 1.
                (1.0 + site.link.jitter_frac * rng.gaussian()).clamp(0.25, 4.0)
            } else {
                1.0
            }
        };

        let mut outcome = self.registry.execute(call)?;
        self.source_calls.fetch_add(1, Ordering::Relaxed);
        let truncated = match truncation {
            Some(keep_frac) if !outcome.answers.is_empty() => {
                // Keep a prefix (at least one answer): the source cut the
                // stream short mid-transfer.
                let keep = ((outcome.answers.len() as f64 * keep_frac).ceil() as usize)
                    .clamp(1, outcome.answers.len());
                let cut = keep < outcome.answers.len();
                outcome.answers.truncate(keep);
                cut
            }
            _ => false,
        };
        let bytes = outcome.answer_bytes();
        let load = site.link.load_factor(now);
        let lat = &site.link;
        let slow = load * jitter * latency_factor;

        let round_trip = if piggyback {
            SimDuration::ZERO
        } else {
            SimDuration::from_millis_f64((lat.connect_ms + lat.rtt_ms) * slow)
        };
        let request_overhead = round_trip + lat.transfer(call.request_bytes()) * bandwidth_divisor;

        // First answer: overhead + source's time-to-first + first tuple on
        // the wire (approximated by the mean answer size).
        let first_bytes = if outcome.answers.is_empty() {
            0
        } else {
            bytes / outcome.answers.len()
        };
        let t_first = request_overhead
            + outcome.compute.t_first
            + lat.transfer(first_bytes) * (load * jitter * bandwidth_divisor);
        let t_all = request_overhead
            + outcome.compute.t_all
            + lat.transfer(bytes) * (load * jitter * bandwidth_divisor);

        Ok(RemoteOutcome {
            answers: outcome.answers.into(),
            t_first,
            t_all: t_all.max(t_first),
            bytes,
            site: site.name.clone(),
            truncated,
        })
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let placement: Vec<String> = self
            .placement
            .iter()
            .map(|(d, s)| format!("{d}@{}", s.name))
            .collect();
        f.debug_struct("Network")
            .field("placement", &placement)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::site::LinkModel;
    use hermes_domains::video::gen::rope_store;

    fn call() -> GroundCall {
        GroundCall::new(
            "video",
            "frames_to_objects",
            vec![Value::str("rope"), Value::Int(4), Value::Int(47)],
        )
    }

    #[test]
    fn local_placement_charges_only_compute() {
        let mut net = Network::new(1);
        net.place_local(Arc::new(rope_store()));
        let out = net.execute(&call(), SimInstant::EPOCH).unwrap();
        assert!(!out.answers.is_empty());
        // The video domain's own compute cost is a few ms; no network cost.
        assert!(out.t_all.as_millis_f64() < 50.0, "t_all {}", out.t_all);
    }

    #[test]
    fn remote_placement_adds_latency() {
        let mut local = Network::new(1);
        local.place_local(Arc::new(rope_store()));
        let mut remote = Network::new(1);
        remote.place(Arc::new(rope_store()), profiles::italy());
        let t_local = local.execute(&call(), SimInstant::EPOCH).unwrap().t_all;
        let t_remote = remote.execute(&call(), SimInstant::EPOCH).unwrap().t_all;
        assert!(
            t_remote > t_local * 5,
            "remote {t_remote} vs local {t_local}"
        );
    }

    #[test]
    fn same_seed_same_timings() {
        let mk = || {
            let mut n = Network::new(9);
            n.place(Arc::new(rope_store()), profiles::cornell());
            n
        };
        let a = mk().execute(&call(), SimInstant::EPOCH).unwrap();
        let b = mk().execute(&call(), SimInstant::EPOCH).unwrap();
        assert_eq!(a.t_all, b.t_all);
        assert_eq!(a.answers, b.answers);
    }

    #[test]
    fn outage_returns_unavailable() {
        let site = profiles::cornell().with_outage(
            SimInstant::EPOCH,
            SimInstant::EPOCH + SimDuration::from_secs(60),
        );
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), site);
        let err = net.execute(&call(), SimInstant::EPOCH).unwrap_err();
        assert!(matches!(err, HermesError::Unavailable { .. }));
        // After the outage the call succeeds.
        let later = SimInstant::EPOCH + SimDuration::from_secs(61);
        assert!(net.execute(&call(), later).is_ok());
    }

    #[test]
    fn failure_rate_one_always_fails() {
        let site = Site::new(
            "flaky",
            "USA",
            LinkModel {
                failure_rate: 1.0,
                ..LinkModel::default()
            },
        );
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), site);
        assert!(matches!(
            net.execute(&call(), SimInstant::EPOCH),
            Err(HermesError::Unavailable { .. })
        ));
    }

    #[test]
    fn load_curve_slows_peak_hours() {
        let site = Site::new(
            "loaded",
            "USA",
            LinkModel {
                connect_ms: 100.0,
                rtt_ms: 100.0,
                load_amplitude: 1.0,
                load_period_ms: 1_000.0,
                ..LinkModel::default()
            },
        );
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), site);
        // Scan a period for min and max service times.
        let mut lo = SimDuration::from_secs(1_000_000);
        let mut hi = SimDuration::ZERO;
        for i in 0..10 {
            let t = SimInstant::EPOCH + SimDuration::from_millis(i * 100);
            let d = net.execute(&call(), t).unwrap().t_all;
            lo = if d < lo { d } else { lo };
            hi = hi.max(d);
        }
        assert!(hi.as_millis_f64() > lo.as_millis_f64() * 1.3);
    }

    #[test]
    fn unknown_domain_is_error() {
        let net = Network::new(1);
        assert!(matches!(
            net.execute(&call(), SimInstant::EPOCH),
            Err(HermesError::UnknownDomain(_))
        ));
    }

    #[test]
    fn larger_results_transfer_longer_on_thin_pipes() {
        // Same site, two calls with very different result sizes: the wide
        // frame sweep ships more bytes and pays proportionally.
        let mut net = Network::new(4);
        let mut site = profiles::italy();
        site.link.jitter_frac = 0.0; // isolate the transfer term
        net.place(Arc::new(rope_store()), site);
        let small = net
            .execute(
                &GroundCall::new("video", "video_size", vec![Value::str("rope")]),
                SimInstant::EPOCH,
            )
            .unwrap();
        let big = net
            .execute(
                &GroundCall::new(
                    "video",
                    "frames_to_objects",
                    vec![Value::str("rope"), Value::Int(0), Value::Int(900)],
                ),
                SimInstant::EPOCH,
            )
            .unwrap();
        assert!(big.bytes > small.bytes * 5);
        assert!(big.t_all > small.t_all);
        assert_eq!(big.cardinality(), big.answers.len());
    }

    #[test]
    fn site_of_reports_placement() {
        let mut net = Network::new(4);
        net.place(Arc::new(rope_store()), profiles::cornell());
        assert_eq!(net.site_of("video").unwrap().name.as_ref(), "cornell");
        assert!(net.site_of("nope").is_err());
        assert!(format!("{net:?}").contains("video@cornell"));
    }

    #[test]
    fn outage_endpoints_are_inclusive() {
        // Calls exactly at either end of a closed outage interval fail;
        // one microsecond outside either end succeeds.
        let from = SimInstant::EPOCH + SimDuration::from_millis(100);
        let to = SimInstant::EPOCH + SimDuration::from_millis(200);
        let mut net = Network::new(1);
        net.place(
            Arc::new(rope_store()),
            profiles::cornell().with_outage(from, to),
        );
        let us = SimDuration::from_micros(1);
        assert!(net.execute(&call(), from).is_err());
        assert!(net.execute(&call(), to).is_err());
        assert!(net
            .execute(
                &call(),
                SimInstant::EPOCH + (from.duration_since(SimInstant::EPOCH) - us)
            )
            .is_ok());
        assert!(net.execute(&call(), to + us).is_ok());
    }

    #[test]
    fn injected_drop_fails_with_unavailable() {
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), profiles::cornell());
        net.set_fault_plan(crate::FaultPlan::new(5).drop_rate("cornell", 1.0));
        match net.execute(&call(), SimInstant::EPOCH) {
            Err(HermesError::Unavailable { site, reason }) => {
                assert_eq!(site, "cornell");
                assert!(reason.contains("injected"), "{reason}");
            }
            other => panic!("expected injected drop, got {other:?}"),
        }
    }

    #[test]
    fn flapping_site_alternates_up_and_down() {
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), profiles::cornell());
        net.set_fault_plan(crate::FaultPlan::new(5).flapping(
            "cornell",
            SimDuration::from_millis(1_000),
            SimDuration::from_millis(400),
            SimDuration::ZERO,
        ));
        let at = |ms| SimInstant::EPOCH + SimDuration::from_millis(ms);
        assert!(net.execute(&call(), at(0)).is_err());
        assert!(net.execute(&call(), at(399)).is_err());
        assert!(net.execute(&call(), at(400)).is_ok());
        assert!(net.execute(&call(), at(1_050)).is_err());
        assert!(net.execute(&call(), at(1_500)).is_ok());
    }

    #[test]
    fn latency_spike_and_degraded_bandwidth_slow_the_window() {
        let mk = |plan: Option<crate::FaultPlan>| {
            let mut site = profiles::italy();
            site.link.jitter_frac = 0.0;
            let mut net = Network::new(2);
            net.place(Arc::new(rope_store()), site);
            if let Some(p) = plan {
                net.set_fault_plan(p);
            }
            net
        };
        let inside = SimInstant::EPOCH + SimDuration::from_millis(500);
        let outside = SimInstant::EPOCH + SimDuration::from_secs(100);
        let healthy = mk(None);
        let spiked = mk(Some(
            crate::FaultPlan::new(9)
                .latency_spike(
                    "milan",
                    SimInstant::EPOCH,
                    SimInstant::EPOCH + SimDuration::from_secs(1),
                    6.0,
                )
                .degrade_bandwidth(
                    "milan",
                    SimInstant::EPOCH,
                    SimInstant::EPOCH + SimDuration::from_secs(1),
                    10.0,
                ),
        ));
        let t_healthy = healthy.execute(&call(), inside).unwrap().t_all;
        let t_spiked = spiked.execute(&call(), inside).unwrap().t_all;
        assert!(
            t_spiked > t_healthy * 2,
            "spiked {t_spiked} vs healthy {t_healthy}"
        );
        // Outside the window the plan is inert.
        let h = healthy.execute(&call(), outside).unwrap().t_all;
        let s = spiked.execute(&call(), outside).unwrap().t_all;
        assert_eq!(h, s);
    }

    #[test]
    fn truncation_shortens_answers_and_flags_outcome() {
        let mut net = Network::new(1);
        net.place(Arc::new(rope_store()), profiles::cornell());
        let full = net.execute(&call(), SimInstant::EPOCH).unwrap();
        assert!(!full.truncated);
        net.set_fault_plan(crate::FaultPlan::new(5).truncation("cornell", 1.0, 0.5));
        let cut = net.execute(&call(), SimInstant::EPOCH).unwrap();
        assert!(cut.truncated);
        assert!(!cut.answers.is_empty());
        assert!(cut.answers.len() < full.answers.len());
        assert_eq!(cut.answers[..], full.answers[..cut.answers.len()]);
        assert!(cut.bytes < full.bytes);
    }

    #[test]
    fn fault_plan_replays_bit_identically() {
        let mk = || {
            let mut net = Network::new(11);
            net.place(Arc::new(rope_store()), profiles::cornell());
            net.set_fault_plan(
                crate::FaultPlan::new(23)
                    .drop_rate("cornell", 0.4)
                    .truncation("cornell", 0.4, 0.3),
            );
            net
        };
        let a = mk();
        let b = mk();
        for i in 0..40 {
            let t = SimInstant::EPOCH + SimDuration::from_millis(i * 97);
            match (a.execute(&call(), t), b.execute(&call(), t)) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.answers, y.answers);
                    assert_eq!(x.t_all, y.t_all);
                    assert_eq!(x.truncated, y.truncated);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                (x, y) => panic!("runs diverged: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn t_first_never_exceeds_t_all() {
        let mut net = Network::new(3);
        net.place(Arc::new(rope_store()), profiles::italy());
        for i in 0..20 {
            let t = SimInstant::EPOCH + SimDuration::from_millis(i * 137);
            let out = net.execute(&call(), t).unwrap();
            assert!(out.t_first <= out.t_all);
        }
    }
}
