//! # hermes-net
//!
//! The simulated wide-area network under the mediator's distributed
//! experiments.
//!
//! The paper measured real Internet paths between Maryland, Cornell,
//! Bucknell, and a site in Italy in 1996; we reproduce the *shape* of that
//! environment on a virtual clock (see DESIGN.md §2): each [`Site`] has a
//! connection overhead, round-trip latency with jitter, bandwidth, a
//! time-of-day load curve, and optional outages. A [`Network`] places
//! domains at sites and executes ground calls, composing the domain's
//! compute cost with the network cost into a [`RemoteOutcome`] whose
//! simulated `t_first` / `t_all` are what the executor integrates on its
//! clock — and what DCSM records in its statistics cache.
//!
//! ```
//! use hermes_net::{Network, profiles};
//! use hermes_domains::video::gen::rope_store;
//! use hermes_common::{GroundCall, SimInstant, Value};
//! use std::sync::Arc;
//!
//! let mut net = Network::new(7);
//! net.place(Arc::new(rope_store()), profiles::italy());
//! let call = GroundCall::new("video", "video_size", vec![Value::str("rope")]);
//! let out = net.execute(&call, SimInstant::EPOCH).unwrap();
//! assert!(out.t_all.as_millis() > 500); // transatlantic 1996 is slow
//! ```

//! For chaos testing, a seeded [`FaultPlan`] can be installed on the
//! network to inject flapping sites, transient call drops, latency/
//! bandwidth windows, and truncated answer sets — deterministically, so a
//! chaos run replays bit-identically (see DESIGN.md "Resilience").

pub mod fault;
pub mod network;
pub mod profiles;
pub mod site;

pub use fault::{FaultPlan, Flapping, SiteFaults, Window};
pub use network::{Network, RemoteOutcome};
pub use site::{LinkModel, Site};
