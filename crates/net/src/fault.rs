//! Deterministic fault injection — the chaos half of the resilience layer.
//!
//! A [`FaultPlan`] describes *injected* failures on top of a network's
//! organic behavior (scheduled outages, link failure rates, jitter): sites
//! that flap up and down on a square wave, links that transiently drop
//! calls, windows of spiked latency or degraded bandwidth, and answer sets
//! that arrive truncated. The plan draws from its **own** seeded
//! [`Rng64`] stream, separate from the network's jitter stream, so
//! installing or tweaking a plan never perturbs the timings of calls the
//! plan does not touch — and the same seed replays the same faults
//! bit-identically, which is what makes chaos runs assertable in tests.

use hermes_common::sync::Mutex;
use hermes_common::{Rng64, SimDuration, SimInstant};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A site that alternates up/down on a deterministic square wave.
#[derive(Clone, Copy, Debug)]
pub struct Flapping {
    /// Full period of the wave.
    pub period: SimDuration,
    /// How long the site is down at the start of each period.
    pub down_for: SimDuration,
    /// Offset of the wave relative to the epoch.
    pub phase: SimDuration,
}

impl Flapping {
    /// True when the wave has the site down at `t`.
    pub fn is_down(&self, t: SimInstant) -> bool {
        let period = self.period.as_micros().max(1);
        let pos = (t.as_micros() + self.phase.as_micros()) % period;
        pos < self.down_for.as_micros()
    }
}

/// A closed virtual-time window in which a multiplicative factor applies.
#[derive(Clone, Copy, Debug)]
pub struct Window {
    /// Window start (inclusive).
    pub from: SimInstant,
    /// Window end (inclusive).
    pub to: SimInstant,
    /// The factor (latency multiplier, or bandwidth divisor).
    pub factor: f64,
}

impl Window {
    fn covers(&self, t: SimInstant) -> bool {
        t >= self.from && t <= self.to
    }
}

/// Injected faults for one site.
#[derive(Clone, Debug, Default)]
pub struct SiteFaults {
    /// Square-wave up/down schedule.
    pub flapping: Option<Flapping>,
    /// Probability that any single call is dropped (transient).
    pub drop_rate: f64,
    /// Probability that a successful call's answer set arrives truncated.
    pub truncate_rate: f64,
    /// Fraction of answers kept when truncation fires.
    pub truncate_keep_frac: f64,
    /// Windows multiplying connect/RTT latency.
    pub latency_spikes: Vec<Window>,
    /// Windows dividing usable bandwidth.
    pub bandwidth_degradations: Vec<Window>,
}

/// A seeded, per-site fault schedule installed on a
/// [`Network`](crate::Network).
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    sites: BTreeMap<Arc<str>, SiteFaults>,
    rng: Mutex<Rng64>,
}

impl FaultPlan {
    /// An empty plan drawing from its own stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            sites: BTreeMap::new(),
            rng: Mutex::new(Rng64::new(seed)),
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn entry(&mut self, site: &str) -> &mut SiteFaults {
        self.sites.entry(Arc::from(site)).or_default()
    }

    /// Site `site` flaps: down for `down_for` at the start of every
    /// `period`, offset by `phase`.
    pub fn flapping(
        mut self,
        site: &str,
        period: SimDuration,
        down_for: SimDuration,
        phase: SimDuration,
    ) -> Self {
        self.entry(site).flapping = Some(Flapping {
            period,
            down_for,
            phase,
        });
        self
    }

    /// Calls to `site` are transiently dropped with probability `p`.
    pub fn drop_rate(mut self, site: &str, p: f64) -> Self {
        self.entry(site).drop_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Answer sets from `site` arrive truncated with probability `p`,
    /// keeping `keep_frac` of the answers.
    pub fn truncation(mut self, site: &str, p: f64, keep_frac: f64) -> Self {
        let faults = self.entry(site);
        faults.truncate_rate = p.clamp(0.0, 1.0);
        faults.truncate_keep_frac = keep_frac.clamp(0.0, 1.0);
        self
    }

    /// Latency to `site` is multiplied by `factor` inside `[from, to]`.
    pub fn latency_spike(
        mut self,
        site: &str,
        from: SimInstant,
        to: SimInstant,
        factor: f64,
    ) -> Self {
        self.entry(site)
            .latency_spikes
            .push(Window { from, to, factor });
        self
    }

    /// Bandwidth to `site` is divided by `factor` inside `[from, to]`.
    pub fn degrade_bandwidth(
        mut self,
        site: &str,
        from: SimInstant,
        to: SimInstant,
        factor: f64,
    ) -> Self {
        self.entry(site)
            .bandwidth_degradations
            .push(Window { from, to, factor });
        self
    }

    fn faults(&self, site: &str) -> Option<&SiteFaults> {
        self.sites.get(site)
    }

    /// True when the flapping schedule has `site` down at `now`.
    pub fn flapping_down(&self, site: &str, now: SimInstant) -> bool {
        self.faults(site)
            .and_then(|f| f.flapping)
            .is_some_and(|f| f.is_down(now))
    }

    /// Draws whether this call to `site` is transiently dropped.
    pub fn draw_drop(&self, site: &str) -> bool {
        let p = match self.faults(site) {
            Some(f) if f.drop_rate > 0.0 => f.drop_rate,
            _ => return false,
        };
        self.rng.lock().chance(p)
    }

    /// The latency multiplier for `site` at `now` (product of covering
    /// spike windows; 1.0 outside all windows).
    pub fn latency_factor(&self, site: &str, now: SimInstant) -> f64 {
        self.faults(site)
            .map(|f| {
                f.latency_spikes
                    .iter()
                    .filter(|w| w.covers(now))
                    .map(|w| w.factor.max(0.0))
                    .product()
            })
            .unwrap_or(1.0)
    }

    /// The bandwidth divisor for `site` at `now` (≥ 1 when degraded).
    pub fn bandwidth_divisor(&self, site: &str, now: SimInstant) -> f64 {
        self.faults(site)
            .map(|f| {
                f.bandwidth_degradations
                    .iter()
                    .filter(|w| w.covers(now))
                    .map(|w| w.factor.max(1.0))
                    .product()
            })
            .unwrap_or(1.0)
    }

    /// Draws whether this answer set from `site` is truncated; returns the
    /// fraction of answers to keep when it is.
    pub fn draw_truncation(&self, site: &str) -> Option<f64> {
        let (p, keep) = match self.faults(site) {
            Some(f) if f.truncate_rate > 0.0 => (f.truncate_rate, f.truncate_keep_frac),
            _ => return None,
        };
        if self.rng.lock().chance(p) {
            Some(keep)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimInstant {
        SimInstant::EPOCH + SimDuration::from_millis(ms)
    }

    #[test]
    fn flapping_is_a_square_wave() {
        let f = Flapping {
            period: SimDuration::from_millis(100),
            down_for: SimDuration::from_millis(30),
            phase: SimDuration::ZERO,
        };
        assert!(f.is_down(t(0)));
        assert!(f.is_down(t(29)));
        assert!(!f.is_down(t(30)));
        assert!(!f.is_down(t(99)));
        assert!(f.is_down(t(100)));
        assert!(f.is_down(t(129)));
        assert!(!f.is_down(t(130)));
    }

    #[test]
    fn flapping_phase_shifts_the_wave() {
        let f = Flapping {
            period: SimDuration::from_millis(100),
            down_for: SimDuration::from_millis(30),
            phase: SimDuration::from_millis(90),
        };
        // phase 90 puts t=10..=39 inside the down window.
        assert!(!f.is_down(t(9)));
        assert!(f.is_down(t(10)));
        assert!(f.is_down(t(39)));
        assert!(!f.is_down(t(40)));
    }

    #[test]
    fn windows_cover_closed_intervals_and_compose() {
        let plan = FaultPlan::new(1)
            .latency_spike("s", t(100), t(200), 4.0)
            .latency_spike("s", t(150), t(250), 2.0);
        assert_eq!(plan.latency_factor("s", t(99)), 1.0);
        assert_eq!(plan.latency_factor("s", t(100)), 4.0);
        assert_eq!(plan.latency_factor("s", t(150)), 8.0); // both windows
        assert_eq!(plan.latency_factor("s", t(201)), 2.0);
        assert_eq!(plan.latency_factor("s", t(251)), 1.0);
        assert_eq!(plan.latency_factor("other", t(150)), 1.0);
    }

    #[test]
    fn bandwidth_divisor_never_amplifies() {
        let plan = FaultPlan::new(1).degrade_bandwidth("s", t(0), t(10), 0.5);
        // A degradation factor below 1 would *increase* bandwidth; clamp.
        assert_eq!(plan.bandwidth_divisor("s", t(5)), 1.0);
    }

    #[test]
    fn draws_replay_bit_identically_for_the_same_seed() {
        let mk = || {
            FaultPlan::new(77)
                .drop_rate("s", 0.5)
                .truncation("s", 0.5, 0.25)
        };
        let a = mk();
        let b = mk();
        for _ in 0..200 {
            assert_eq!(a.draw_drop("s"), b.draw_drop("s"));
            assert_eq!(a.draw_truncation("s"), b.draw_truncation("s"));
        }
    }

    #[test]
    fn unconfigured_site_never_faults() {
        let plan = FaultPlan::new(3).drop_rate("s", 1.0);
        assert!(!plan.draw_drop("other"));
        assert!(plan.draw_truncation("other").is_none());
        assert!(!plan.flapping_down("other", t(0)));
    }
}
