//! Lexer for the rule language.
//!
//! Tokenization is mostly conventional; the one subtlety is the period,
//! which serves three roles: decimal point (`142.5`), attribute selector
//! (`Ans.1`, `Tuple.loc`), and clause terminator (`… q(B, C).`). The lexer
//! resolves this locally: a period tightly surrounded by identifier/digit
//! characters *and* immediately following an identifier-like token is a path
//! dot; inside a numeric literal a `digit.digit` sequence is a decimal point
//! unless the number itself is a path component; everything else terminates
//! a clause.

use hermes_common::{HermesError, Result};
use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Lowercase-initial identifier (constant symbol, domain, predicate...).
    Ident(String),
    /// Uppercase- or `$`-initial identifier (variable).
    Var(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `&`
    Amp,
    /// `:`
    Colon,
    /// `:-`
    Turnstile,
    /// `?-`
    QueryMark,
    /// `=>`
    Implies,
    /// Clause-terminating `.`
    Period,
    /// Attribute-path `.`
    PathDot,
    /// `=` or `==`
    OpEq,
    /// `!=`
    OpNe,
    /// `<`
    OpLt,
    /// `<=`
    OpLe,
    /// `>`
    OpGt,
    /// `>=`
    OpGe,
}

impl Tok {
    /// True for the comparison-operator tokens.
    pub fn is_relop(&self) -> bool {
        matches!(
            self,
            Tok::OpEq | Tok::OpNe | Tok::OpLt | Tok::OpLe | Tok::OpGt | Tok::OpGe
        )
    }
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Var(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Float(x) => write!(f, "{x}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::Comma => write!(f, ","),
            Tok::Amp => write!(f, "&"),
            Tok::Colon => write!(f, ":"),
            Tok::Turnstile => write!(f, ":-"),
            Tok::QueryMark => write!(f, "?-"),
            Tok::Implies => write!(f, "=>"),
            Tok::Period => write!(f, "."),
            Tok::PathDot => write!(f, "."),
            Tok::OpEq => write!(f, "="),
            Tok::OpNe => write!(f, "!="),
            Tok::OpLt => write!(f, "<"),
            Tok::OpLe => write!(f, "<="),
            Tok::OpGt => write!(f, ">"),
            Tok::OpGe => write!(f, ">="),
        }
    }
}

/// A token with its source position (1-based line and column).
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenizes input text. `%` starts a comment running to end of line.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out: Vec<Spanned> = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    let err = |line: usize, col: usize, msg: String| HermesError::Parse { line, col, msg };

    // True if the previous emitted token can end an attribute-path base:
    // a variable, identifier, or a path-component integer.
    fn prev_pathable(out: &[Spanned]) -> bool {
        matches!(
            out.last().map(|s| &s.tok),
            Some(Tok::Var(_)) | Some(Tok::Ident(_)) | Some(Tok::Int(_))
        )
    }
    // True if the previous token was a PathDot (so a following number is a
    // path component, never a float).
    fn prev_path_dot(out: &[Spanned]) -> bool {
        matches!(out.last().map(|s| &s.tok), Some(Tok::PathDot))
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);
        let push = |tok: Tok, out: &mut Vec<Spanned>| {
            out.push(Spanned {
                tok,
                line: tline,
                col: tcol,
            });
        };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                col += 1;
                i += 1;
            }
            '%' => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                push(Tok::LParen, &mut out);
                i += 1;
                col += 1;
            }
            ')' => {
                push(Tok::RParen, &mut out);
                i += 1;
                col += 1;
            }
            ',' => {
                push(Tok::Comma, &mut out);
                i += 1;
                col += 1;
            }
            '&' => {
                push(Tok::Amp, &mut out);
                i += 1;
                col += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'-') {
                    push(Tok::Turnstile, &mut out);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::Colon, &mut out);
                    i += 1;
                    col += 1;
                }
            }
            '?' => {
                if chars.get(i + 1) == Some(&'-') {
                    push(Tok::QueryMark, &mut out);
                    i += 2;
                    col += 2;
                } else {
                    return Err(err(line, col, "stray `?`".into()));
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'>') {
                    push(Tok::Implies, &mut out);
                    i += 2;
                    col += 2;
                } else if chars.get(i + 1) == Some(&'=') {
                    push(Tok::OpEq, &mut out);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::OpEq, &mut out);
                    i += 1;
                    col += 1;
                }
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    push(Tok::OpNe, &mut out);
                    i += 2;
                    col += 2;
                } else {
                    return Err(err(line, col, "stray `!`".into()));
                }
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    push(Tok::OpLe, &mut out);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::OpLt, &mut out);
                    i += 1;
                    col += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    push(Tok::OpGe, &mut out);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::OpGt, &mut out);
                    i += 1;
                    col += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                let mut closed = false;
                while j < chars.len() {
                    match chars[j] {
                        '\\' if chars.get(j + 1) == Some(&'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        '\'' => {
                            closed = true;
                            j += 1;
                            break;
                        }
                        ch => {
                            s.push(ch);
                            j += 1;
                        }
                    }
                }
                if !closed {
                    return Err(err(line, col, "unterminated string literal".into()));
                }
                let consumed = j - i;
                push(Tok::Str(s), &mut out);
                i = j;
                col += consumed;
            }
            '.' => {
                let before_ok = prev_pathable(&out);
                let after_ok = chars
                    .get(i + 1)
                    .is_some_and(|ch| ch.is_alphanumeric() || *ch == '_');
                if before_ok && after_ok {
                    push(Tok::PathDot, &mut out);
                } else {
                    push(Tok::Period, &mut out);
                }
                i += 1;
                col += 1;
            }
            c if c.is_ascii_digit()
                || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                let mut j = i;
                if chars[j] == '-' {
                    j += 1;
                }
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_float = false;
                // A `digit.digit` continuation is a decimal point — unless we
                // are lexing a path component (previous token was a PathDot),
                // in which case the dot belongs to the path.
                if !prev_path_dot(&out)
                    && chars.get(j) == Some(&'.')
                    && chars.get(j + 1).is_some_and(|d| d.is_ascii_digit())
                {
                    is_float = true;
                    j += 1;
                    while j < chars.len() && chars[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text: String = chars[start..j].iter().collect();
                let consumed = j - i;
                if is_float {
                    let v = text
                        .parse::<f64>()
                        .map_err(|e| err(line, col, format!("bad float `{text}`: {e}")))?;
                    push(Tok::Float(v), &mut out);
                } else {
                    let v = text
                        .parse::<i64>()
                        .map_err(|e| err(line, col, format!("bad integer `{text}`: {e}")))?;
                    push(Tok::Int(v), &mut out);
                }
                i = j;
                col += consumed;
            }
            c if c.is_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let consumed = j - i;
                let is_var = c == '$' || c.is_uppercase();
                if is_var {
                    let name = text.strip_prefix('$').unwrap_or(&text).to_string();
                    if name.is_empty() {
                        return Err(err(line, col, "`$` must be followed by a name".into()));
                    }
                    push(Tok::Var(name), &mut out);
                } else {
                    push(Tok::Ident(text), &mut out);
                }
                i = j;
                col += consumed;
            }
            other => {
                return Err(err(line, col, format!("unexpected character `{other}`")));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Tok> {
        lex(s).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn lex_simple_rule() {
        let t = toks("p(A, b) :- q(A).");
        assert_eq!(
            t,
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Var("A".into()),
                Tok::Comma,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::Turnstile,
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Var("A".into()),
                Tok::RParen,
                Tok::Period,
            ]
        );
    }

    #[test]
    fn lex_path_dots_vs_terminator() {
        let t = toks("=(Ans.1, A).");
        assert_eq!(
            t,
            vec![
                Tok::OpEq,
                Tok::LParen,
                Tok::Var("Ans".into()),
                Tok::PathDot,
                Tok::Int(1),
                Tok::Comma,
                Tok::Var("A".into()),
                Tok::RParen,
                Tok::Period,
            ]
        );
    }

    #[test]
    fn lex_multi_step_path() {
        let t = toks("X.1.name");
        assert_eq!(
            t,
            vec![
                Tok::Var("X".into()),
                Tok::PathDot,
                Tok::Int(1),
                Tok::PathDot,
                Tok::Ident("name".into()),
            ]
        );
    }

    #[test]
    fn lex_float_vs_path_component() {
        assert_eq!(toks("f(1.5)")[2], Tok::Float(1.5));
        // After a path dot, 1.2 is two path components, not a float.
        let t = toks("X.1.2");
        assert_eq!(
            t,
            vec![
                Tok::Var("X".into()),
                Tok::PathDot,
                Tok::Int(1),
                Tok::PathDot,
                Tok::Int(2),
            ]
        );
    }

    #[test]
    fn lex_negative_numbers() {
        assert_eq!(toks("f(-3)")[2], Tok::Int(-3));
        assert_eq!(toks("f(-3.5)")[2], Tok::Float(-3.5));
    }

    #[test]
    fn lex_strings_with_escapes() {
        assert_eq!(toks(r"'it\'s'"), vec![Tok::Str("it's".into())]);
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            toks("= == != < <= > >= => :- ?-"),
            vec![
                Tok::OpEq,
                Tok::OpEq,
                Tok::OpNe,
                Tok::OpLt,
                Tok::OpLe,
                Tok::OpGt,
                Tok::OpGe,
                Tok::Implies,
                Tok::Turnstile,
                Tok::QueryMark,
            ]
        );
    }

    #[test]
    fn lex_dollar_variables() {
        assert_eq!(toks("$ans"), vec![Tok::Var("ans".into())]);
        assert_eq!(toks("Ans"), vec![Tok::Var("Ans".into())]);
        assert!(lex("$ ").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("p(a). % a comment\nq(b)."),
            vec![
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Ident("a".into()),
                Tok::RParen,
                Tok::Period,
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Ident("b".into()),
                Tok::RParen,
                Tok::Period,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let s = lex("p(A).\nq(B).").unwrap();
        let q = s.iter().find(|t| t.tok == Tok::Ident("q".into())).unwrap();
        assert_eq!((q.line, q.col), (2, 1));
    }

    #[test]
    fn unexpected_char_reports_position() {
        match lex("p(a) @") {
            Err(HermesError::Parse { line, col, .. }) => {
                assert_eq!((line, col), (1, 6));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }
}
