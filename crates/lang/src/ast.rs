//! Abstract syntax of mediator programs, queries, and invariants.

use hermes_common::{AttrPath, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A term: a variable or a ground constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A logic variable (`X`, `Ans`, `$tuple`).
    Var(Arc<str>),
    /// A ground value.
    Const(Value),
}

impl Term {
    /// Convenience constructor for variables.
    pub fn var(name: impl Into<Arc<str>>) -> Self {
        Term::Var(name.into())
    }

    /// Convenience constructor for constants.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&Arc<str>> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if ground.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Const(v) => Some(v),
            Term::Var(_) => None,
        }
    }

    /// True for [`Term::Var`].
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{}", c.to_literal()),
        }
    }
}

/// A term with an optional attribute-selection suffix, used as a comparison
/// operand: `Ans.1`, `Tuple.loc`, `P.name`, a bare variable, or a constant.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PathTerm {
    /// The base variable or constant.
    pub base: Term,
    /// Attribute selectors applied to the base (empty for bare terms).
    pub path: AttrPath,
}

impl PathTerm {
    /// A bare term with no path.
    pub fn bare(base: Term) -> Self {
        PathTerm {
            base,
            path: AttrPath::empty(),
        }
    }

    /// A variable with a dotted path suffix.
    pub fn with_path(base: Term, path: AttrPath) -> Self {
        PathTerm { base, path }
    }

    /// The base variable name, if any.
    pub fn var_name(&self) -> Option<&Arc<str>> {
        self.base.as_var()
    }
}

impl fmt::Display for PathTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.base, self.path)
    }
}

/// A comparison operator. `=` in rule text and `==` are the same operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Relop {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl Relop {
    /// Evaluates the operator on two ground values using the total order of
    /// [`Value`].
    pub fn eval(self, lhs: &Value, rhs: &Value) -> bool {
        let ord = lhs.cmp(rhs);
        match self {
            Relop::Eq => ord.is_eq(),
            Relop::Ne => ord.is_ne(),
            Relop::Lt => ord.is_lt(),
            Relop::Le => ord.is_le(),
            Relop::Gt => ord.is_gt(),
            Relop::Ge => ord.is_ge(),
        }
    }

    /// The operator with its operands swapped (`<` becomes `>`).
    pub fn flipped(self) -> Relop {
        match self {
            Relop::Eq => Relop::Eq,
            Relop::Ne => Relop::Ne,
            Relop::Lt => Relop::Gt,
            Relop::Le => Relop::Ge,
            Relop::Gt => Relop::Lt,
            Relop::Ge => Relop::Le,
        }
    }

    /// Surface syntax of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            Relop::Eq => "=",
            Relop::Ne => "!=",
            Relop::Lt => "<",
            Relop::Le => "<=",
            Relop::Gt => ">",
            Relop::Ge => ">=",
        }
    }
}

impl fmt::Display for Relop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A comparison condition `relop(V1, V2)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Condition {
    /// The operator.
    pub op: Relop,
    /// Left operand.
    pub lhs: PathTerm,
    /// Right operand.
    pub rhs: PathTerm,
}

impl Condition {
    /// Builds a condition.
    pub fn new(op: Relop, lhs: PathTerm, rhs: PathTerm) -> Self {
        Condition { op, lhs, rhs }
    }

    /// Variables mentioned by either operand.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        let mut s = BTreeSet::new();
        if let Some(v) = self.lhs.var_name() {
            s.insert(v.clone());
        }
        if let Some(v) = self.rhs.var_name() {
            s.insert(v.clone());
        }
        s
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}, {})", self.op, self.lhs, self.rhs)
    }
}

/// A (possibly non-ground) domain call `domain:function(t1, …, tN)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CallTemplate {
    /// The external domain name.
    pub domain: Arc<str>,
    /// The function exported by the domain.
    pub function: Arc<str>,
    /// Argument terms (variables or constants).
    pub args: Vec<Term>,
}

impl CallTemplate {
    /// Builds a template.
    pub fn new(
        domain: impl Into<Arc<str>>,
        function: impl Into<Arc<str>>,
        args: Vec<Term>,
    ) -> Self {
        CallTemplate {
            domain: domain.into(),
            function: function.into(),
            args,
        }
    }

    /// Variables appearing among the arguments.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        self.args
            .iter()
            .filter_map(|t| t.as_var().cloned())
            .collect()
    }

    /// True if every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|t| !t.is_var())
    }
}

impl fmt::Display for CallTemplate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}(", self.domain, self.function)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// An ordinary predicate atom `p(t1, …, tn)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PredAtom {
    /// Predicate name.
    pub name: Arc<str>,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl PredAtom {
    /// Builds a predicate atom.
    pub fn new(name: impl Into<Arc<str>>, args: Vec<Term>) -> Self {
        PredAtom {
            name: name.into(),
            args,
        }
    }

    /// Variables appearing among the arguments.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        self.args
            .iter()
            .filter_map(|t| t.as_var().cloned())
            .collect()
    }

    /// `name/arity`, the predicate's identity.
    pub fn key(&self) -> (Arc<str>, usize) {
        (self.name.clone(), self.args.len())
    }
}

impl fmt::Display for PredAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// One conjunct of a rule body or query.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum BodyAtom {
    /// An IDB predicate atom.
    Pred(PredAtom),
    /// A domain-call membership atom `in(X, d:f(args))`. `target` is usually
    /// a variable (instantiated to each answer); a ground target turns the
    /// atom into a membership test that can prune the rest of the query.
    In {
        /// The answer variable (or ground membership probe).
        target: Term,
        /// The call.
        call: CallTemplate,
    },
    /// A comparison condition.
    Cond(Condition),
}

impl BodyAtom {
    /// Variables this atom can *bind* when evaluated left-to-right: predicate
    /// arguments and the `in` target. Conditions never bind (the rewriter
    /// turns binding equalities into substitutions beforehand).
    pub fn binds(&self) -> BTreeSet<Arc<str>> {
        match self {
            BodyAtom::Pred(p) => p.variables(),
            BodyAtom::In { target, .. } => target.as_var().cloned().into_iter().collect(),
            BodyAtom::Cond(_) => BTreeSet::new(),
        }
    }

    /// Variables this atom *requires* to be bound before it can run:
    /// domain-call arguments (calls must be ground, §3) and condition
    /// operands.
    pub fn requires(&self) -> BTreeSet<Arc<str>> {
        match self {
            BodyAtom::Pred(_) => BTreeSet::new(),
            BodyAtom::In { call, .. } => call.variables(),
            BodyAtom::Cond(c) => c.variables(),
        }
    }

    /// True if the atom can be evaluated once `bound` variables are ground.
    ///
    /// * Predicate atoms can always run (their defining rules produce
    ///   bindings).
    /// * `in` atoms need every call argument ground (§3: calls are ground).
    /// * Equality conditions can run when every path-bearing operand's base
    ///   is ground and **at least one side** is fully ground; they then act
    ///   as assignments to the bare variables of the other side.
    /// * Other comparisons need both operands fully ground.
    pub fn can_run(&self, bound: &BTreeSet<Arc<str>>) -> bool {
        let ground = |pt: &PathTerm| match pt.base.as_var() {
            Some(v) => bound.contains(v),
            None => true,
        };
        match self {
            BodyAtom::Pred(_) => true,
            BodyAtom::In { call, .. } => call.variables().iter().all(|v| bound.contains(v)),
            BodyAtom::Cond(c) if c.op == Relop::Eq => {
                let lhs_ok = ground(&c.lhs);
                let rhs_ok = ground(&c.rhs);
                // A side with a path needs its base ground to evaluate at
                // all; assignment targets must be bare variables.
                let lhs_assignable = c.lhs.path.is_empty() && c.lhs.base.is_var();
                let rhs_assignable = c.rhs.path.is_empty() && c.rhs.base.is_var();
                (lhs_ok && (rhs_ok || rhs_assignable)) || (rhs_ok && lhs_assignable)
            }
            BodyAtom::Cond(c) => ground(&c.lhs) && ground(&c.rhs),
        }
    }

    /// The variables this atom newly binds when run with `bound` already
    /// ground. For equality conditions this is the bare variable of an
    /// unbound side (assignment semantics); for `in` atoms the target; for
    /// predicate atoms every argument variable.
    pub fn new_bindings(&self, bound: &BTreeSet<Arc<str>>) -> BTreeSet<Arc<str>> {
        let mut out = BTreeSet::new();
        match self {
            BodyAtom::Pred(p) => {
                for v in p.variables() {
                    if !bound.contains(&v) {
                        out.insert(v);
                    }
                }
            }
            BodyAtom::In { target, .. } => {
                if let Some(v) = target.as_var() {
                    if !bound.contains(v) {
                        out.insert(v.clone());
                    }
                }
            }
            BodyAtom::Cond(c) if c.op == Relop::Eq => {
                for pt in [&c.lhs, &c.rhs] {
                    if pt.path.is_empty() {
                        if let Some(v) = pt.base.as_var() {
                            if !bound.contains(v) {
                                out.insert(v.clone());
                            }
                        }
                    }
                }
            }
            BodyAtom::Cond(_) => {}
        }
        out
    }

    /// All variables mentioned anywhere in the atom.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        match self {
            BodyAtom::Pred(p) => p.variables(),
            BodyAtom::In { target, call } => {
                let mut s = call.variables();
                if let Some(v) = target.as_var() {
                    s.insert(v.clone());
                }
                s
            }
            BodyAtom::Cond(c) => c.variables(),
        }
    }
}

impl fmt::Display for BodyAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BodyAtom::Pred(p) => write!(f, "{p}"),
            BodyAtom::In { target, call } => write!(f, "in({target}, {call})"),
            BodyAtom::Cond(c) => write!(f, "{c}"),
        }
    }
}

/// A mediator rule `head :- body.`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: PredAtom,
    /// The body conjunction, in written order.
    pub body: Vec<BodyAtom>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: PredAtom, body: Vec<BodyAtom>) -> Self {
        Rule { head, body }
    }

    /// All variables mentioned in the rule.
    pub fn variables(&self) -> BTreeSet<Arc<str>> {
        let mut s = self.head.variables();
        for a in &self.body {
            s.extend(a.variables());
        }
        s
    }

    /// Rewrites every variable occurrence (head and body, including
    /// condition bases and call arguments) through `f`, leaving constants
    /// and attribute paths untouched. With a bijective `f` this is
    /// alpha-renaming — the transformation subplan fingerprints must be
    /// invariant under.
    pub fn map_vars(&self, mut f: impl FnMut(&Arc<str>) -> Arc<str>) -> Rule {
        let mut term = |t: &Term| match t {
            Term::Var(v) => Term::Var(f(v)),
            Term::Const(_) => t.clone(),
        };
        let head = PredAtom::new(
            self.head.name.clone(),
            self.head.args.iter().map(&mut term).collect(),
        );
        let body = self
            .body
            .iter()
            .map(|atom| match atom {
                BodyAtom::Pred(p) => BodyAtom::Pred(PredAtom::new(
                    p.name.clone(),
                    p.args.iter().map(&mut term).collect(),
                )),
                BodyAtom::In { target, call } => BodyAtom::In {
                    target: term(target),
                    call: CallTemplate::new(
                        call.domain.clone(),
                        call.function.clone(),
                        call.args.iter().map(&mut term).collect(),
                    ),
                },
                BodyAtom::Cond(c) => BodyAtom::Cond(Condition::new(
                    c.op,
                    PathTerm {
                        base: term(&c.lhs.base),
                        path: c.lhs.path.clone(),
                    },
                    PathTerm {
                        base: term(&c.rhs.base),
                        path: c.rhs.path.clone(),
                    },
                )),
            })
            .collect();
        Rule::new(head, body)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A mediator program: an ordered list of rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program from rules.
    pub fn new(rules: Vec<Rule>) -> Self {
        Program { rules }
    }

    /// Rules whose head matches `name/arity`.
    pub fn rules_for(&self, name: &str, arity: usize) -> Vec<&Rule> {
        self.rules
            .iter()
            .filter(|r| r.head.name.as_ref() == name && r.head.args.len() == arity)
            .collect()
    }

    /// The set of IDB predicate identities defined by the program.
    pub fn defined_predicates(&self) -> BTreeSet<(Arc<str>, usize)> {
        self.rules.iter().map(|r| r.head.key()).collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

/// A query: a conjunction of goals, `?- g1 & … & gk.`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    /// The goals, in written order.
    pub goals: Vec<BodyAtom>,
}

impl Query {
    /// Builds a query.
    pub fn new(goals: Vec<BodyAtom>) -> Self {
        Query { goals }
    }

    /// The *answer variables* of the query: every variable mentioned in any
    /// goal, in first-occurrence order.
    pub fn answer_variables(&self) -> Vec<Arc<str>> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for g in &self.goals {
            for v in ordered_vars(g) {
                if seen.insert(v.clone()) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Variables of an atom in (approximate) textual order.
fn ordered_vars(atom: &BodyAtom) -> Vec<Arc<str>> {
    match atom {
        BodyAtom::Pred(p) => p.args.iter().filter_map(|t| t.as_var().cloned()).collect(),
        BodyAtom::In { target, call } => {
            let mut v: Vec<_> = target.as_var().cloned().into_iter().collect();
            v.extend(call.args.iter().filter_map(|t| t.as_var().cloned()));
            v
        }
        BodyAtom::Cond(c) => {
            let mut v = Vec::new();
            if let Some(x) = c.lhs.var_name() {
                v.push(x.clone());
            }
            if let Some(x) = c.rhs.var_name() {
                v.push(x.clone());
            }
            v
        }
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- ")?;
        for (i, g) in self.goals.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{g}")?;
        }
        write!(f, ".")
    }
}

/// The set relationship an invariant asserts between two domain calls (§4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum InvRel {
    /// Answer sets are identical.
    Equal,
    /// Answers of the left call are a **superset** of the right call's
    /// (`DC1 ⊇ DC2`): a cached right call gives a *partial* answer for the
    /// left call.
    Superset,
    /// Answers of the left call are a **subset** of the right call's
    /// (`DC1 ⊆ DC2`).
    Subset,
}

impl InvRel {
    /// The relation read right-to-left.
    pub fn flipped(self) -> InvRel {
        match self {
            InvRel::Equal => InvRel::Equal,
            InvRel::Superset => InvRel::Subset,
            InvRel::Subset => InvRel::Superset,
        }
    }

    /// True for [`InvRel::Superset`].
    pub fn is_superset(self) -> bool {
        matches!(self, InvRel::Superset)
    }

    /// Surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            InvRel::Equal => "=",
            InvRel::Superset => ">=",
            InvRel::Subset => "<=",
        }
    }
}

impl fmt::Display for InvRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An invariant `Condition ⇒ DomainCall1 R DomainCall2` (§4).
///
/// Invariants are *sound but not necessarily complete* rewrite rules: when
/// the condition holds under a substitution, the answer sets of the two
/// instantiated calls stand in relation `rel`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Invariant {
    /// The guard conjunction (may be empty for unconditional invariants).
    pub conditions: Vec<Condition>,
    /// The left call.
    pub lhs: CallTemplate,
    /// The asserted relation.
    pub rel: InvRel,
    /// The right call.
    pub rhs: CallTemplate,
}

impl Invariant {
    /// Builds an invariant.
    pub fn new(
        conditions: Vec<Condition>,
        lhs: CallTemplate,
        rel: InvRel,
        rhs: CallTemplate,
    ) -> Self {
        Invariant {
            conditions,
            lhs,
            rel,
            rhs,
        }
    }

    /// Variables of the two calls.
    pub fn call_variables(&self) -> BTreeSet<Arc<str>> {
        let mut s = self.lhs.variables();
        s.extend(self.rhs.variables());
        s
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.conditions.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        if !self.conditions.is_empty() {
            write!(f, " ")?;
        }
        write!(f, "=> {} {} {}.", self.lhs, self.rel, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relop_eval_and_flip() {
        let a = Value::Int(3);
        let b = Value::Int(5);
        assert!(Relop::Lt.eval(&a, &b));
        assert!(!Relop::Ge.eval(&a, &b));
        assert!(Relop::Ne.eval(&a, &b));
        assert!(Relop::Lt.flipped().eval(&b, &a));
        assert_eq!(Relop::Eq.flipped(), Relop::Eq);
    }

    #[test]
    fn body_atom_binds_and_requires() {
        let atom = BodyAtom::In {
            target: Term::var("X"),
            call: CallTemplate::new("d", "f", vec![Term::var("A"), Term::constant(1)]),
        };
        assert_eq!(
            atom.binds().into_iter().collect::<Vec<_>>(),
            vec![Arc::from("X")]
        );
        assert_eq!(
            atom.requires().into_iter().collect::<Vec<_>>(),
            vec![Arc::from("A")]
        );
    }

    #[test]
    fn cond_never_binds() {
        let c = BodyAtom::Cond(Condition::new(
            Relop::Eq,
            PathTerm::bare(Term::var("X")),
            PathTerm::bare(Term::constant(1)),
        ));
        assert!(c.binds().is_empty());
        assert_eq!(c.requires().len(), 1);
    }

    #[test]
    fn display_round_trips_structure() {
        let rule = Rule::new(
            PredAtom::new("p", vec![Term::var("A"), Term::var("B")]),
            vec![
                BodyAtom::In {
                    target: Term::var("Ans"),
                    call: CallTemplate::new("d1", "p_ff", vec![]),
                },
                BodyAtom::Cond(Condition::new(
                    Relop::Eq,
                    PathTerm::with_path(Term::var("Ans"), AttrPath::parse("1")),
                    PathTerm::bare(Term::var("A")),
                )),
            ],
        );
        assert_eq!(
            rule.to_string(),
            "p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.1, A)."
        );
    }

    #[test]
    fn program_rules_for_filters_by_arity() {
        let p = Program::new(vec![
            Rule::new(PredAtom::new("p", vec![Term::var("A")]), vec![]),
            Rule::new(
                PredAtom::new("p", vec![Term::var("A"), Term::var("B")]),
                vec![],
            ),
        ]);
        assert_eq!(p.rules_for("p", 1).len(), 1);
        assert_eq!(p.rules_for("p", 2).len(), 1);
        assert_eq!(p.rules_for("q", 1).len(), 0);
        assert_eq!(p.defined_predicates().len(), 2);
    }

    #[test]
    fn query_answer_variables_in_order() {
        let q = Query::new(vec![
            BodyAtom::Pred(PredAtom::new("m", vec![Term::var("C"), Term::var("A")])),
            BodyAtom::Pred(PredAtom::new("n", vec![Term::var("A"), Term::var("B")])),
        ]);
        let vars: Vec<String> = q
            .answer_variables()
            .into_iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(vars, vec!["C", "A", "B"]);
    }

    #[test]
    fn invariant_display() {
        let inv = Invariant::new(
            vec![Condition::new(
                Relop::Le,
                PathTerm::bare(Term::var("V1")),
                PathTerm::bare(Term::var("V2")),
            )],
            CallTemplate::new("r", "select_lt", vec![Term::var("T"), Term::var("V2")]),
            InvRel::Superset,
            CallTemplate::new("r", "select_lt", vec![Term::var("T"), Term::var("V1")]),
        );
        assert_eq!(
            inv.to_string(),
            "<=(V1, V2) => r:select_lt(T, V2) >= r:select_lt(T, V1)."
        );
        assert_eq!(inv.rel.flipped(), InvRel::Subset);
    }

    #[test]
    fn call_template_groundness() {
        let g = CallTemplate::new("d", "f", vec![Term::constant(1), Term::constant("x")]);
        assert!(g.is_ground());
        let ng = CallTemplate::new("d", "f", vec![Term::var("X")]);
        assert!(!ng.is_ground());
    }

    #[test]
    fn map_vars_renames_every_occurrence() {
        let rule = crate::parse_rule("p(A, B) :- in(B, d:f(A)) & >(B.size, A).").unwrap();
        let renamed = rule.map_vars(|v| Arc::from(format!("{v}_r").as_str()));
        assert_eq!(
            renamed.to_string(),
            "p(A_r, B_r) :- in(B_r, d:f(A_r)) & >(B_r.size, A_r)."
        );
        // Constants and paths are untouched; the identity map round-trips.
        assert_eq!(rule.map_vars(|v| v.clone()), rule);
    }
}
