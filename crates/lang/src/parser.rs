//! Recursive-descent parser for programs, queries, and invariants.

use crate::ast::*;
use crate::lexer::{lex, Spanned, Tok};
use hermes_common::{AttrPath, HermesError, PathStep, Result, Value};
use std::sync::Arc;

/// Parses a whole mediator program (zero or more `.`-terminated rules).
pub fn parse_program(input: &str) -> Result<Program> {
    let mut p = Parser::new(input)?;
    let mut rules = Vec::new();
    while !p.at_end() {
        rules.push(p.rule()?);
    }
    Ok(Program::new(rules))
}

/// Parses a single rule.
pub fn parse_rule(input: &str) -> Result<Rule> {
    let mut p = Parser::new(input)?;
    let r = p.rule()?;
    p.expect_end()?;
    Ok(r)
}

/// Parses a query. The leading `?-` is optional.
pub fn parse_query(input: &str) -> Result<Query> {
    let mut p = Parser::new(input)?;
    let q = p.query()?;
    p.expect_end()?;
    Ok(q)
}

/// Parses a single invariant.
pub fn parse_invariant(input: &str) -> Result<Invariant> {
    let mut p = Parser::new(input)?;
    let inv = p.invariant()?;
    p.expect_end()?;
    Ok(inv)
}

/// Parses zero or more `.`-terminated invariants.
pub fn parse_invariants(input: &str) -> Result<Vec<Invariant>> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    while !p.at_end() {
        out.push(p.invariant()?);
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
        })
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| (s.line, s.col))
            .unwrap_or((1, 1))
    }

    fn err(&self, msg: impl Into<String>) -> HermesError {
        let (line, col) = self.here();
        HermesError::Parse {
            line,
            col,
            msg: msg.into(),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        if self.eat(want) {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{want}`, found {}",
                self.peek()
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            )))
        }
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            Err(self.err("trailing input after clause"))
        }
    }

    fn ident(&mut self) -> Result<Arc<str>> {
        match self.bump() {
            Some(Tok::Ident(s)) => Ok(Arc::from(s.as_str())),
            other => Err(self.err(format!(
                "expected identifier, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// rule := pred_atom ( ":-" conjuncts )? "."
    fn rule(&mut self) -> Result<Rule> {
        let head = self.pred_atom()?;
        let body = if self.eat(&Tok::Turnstile) {
            self.conjuncts()?
        } else {
            Vec::new()
        };
        self.expect(&Tok::Period)?;
        Ok(Rule::new(head, body))
    }

    /// query := "?-"? conjuncts "."
    fn query(&mut self) -> Result<Query> {
        self.eat(&Tok::QueryMark);
        let goals = self.conjuncts()?;
        self.expect(&Tok::Period)?;
        Ok(Query::new(goals))
    }

    /// invariant := (conditions "=>")? call REL call "."
    /// An empty condition list may be written by starting with "=>".
    fn invariant(&mut self) -> Result<Invariant> {
        let mut conditions = Vec::new();
        if !self.eat(&Tok::Implies) {
            loop {
                conditions.push(self.condition()?);
                if self.eat(&Tok::Amp) || self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(&Tok::Implies)?;
                break;
            }
        }
        let lhs = self.call_template()?;
        let rel = match self.bump() {
            Some(Tok::OpEq) => InvRel::Equal,
            Some(Tok::OpGe) => InvRel::Superset,
            Some(Tok::OpLe) => InvRel::Subset,
            other => {
                return Err(self.err(format!(
                    "expected invariant relation `=`, `>=`, or `<=`, found {}",
                    other
                        .map(|t| format!("`{t}`"))
                        .unwrap_or_else(|| "end of input".into())
                )))
            }
        };
        let rhs = self.call_template()?;
        self.expect(&Tok::Period)?;
        Ok(Invariant::new(conditions, lhs, rel, rhs))
    }

    fn conjuncts(&mut self) -> Result<Vec<BodyAtom>> {
        let mut atoms = vec![self.body_atom()?];
        while self.eat(&Tok::Amp) || self.eat(&Tok::Comma) {
            atoms.push(self.body_atom()?);
        }
        Ok(atoms)
    }

    fn body_atom(&mut self) -> Result<BodyAtom> {
        match self.peek() {
            Some(t) if t.is_relop() => Ok(BodyAtom::Cond(self.prefix_condition()?)),
            Some(Tok::Ident(name)) if name == "in" && self.peek2() == Some(&Tok::LParen) => {
                self.in_atom()
            }
            Some(Tok::Ident(_)) if self.peek2() == Some(&Tok::LParen) => {
                Ok(BodyAtom::Pred(self.pred_atom()?))
            }
            _ => {
                // Infix condition: path_term relop path_term.
                let lhs = self.path_term()?;
                let op = self.relop()?;
                let rhs = self.path_term()?;
                Ok(BodyAtom::Cond(Condition::new(op, lhs, rhs)))
            }
        }
    }

    /// condition := relop "(" path_term "," path_term ")"
    ///            | path_term relop path_term
    fn condition(&mut self) -> Result<Condition> {
        if self.peek().is_some_and(Tok::is_relop) {
            self.prefix_condition()
        } else {
            let lhs = self.path_term()?;
            let op = self.relop()?;
            let rhs = self.path_term()?;
            Ok(Condition::new(op, lhs, rhs))
        }
    }

    fn prefix_condition(&mut self) -> Result<Condition> {
        let op = self.relop()?;
        self.expect(&Tok::LParen)?;
        let lhs = self.path_term()?;
        self.expect(&Tok::Comma)?;
        let rhs = self.path_term()?;
        self.expect(&Tok::RParen)?;
        Ok(Condition::new(op, lhs, rhs))
    }

    fn relop(&mut self) -> Result<Relop> {
        match self.bump() {
            Some(Tok::OpEq) => Ok(Relop::Eq),
            Some(Tok::OpNe) => Ok(Relop::Ne),
            Some(Tok::OpLt) => Ok(Relop::Lt),
            Some(Tok::OpLe) => Ok(Relop::Le),
            Some(Tok::OpGt) => Ok(Relop::Gt),
            Some(Tok::OpGe) => Ok(Relop::Ge),
            other => Err(self.err(format!(
                "expected comparison operator, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// in_atom := "in" "(" term "," call ")"
    fn in_atom(&mut self) -> Result<BodyAtom> {
        self.bump(); // `in`
        self.expect(&Tok::LParen)?;
        let target = self.term()?;
        self.expect(&Tok::Comma)?;
        let call = self.call_template()?;
        self.expect(&Tok::RParen)?;
        Ok(BodyAtom::In { target, call })
    }

    /// call := ident ":" ident "(" terms? ")"
    fn call_template(&mut self) -> Result<CallTemplate> {
        let domain = self.ident()?;
        self.expect(&Tok::Colon)?;
        let function = self.ident()?;
        self.expect(&Tok::LParen)?;
        let args = self.term_list()?;
        self.expect(&Tok::RParen)?;
        Ok(CallTemplate {
            domain,
            function,
            args,
        })
    }

    fn pred_atom(&mut self) -> Result<PredAtom> {
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let args = self.term_list()?;
        self.expect(&Tok::RParen)?;
        Ok(PredAtom { name, args })
    }

    fn term_list(&mut self) -> Result<Vec<Term>> {
        let mut args = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            return Ok(args);
        }
        args.push(self.term()?);
        while self.eat(&Tok::Comma) {
            args.push(self.term()?);
        }
        Ok(args)
    }

    fn term(&mut self) -> Result<Term> {
        match self.bump() {
            Some(Tok::Var(v)) => Ok(Term::Var(Arc::from(v.as_str()))),
            Some(Tok::Ident(s)) => Ok(Term::Const(Value::str(s))),
            Some(Tok::Str(s)) => Ok(Term::Const(Value::str(s))),
            Some(Tok::Int(i)) => Ok(Term::Const(Value::Int(i))),
            Some(Tok::Float(f)) => Ok(Term::Const(Value::Float(f))),
            other => Err(self.err(format!(
                "expected term, found {}",
                other
                    .map(|t| format!("`{t}`"))
                    .unwrap_or_else(|| "end of input".into())
            ))),
        }
    }

    /// path_term := term ( "." path_step )*
    fn path_term(&mut self) -> Result<PathTerm> {
        let base = self.term()?;
        let mut steps = Vec::new();
        while self.eat(&Tok::PathDot) {
            match self.bump() {
                Some(Tok::Int(i)) if i > 0 => steps.push(PathStep::Index(i as usize)),
                Some(Tok::Int(i)) => {
                    return Err(self.err(format!("path index must be positive, got {i}")))
                }
                Some(Tok::Ident(s)) => steps.push(PathStep::Field(Arc::from(s.as_str()))),
                Some(Tok::Var(s)) => steps.push(PathStep::Field(Arc::from(s.as_str()))),
                other => {
                    return Err(self.err(format!(
                        "expected attribute selector after `.`, found {}",
                        other
                            .map(|t| format!("`{t}`"))
                            .unwrap_or_else(|| "end of input".into())
                    )))
                }
            }
        }
        if steps.is_empty() {
            Ok(PathTerm::bare(base))
        } else {
            if base.as_var().is_none() {
                return Err(self.err("attribute paths may only be applied to variables"));
            }
            Ok(PathTerm::with_path(base, AttrPath::new(steps)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_paper_mediator_m1() {
        // Mediator (M1) from Example 5.1, in our variable convention.
        let src = "
            m(A, C) :- p(A, B) & q(B, C).
            p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.1, A) & =(Ans.2, B).
            p(A, B) :- in(A, d1:p_fb(B)).
            q(B, C) :- in(Ans, d2:q_ff()) & =(Ans.1, B) & =(Ans.2, C).
            q(B, C) :- in(C, d2:q_bf(B)).
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.rules.len(), 5);
        assert_eq!(prog.rules_for("p", 2).len(), 2);
        let r = &prog.rules[1];
        assert_eq!(r.body.len(), 3);
        assert!(matches!(r.body[0], BodyAtom::In { .. }));
        assert!(matches!(r.body[1], BodyAtom::Cond(_)));
    }

    #[test]
    fn parse_query_with_and_without_marker() {
        let q1 = parse_query("?- m('a', C).").unwrap();
        let q2 = parse_query("m('a', C).").unwrap();
        assert_eq!(q1, q2);
        assert_eq!(q1.goals.len(), 1);
    }

    #[test]
    fn parse_routetosupplies_example() {
        // The motivating rule from §2 of the paper.
        let src = "
            routetosupplies(From, Sup1, To, R) :-
                in(Tuple, ingres:select_eq('inventory', 'item', Sup1)) &
                =(Tuple.loc, To) &
                in(R, terraindb:findrte(From, To)).
        ";
        let prog = parse_program(src).unwrap();
        let r = &prog.rules[0];
        assert_eq!(r.head.args.len(), 4);
        match &r.body[1] {
            BodyAtom::Cond(c) => {
                assert_eq!(c.lhs.to_string(), "Tuple.loc");
                assert_eq!(c.op, Relop::Eq);
            }
            other => panic!("expected condition, got {other}"),
        }
    }

    #[test]
    fn parse_infix_conditions() {
        let q = parse_query("in(X, d:f('a')) & X > 5 & X.1 <= 10.").unwrap();
        assert_eq!(q.goals.len(), 3);
        match &q.goals[1] {
            BodyAtom::Cond(c) => assert_eq!(c.op, Relop::Gt),
            other => panic!("expected condition, got {other}"),
        }
    }

    #[test]
    fn parse_equality_invariant() {
        let inv = parse_invariant(
            "Dist > 142 => spatial:range('points', X, Y, Dist) = spatial:range('points', X, Y, 142).",
        )
        .unwrap();
        assert_eq!(inv.rel, InvRel::Equal);
        assert_eq!(inv.conditions.len(), 1);
        assert_eq!(inv.lhs.args.len(), 4);
        assert_eq!(inv.rhs.args[3], Term::constant(142));
    }

    #[test]
    fn parse_superset_invariant() {
        let inv = parse_invariant(
            "V1 <= V2 => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1).",
        )
        .unwrap();
        assert_eq!(inv.rel, InvRel::Superset);
        assert_eq!(inv.lhs.function.as_ref(), "select_lt");
    }

    #[test]
    fn parse_unconditional_invariant() {
        let inv = parse_invariant("=> d:f(X) = d:g(X).").unwrap();
        assert!(inv.conditions.is_empty());
    }

    #[test]
    fn parse_multiple_invariants() {
        let invs = parse_invariants("=> d:f(X) = d:g(X).\nA < B => d:h(B) >= d:h(A).").unwrap();
        assert_eq!(invs.len(), 2);
    }

    #[test]
    fn comma_and_amp_both_conjoin() {
        let a = parse_query("p(X), q(X).").unwrap();
        let b = parse_query("p(X) & q(X).").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn lowercase_idents_are_string_constants() {
        let q = parse_query("p(abc, X).").unwrap();
        match &q.goals[0] {
            BodyAtom::Pred(p) => {
                assert_eq!(p.args[0], Term::Const(Value::str("abc")));
                assert!(p.args[1].is_var());
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn dollar_vars_match_plain_vars() {
        let a = parse_query("p($ans) & =($ans.1, 5).").unwrap();
        let b = parse_query("p(Ans) & =(Ans.1, 5).").unwrap();
        // $ans and Ans normalize differently (case preserved), but both are vars.
        match (&a.goals[0], &b.goals[0]) {
            (BodyAtom::Pred(pa), BodyAtom::Pred(pb)) => {
                assert!(pa.args[0].is_var());
                assert!(pb.args[0].is_var());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn missing_period_is_error() {
        assert!(parse_rule("p(A) :- q(A)").is_err());
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_rule("p(A) :- q(A). extra").is_err());
    }

    #[test]
    fn path_on_constant_is_error() {
        assert!(parse_query("=(abc.1, 5).").is_err());
    }

    #[test]
    fn zero_path_index_is_error() {
        assert!(parse_query("=(X.0, 5).").is_err());
    }

    #[test]
    fn facts_parse_as_empty_body_rules() {
        let prog = parse_program("edge(a, b). edge(b, c).").unwrap();
        assert_eq!(prog.rules.len(), 2);
        assert!(prog.rules[0].body.is_empty());
    }

    #[test]
    fn display_reparses_to_same_ast() {
        let src = "p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.1, A) & in(B, d2:q_bf(A)).";
        let r1 = parse_rule(src).unwrap();
        let r2 = parse_rule(&r1.to_string()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn appendix_query2_parses() {
        // query2 from the paper's appendix (adapted to our conventions).
        let src = "
            query2(First, Last, Object, Frames, Actor) :-
                in(Object, video:frames_to_objects('rope', First, Last)) &
                in(Frames, video:object_to_frames('rope', Object)) &
                in(Actor, relation:select_eq('cast', 'role', Object)).
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.rules[0].body.len(), 3);
    }
}
