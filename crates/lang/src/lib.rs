//! # hermes-lang
//!
//! The HERMES mediator rule language (§2 of the paper), as a library:
//! lexer, parser, AST, substitutions/unification, and static validation.
//!
//! A mediator is a set of rules
//!
//! ```text
//! A :- B1 & … & Bn & D1 & … & Dm & E1 & … & Ek.
//! ```
//!
//! where the `B`s are ordinary (IDB) predicate atoms, the `D`s are *domain
//! call* atoms `in(X, d:f(args))` — `X` is in the answer set returned by
//! executing function `f` of external source `d` on ground `args` — and the
//! `E`s are comparison conditions `relop(V1, V2)` whose operands may select
//! attributes of complex values (`Ans.1`, `P.name`).
//!
//! Syntax conventions (Prolog-style, documented here because the paper's own
//! typography is inconsistent): identifiers starting with an uppercase letter
//! or `$` are **variables**; lowercase identifiers, quoted strings, and
//! numbers are **constants**. Conjuncts are separated by `&` or `,`; every
//! rule, query, and invariant ends with `.`.
//!
//! ```
//! use hermes_lang::parse_program;
//!
//! let program = parse_program(
//!     "route(From, Sup, To, R) :-
//!          in(Tuple, ingres:select_eq('inventory', 'item', Sup)) &
//!          =(Tuple.loc, To) &
//!          in(R, terraindb:findrte(From, To)).",
//! ).unwrap();
//! assert_eq!(program.rules.len(), 1);
//! ```
//!
//! Invariants (§4) share the term language:
//!
//! ```
//! use hermes_lang::parse_invariant;
//!
//! let inv = parse_invariant(
//!     "V1 <= V2 => relation:select_lt(T, A, V2) >= relation:select_lt(T, A, V1).",
//! ).unwrap();
//! assert!(inv.rel.is_superset());
//! ```

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod subst;
pub mod validate;

pub use ast::{
    BodyAtom, CallTemplate, Condition, InvRel, Invariant, PathTerm, PredAtom, Program, Query,
    Relop, Rule, Term,
};
pub use parser::{parse_invariant, parse_invariants, parse_program, parse_query, parse_rule};
pub use subst::Subst;
pub use validate::{
    groundability, validate_invariant, validate_program, validate_rule, GroundabilityReport,
    StuckAtom,
};
