//! Substitutions: partial maps from variables to ground values.
//!
//! Substitutions drive everything at run time — instantiating domain-call
//! templates into [`GroundCall`]s, checking invariant conditions, and
//! matching cached calls against invariant call templates (which *extends*
//! a substitution, the θ of §4.1).

use crate::ast::{CallTemplate, Condition, PathTerm, Term};
use hermes_common::{GroundCall, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A partial assignment of ground values to variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Subst {
    map: BTreeMap<Arc<str>, Value>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Builds from `(name, value)` pairs.
    pub fn from_pairs<I, S>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (S, Value)>,
        S: Into<Arc<str>>,
    {
        Subst {
            map: pairs.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Value bound to `var`, if any.
    pub fn get(&self, var: &str) -> Option<&Value> {
        self.map.get(var)
    }

    /// True if `var` is bound.
    pub fn is_bound(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// Binds `var` to `value`, replacing any previous binding.
    pub fn bind(&mut self, var: impl Into<Arc<str>>, value: Value) {
        self.map.insert(var.into(), value);
    }

    /// Removes a binding.
    pub fn unbind(&mut self, var: &str) {
        self.map.remove(var);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates bindings in variable-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Arc<str>, &Value)> {
        self.map.iter()
    }

    /// Resolves a term to a ground value, if possible.
    pub fn term(&self, t: &Term) -> Option<Value> {
        match t {
            Term::Const(v) => Some(v.clone()),
            Term::Var(x) => self.map.get(x.as_ref()).cloned(),
        }
    }

    /// Resolves a path term: the base must be ground, then the attribute
    /// path must resolve inside it.
    pub fn path_term(&self, pt: &PathTerm) -> Option<Value> {
        let base = self.term(&pt.base)?;
        if pt.path.is_empty() {
            return Some(base);
        }
        pt.path.resolve(&base).cloned()
    }

    /// Evaluates a condition. Returns `None` when an operand is not ground
    /// (distinguishing "unknown" from "false").
    pub fn eval_condition(&self, c: &Condition) -> Option<bool> {
        let l = self.path_term(&c.lhs)?;
        let r = self.path_term(&c.rhs)?;
        Some(c.op.eval(&l, &r))
    }

    /// Instantiates a call template into a ground call. `None` if any
    /// argument variable is unbound.
    pub fn ground_call(&self, t: &CallTemplate) -> Option<GroundCall> {
        let args = t
            .args
            .iter()
            .map(|a| self.term(a))
            .collect::<Option<Vec<_>>>()?;
        Some(GroundCall::new(t.domain.clone(), t.function.clone(), args))
    }

    /// Matches a call template against a ground call, extending `self` with
    /// any new variable bindings. Returns the extended substitution on
    /// success; `None` on clash (different domain/function/arity, a constant
    /// mismatch, or a variable already bound to a different value).
    ///
    /// This is the unification step of the §4.1 invariant algorithm: unify
    /// the concrete call with `DomainCall1`, then (separately, against cache
    /// entries) with `DomainCall2`.
    pub fn match_call(&self, template: &CallTemplate, call: &GroundCall) -> Option<Subst> {
        if template.domain != call.domain
            || template.function != call.function
            || template.args.len() != call.args.len()
        {
            return None;
        }
        let mut out = self.clone();
        for (t, v) in template.args.iter().zip(call.args.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        return None;
                    }
                }
                Term::Var(x) => match out.map.get(x.as_ref()) {
                    Some(existing) if existing != v => return None,
                    Some(_) => {}
                    None => {
                        out.map.insert(x.clone(), v.clone());
                    }
                },
            }
        }
        Some(out)
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k} -> {}", v.to_literal())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Relop;
    use hermes_common::{AttrPath, Record};

    #[test]
    fn term_resolution() {
        let s = Subst::from_pairs([("X", Value::Int(5))]);
        assert_eq!(s.term(&Term::var("X")), Some(Value::Int(5)));
        assert_eq!(s.term(&Term::var("Y")), None);
        assert_eq!(s.term(&Term::constant(3)), Some(Value::Int(3)));
    }

    #[test]
    fn path_term_resolution() {
        let rec = Value::Record(Record::from_fields([("loc", Value::str("pax river"))]));
        let s = Subst::from_pairs([("Tuple", rec)]);
        let pt = PathTerm::with_path(Term::var("Tuple"), AttrPath::parse("loc"));
        assert_eq!(s.path_term(&pt), Some(Value::str("pax river")));
        let bad = PathTerm::with_path(Term::var("Tuple"), AttrPath::parse("missing"));
        assert_eq!(s.path_term(&bad), None);
    }

    #[test]
    fn condition_eval_three_valued() {
        let s = Subst::from_pairs([("X", Value::Int(5))]);
        let c_true = Condition::new(
            Relop::Gt,
            PathTerm::bare(Term::var("X")),
            PathTerm::bare(Term::constant(3)),
        );
        let c_false = Condition::new(
            Relop::Lt,
            PathTerm::bare(Term::var("X")),
            PathTerm::bare(Term::constant(3)),
        );
        let c_unknown = Condition::new(
            Relop::Lt,
            PathTerm::bare(Term::var("Y")),
            PathTerm::bare(Term::constant(3)),
        );
        assert_eq!(s.eval_condition(&c_true), Some(true));
        assert_eq!(s.eval_condition(&c_false), Some(false));
        assert_eq!(s.eval_condition(&c_unknown), None);
    }

    #[test]
    fn ground_call_instantiation() {
        let s = Subst::from_pairs([("B", Value::str("rupert"))]);
        let t = CallTemplate::new("d2", "q_bf", vec![Term::var("B")]);
        let g = s.ground_call(&t).unwrap();
        assert_eq!(g.to_string(), "d2:q_bf('rupert')");
        let t2 = CallTemplate::new("d2", "q_bf", vec![Term::var("Z")]);
        assert!(s.ground_call(&t2).is_none());
    }

    #[test]
    fn match_call_binds_new_vars() {
        let t = CallTemplate::new(
            "spatial",
            "range",
            vec![
                Term::constant("points"),
                Term::var("X"),
                Term::var("Y"),
                Term::var("Dist"),
            ],
        );
        let g = GroundCall::new(
            "spatial",
            "range",
            vec![
                Value::str("points"),
                Value::Int(10),
                Value::Int(20),
                Value::Int(200),
            ],
        );
        let s = Subst::new().match_call(&t, &g).unwrap();
        assert_eq!(s.get("Dist"), Some(&Value::Int(200)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn match_call_respects_existing_bindings() {
        let t = CallTemplate::new("d", "f", vec![Term::var("X"), Term::var("X")]);
        let same = GroundCall::new("d", "f", vec![Value::Int(1), Value::Int(1)]);
        let diff = GroundCall::new("d", "f", vec![Value::Int(1), Value::Int(2)]);
        assert!(Subst::new().match_call(&t, &same).is_some());
        assert!(Subst::new().match_call(&t, &diff).is_none());
    }

    #[test]
    fn match_call_rejects_mismatches() {
        let t = CallTemplate::new("d", "f", vec![Term::constant(1)]);
        assert!(Subst::new()
            .match_call(&t, &GroundCall::new("d", "f", vec![Value::Int(2)]))
            .is_none());
        assert!(Subst::new()
            .match_call(&t, &GroundCall::new("e", "f", vec![Value::Int(1)]))
            .is_none());
        assert!(Subst::new()
            .match_call(&t, &GroundCall::new("d", "g", vec![Value::Int(1)]))
            .is_none());
        assert!(Subst::new()
            .match_call(
                &t,
                &GroundCall::new("d", "f", vec![Value::Int(1), Value::Int(2)])
            )
            .is_none());
    }

    #[test]
    fn display_is_sorted() {
        let s = Subst::from_pairs([("B", Value::Int(2)), ("A", Value::Int(1))]);
        assert_eq!(s.to_string(), "{A -> 1, B -> 2}");
    }
}
