//! Static validation of rules, programs, and invariants.
//!
//! Two properties matter before planning:
//!
//! * **Safety / executability** — a rule must admit *some* subgoal ordering
//!   in which every domain call's arguments are ground by the time the call
//!   runs (the paper requires ground calls, §3) and every condition's
//!   operands are ground. Head variables must be bound by the body (or be
//!   bound by the query). The check here is a fixpoint over "groundable"
//!   variables and is ordering-independent; the rewriter later finds the
//!   actual orderings.
//! * **Invariant well-formedness** — every condition variable must appear in
//!   one of the two calls (§4: "no free variables in the invariants").
//!
//! The groundability fixpoint itself lives in [`groundability`], shared by
//! this module's legacy entry points, the `hermes-analysis` whole-program
//! analyzer, and the rewriter's infeasibility explanations — so the logic
//! exists exactly once.

use crate::ast::{BodyAtom, Invariant, Program, Rule};
use hermes_common::{HermesError, Result};
use std::collections::BTreeSet;
use std::sync::Arc;

/// One atom that can never run: at the groundability fixpoint it still
/// requires variables no other atom can bind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StuckAtom {
    /// Index of the atom in the analyzed conjunction.
    pub index: usize,
    /// The atom itself.
    pub atom: BodyAtom,
    /// The variables the atom *requires* ground (call arguments, condition
    /// operands) that can never become ground, sorted.
    pub missing: Vec<Arc<str>>,
}

/// The result of the groundability fixpoint over a conjunction.
#[derive(Clone, Debug, Default)]
pub struct GroundabilityReport {
    /// Every variable that *some* evaluation order can make ground.
    pub groundable: BTreeSet<Arc<str>>,
    /// Atoms mentioning variables that can never become ground, in
    /// conjunction order. Empty iff the conjunction is executable.
    pub stuck: Vec<StuckAtom>,
}

impl GroundabilityReport {
    /// True when every atom can eventually run.
    pub fn is_executable(&self) -> bool {
        self.stuck.is_empty()
    }
}

/// Runs the groundability fixpoint: starting from `seed` (variables the
/// caller guarantees ground — head variables for rule validation, query
/// constants' variables for query analysis), repeatedly runs every atom
/// whose requirements are met and adds the variables it binds, until
/// nothing changes. This is the *single* implementation of the paper's §3
/// ground-call requirement; `validate_rule`, the `hermes-analysis`
/// adornment pass, and the rewriter's error explanations all delegate here.
pub fn groundability(seed: BTreeSet<Arc<str>>, atoms: &[BodyAtom]) -> GroundabilityReport {
    let mut groundable = seed;
    let mut changed = true;
    while changed {
        changed = false;
        for atom in atoms {
            if atom.can_run(&groundable) {
                for v in atom.new_bindings(&groundable) {
                    if groundable.insert(v) {
                        changed = true;
                    }
                }
            }
        }
    }
    let mut stuck = Vec::new();
    for (index, atom) in atoms.iter().enumerate() {
        // An atom is stuck iff some variable it mentions can never become
        // ground; the blockers are the *required* ones (an unboundable
        // target or assignee always traces back to an unboundable
        // requirement, since the atom would otherwise run and bind it).
        if atom.variables().iter().all(|v| groundable.contains(v)) {
            continue;
        }
        let missing: Vec<Arc<str>> = atom
            .requires()
            .into_iter()
            .filter(|v| !groundable.contains(v))
            .collect();
        if !missing.is_empty() {
            stuck.push(StuckAtom {
                index,
                atom: atom.clone(),
                missing,
            });
        }
    }
    GroundabilityReport { groundable, stuck }
}

/// Validates every rule of a program.
pub fn validate_program(p: &Program) -> Result<()> {
    for r in &p.rules {
        validate_rule(r)?;
    }
    Ok(())
}

/// Validates a single rule (see module docs). A thin shim over
/// [`groundability`]: seeds the fixpoint with the head variables (a query
/// may bind them top-down) and reports the first stuck variable.
pub fn validate_rule(rule: &Rule) -> Result<()> {
    let report = groundability(rule.head.variables(), &rule.body);
    if let Some(stuck) = report.stuck.first() {
        return Err(HermesError::Plan(format!(
            "rule `{}`: variable `{}` can never become ground \
             (no subgoal binds it)",
            rule.head, stuck.missing[0]
        )));
    }

    // Head variables must be bound by the body when the body is non-empty:
    // otherwise the rule can produce unbound answers for free head variables.
    if !rule.body.is_empty() {
        // Range restriction: every head variable must occur in the body.
        // (It need not be *bound* by the body alone — sideways information
        // passing from the query can bind it, as in `q(B,C) :- in(C,
        // d2:q_bf(B))` where B flows in from the caller.)
        let body_vars: BTreeSet<Arc<str>> = rule.body.iter().flat_map(|a| a.variables()).collect();
        for v in rule.head.variables() {
            if !body_vars.contains(&v) {
                return Err(HermesError::Plan(format!(
                    "rule `{}`: head variable `{v}` does not occur in the body",
                    rule.head
                )));
            }
        }
    } else {
        // Facts must be ground.
        if !rule.head.variables().is_empty() {
            return Err(HermesError::Plan(format!(
                "fact `{}` contains variables",
                rule.head
            )));
        }
    }
    Ok(())
}

/// Validates an invariant: condition variables must appear in a call.
pub fn validate_invariant(inv: &Invariant) -> Result<()> {
    let call_vars = inv.call_variables();
    for c in &inv.conditions {
        for v in c.variables() {
            if !call_vars.contains(&v) {
                return Err(HermesError::Plan(format!(
                    "invariant `{inv}`: condition variable `{v}` appears in \
                     neither domain call"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_invariant, parse_program, parse_query, parse_rule};

    #[test]
    fn valid_paper_rules_pass() {
        let p = parse_program(
            "
            m(A, C) :- p(A, B) & q(B, C).
            p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.1, A) & =(Ans.2, B).
            q(B, C) :- in(C, d2:q_bf(B)).
            ",
        )
        .unwrap();
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn head_var_missing_from_body_fails() {
        let r = parse_rule("p(A, B) :- in(A, d:f('x')).").unwrap();
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("head variable `B`"));
    }

    #[test]
    fn unboundable_call_argument_fails() {
        // Z is only consumed (as a call argument), never produced.
        let r = parse_rule("p(A) :- in(A, d:f(Z)).").unwrap();
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("`Z`"));
    }

    #[test]
    fn condition_var_unbound_fails() {
        let r = parse_rule("p(A) :- in(A, d:f()) & >(W, 5).").unwrap();
        assert!(validate_rule(&r).is_err());
    }

    #[test]
    fn chained_bindings_are_groundable() {
        // B is bound by the first call (as target), consumed by the second.
        let r = parse_rule("p(A) :- in(B, d:f()) & in(A, d:g(B)).").unwrap();
        assert!(validate_rule(&r).is_ok());
    }

    #[test]
    fn binding_order_in_text_does_not_matter() {
        // The consumer is written before the producer; still valid because
        // validation is ordering-independent (the rewriter reorders).
        let r = parse_rule("p(A) :- in(A, d:g(B)) & in(B, d:f()).").unwrap();
        assert!(validate_rule(&r).is_ok());
    }

    #[test]
    fn non_ground_fact_fails() {
        let r = parse_rule("p(A).").unwrap();
        assert!(validate_rule(&r).is_err());
        let ok = parse_rule("p('a').").unwrap();
        assert!(validate_rule(&ok).is_ok());
    }

    #[test]
    fn invariant_free_condition_var_fails() {
        let inv = parse_invariant("W > 5 => d:f(X) = d:g(X).").unwrap();
        assert!(validate_invariant(&inv).is_err());
        let ok = parse_invariant("X > 5 => d:f(X) = d:g(X).").unwrap();
        assert!(validate_invariant(&ok).is_ok());
    }

    #[test]
    fn groundability_reports_stuck_atoms_with_missing_vars() {
        let q = parse_query("?- in(C, d2:q_bf(B)) & in(B, d9:f(C)).").unwrap();
        let report = groundability(BTreeSet::new(), &q.goals);
        assert!(!report.is_executable());
        // Both calls are stuck: each needs the variable the other binds.
        assert_eq!(report.stuck.len(), 2);
        assert_eq!(report.stuck[0].index, 0);
        assert_eq!(report.stuck[0].missing, vec![Arc::<str>::from("B")]);
        assert!(!report.groundable.contains("C"));
    }

    #[test]
    fn groundability_seed_unblocks_chain() {
        let q = parse_query("?- in(C, d2:q_bf(B)) & in(B, d9:f(C)).").unwrap();
        let seed: BTreeSet<Arc<str>> = [Arc::<str>::from("B")].into();
        let report = groundability(seed, &q.goals);
        assert!(report.is_executable());
        assert!(report.groundable.contains("C"));
    }
}
