//! Static validation of rules, programs, and invariants.
//!
//! Two properties matter before planning:
//!
//! * **Safety / executability** — a rule must admit *some* subgoal ordering
//!   in which every domain call's arguments are ground by the time the call
//!   runs (the paper requires ground calls, §3) and every condition's
//!   operands are ground. Head variables must be bound by the body (or be
//!   bound by the query). The check here is a fixpoint over "groundable"
//!   variables and is ordering-independent; the rewriter later finds the
//!   actual orderings.
//! * **Invariant well-formedness** — every condition variable must appear in
//!   one of the two calls (§4: "no free variables in the invariants").

use crate::ast::{Invariant, Program, Rule};
use hermes_common::{HermesError, Result};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Validates every rule of a program.
pub fn validate_program(p: &Program) -> Result<()> {
    for r in &p.rules {
        validate_rule(r)?;
    }
    Ok(())
}

/// Validates a single rule (see module docs).
pub fn validate_rule(rule: &Rule) -> Result<()> {
    // Variables that evaluation can ever bind: head variables (a query may
    // bind them top-down) plus everything any body atom binds.
    let mut groundable: BTreeSet<Arc<str>> = rule.head.variables();
    let mut changed = true;
    while changed {
        changed = false;
        for atom in &rule.body {
            if atom.can_run(&groundable) {
                for v in atom.new_bindings(&groundable) {
                    if groundable.insert(v) {
                        changed = true;
                    }
                }
            }
        }
    }

    // Every variable used anywhere must be groundable.
    for atom in &rule.body {
        for v in atom.variables() {
            if !groundable.contains(&v) {
                return Err(HermesError::Plan(format!(
                    "rule `{}`: variable `{v}` can never become ground \
                     (no subgoal binds it)",
                    rule.head
                )));
            }
        }
    }

    // Head variables must be bound by the body when the body is non-empty:
    // otherwise the rule can produce unbound answers for free head variables.
    if !rule.body.is_empty() {
        // Range restriction: every head variable must occur in the body.
        // (It need not be *bound* by the body alone — sideways information
        // passing from the query can bind it, as in `q(B,C) :- in(C,
        // d2:q_bf(B))` where B flows in from the caller.)
        let body_vars: BTreeSet<Arc<str>> = rule
            .body
            .iter()
            .flat_map(|a| a.variables())
            .collect();
        for v in rule.head.variables() {
            if !body_vars.contains(&v) {
                return Err(HermesError::Plan(format!(
                    "rule `{}`: head variable `{v}` does not occur in the body",
                    rule.head
                )));
            }
        }
    } else {
        // Facts must be ground.
        if !rule.head.variables().is_empty() {
            return Err(HermesError::Plan(format!(
                "fact `{}` contains variables",
                rule.head
            )));
        }
    }
    Ok(())
}

/// Validates an invariant: condition variables must appear in a call.
pub fn validate_invariant(inv: &Invariant) -> Result<()> {
    let call_vars = inv.call_variables();
    for c in &inv.conditions {
        for v in c.variables() {
            if !call_vars.contains(&v) {
                return Err(HermesError::Plan(format!(
                    "invariant `{inv}`: condition variable `{v}` appears in \
                     neither domain call"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_invariant, parse_program, parse_rule};

    #[test]
    fn valid_paper_rules_pass() {
        let p = parse_program(
            "
            m(A, C) :- p(A, B) & q(B, C).
            p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.1, A) & =(Ans.2, B).
            q(B, C) :- in(C, d2:q_bf(B)).
            ",
        )
        .unwrap();
        assert!(validate_program(&p).is_ok());
    }

    #[test]
    fn head_var_missing_from_body_fails() {
        let r = parse_rule("p(A, B) :- in(A, d:f('x')).").unwrap();
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("head variable `B`"));
    }

    #[test]
    fn unboundable_call_argument_fails() {
        // Z is only consumed (as a call argument), never produced.
        let r = parse_rule("p(A) :- in(A, d:f(Z)).").unwrap();
        let err = validate_rule(&r).unwrap_err();
        assert!(err.to_string().contains("`Z`"));
    }

    #[test]
    fn condition_var_unbound_fails() {
        let r = parse_rule("p(A) :- in(A, d:f()) & >(W, 5).").unwrap();
        assert!(validate_rule(&r).is_err());
    }

    #[test]
    fn chained_bindings_are_groundable() {
        // B is bound by the first call (as target), consumed by the second.
        let r = parse_rule("p(A) :- in(B, d:f()) & in(A, d:g(B)).").unwrap();
        assert!(validate_rule(&r).is_ok());
    }

    #[test]
    fn binding_order_in_text_does_not_matter() {
        // The consumer is written before the producer; still valid because
        // validation is ordering-independent (the rewriter reorders).
        let r = parse_rule("p(A) :- in(A, d:g(B)) & in(B, d:f()).").unwrap();
        assert!(validate_rule(&r).is_ok());
    }

    #[test]
    fn non_ground_fact_fails() {
        let r = parse_rule("p(A).").unwrap();
        assert!(validate_rule(&r).is_err());
        let ok = parse_rule("p('a').").unwrap();
        assert!(validate_rule(&ok).is_ok());
    }

    #[test]
    fn invariant_free_condition_var_fails() {
        let inv = parse_invariant("W > 5 => d:f(X) = d:g(X).").unwrap();
        assert!(validate_invariant(&inv).is_err());
        let ok = parse_invariant("X > 5 => d:f(X) = d:g(X).").unwrap();
        assert!(validate_invariant(&ok).is_ok());
    }
}
