//! Structured diagnostics emitted by the analyzer.
//!
//! Every finding carries a stable code (`HA001`…), a severity, a locus
//! (which rule/invariant/query form it is about), a human message, and an
//! optional suggestion. Codes are stable so tests, CI, and users can match
//! on them; messages are free to improve over time.

use crate::fingerprint::Fingerprint;
use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: nothing is wrong — the finding is an inventory entry
    /// or an optimization opportunity (the `HA07x` materialization family).
    /// Notes never affect `hermes-lint`'s exit status.
    Note,
    /// The program is still executable, but something looks wrong or will
    /// hurt (dead rules, estimator blind spots, redundant invariants).
    Warning,
    /// The program (or invariant set) is broken: registering it would only
    /// defer the failure to query time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => f.write_str("note"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable diagnostic codes, one per distinct kind of finding.
///
/// Numbering groups by pass: `HA00x` dependency graph, `HA01x` adornment
/// feasibility, `HA02x` domain signatures, `HA03x` invariants, `HA04x`
/// cost coverage, `HA05x` parallelizability, `HA06x` cacheability,
/// `HA07x` materialization safety, `HA08x` lint directives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `HA001` — recursive predicate cycle; the nested-loops executor
    /// cannot terminate on recursion.
    RecursiveCycle,
    /// `HA002` — a body atom references a predicate no rule defines.
    UndefinedPredicate,
    /// `HA003` — a predicate is unreachable from every declared query form
    /// (dead rules).
    UnreachablePredicate,
    /// `HA004` — a predicate mixes ground facts and proper rules.
    MixedFactsAndRules,
    /// `HA005` — a variable can never become ground in any subgoal order.
    UngroundableVariable,
    /// `HA006` — a head variable does not occur in the body.
    HeadVarNotInBody,
    /// `HA007` — a fact (empty body) contains variables.
    NonGroundFact,
    /// `HA010` — no rule admits an executable ordering under a declared
    /// query adornment.
    InfeasibleAdornment,
    /// `HA020` — a domain call names an unregistered domain.
    UnknownDomain,
    /// `HA021` — a domain call names a function the domain does not export.
    UnknownFunction,
    /// `HA022` — a domain call's arity disagrees with the signature.
    ArityMismatch,
    /// `HA030` — an invariant condition mentions a variable that appears in
    /// neither call.
    FreeConditionVariable,
    /// `HA031` — equality invariants form a substitution cycle that can
    /// make rewriting loop.
    CyclicInvariantChain,
    /// `HA032` — an invariant's condition can never be satisfied.
    UnsatisfiableCondition,
    /// `HA033` — an invariant duplicates another (up to renaming/flipping).
    DuplicateInvariant,
    /// `HA034` — the `⊆`/`⊇` direction looks wrong given the condition.
    SuspiciousDirection,
    /// `HA040` — a call pattern has neither DCSM statistics nor a native
    /// estimator; costing falls back to the prior.
    EstimatorBlindSpot,
    /// `HA050` — under a declared adornment, a rule's domain calls can only
    /// run one after another, while a more-bound adornment would let two or
    /// more dispatch concurrently (the parallel scheduler overlaps only
    /// calls that are ground at the same point).
    SerializedParallelizable,
    /// `HA060` — the program makes domain calls, but none is routed
    /// through the CIM and no invariant is declared: the `cache-only`
    /// plan tier can never serve it, so under overload (or an explicit
    /// cache-only request) every query comes back empty.
    CacheStarved,
    /// `HA070` — a rule's subplan is safe to materialize: pure domain
    /// calls, non-recursive, and no volatile source feeds it.
    MaterializeSafe,
    /// `HA071` — a subplan reads a volatile source (declared `%! volatile`,
    /// or routed around the CIM), so a materialized copy would go stale
    /// with no invalidation signal.
    MaterializeVolatile,
    /// `HA072` — a subplan sits on a recursive SCC; materializing it needs
    /// semi-naive/delta evaluation, not a one-shot snapshot.
    MaterializeRecursive,
    /// `HA073` — the same subplan fingerprint appears in two or more rules:
    /// materializing it once serves all of them.
    SharedSubplan,
    /// `HA074` — invalidation scope: which domain:function updates dirty
    /// which materialized fingerprints.
    InvalidationScope,
    /// `HA080` — a `%!` directive's arguments are malformed.
    MalformedDirective,
    /// `HA081` — an unknown `%!` directive name.
    UnknownDirective,
    /// `HA082` — a `%!` directive repeats an earlier declaration verbatim.
    DuplicateDirective,
}

impl DiagCode {
    /// The stable `HAxxx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::RecursiveCycle => "HA001",
            DiagCode::UndefinedPredicate => "HA002",
            DiagCode::UnreachablePredicate => "HA003",
            DiagCode::MixedFactsAndRules => "HA004",
            DiagCode::UngroundableVariable => "HA005",
            DiagCode::HeadVarNotInBody => "HA006",
            DiagCode::NonGroundFact => "HA007",
            DiagCode::InfeasibleAdornment => "HA010",
            DiagCode::UnknownDomain => "HA020",
            DiagCode::UnknownFunction => "HA021",
            DiagCode::ArityMismatch => "HA022",
            DiagCode::FreeConditionVariable => "HA030",
            DiagCode::CyclicInvariantChain => "HA031",
            DiagCode::UnsatisfiableCondition => "HA032",
            DiagCode::DuplicateInvariant => "HA033",
            DiagCode::SuspiciousDirection => "HA034",
            DiagCode::EstimatorBlindSpot => "HA040",
            DiagCode::SerializedParallelizable => "HA050",
            DiagCode::CacheStarved => "HA060",
            DiagCode::MaterializeSafe => "HA070",
            DiagCode::MaterializeVolatile => "HA071",
            DiagCode::MaterializeRecursive => "HA072",
            DiagCode::SharedSubplan => "HA073",
            DiagCode::InvalidationScope => "HA074",
            DiagCode::MalformedDirective => "HA080",
            DiagCode::UnknownDirective => "HA081",
            DiagCode::DuplicateDirective => "HA082",
        }
    }

    /// Parses the stable `HAxxx` string back to a code.
    pub fn from_code(text: &str) -> Option<Self> {
        DiagCode::all().iter().copied().find(|c| c.as_str() == text)
    }

    /// Every code, in `HAxxx` order.
    pub fn all() -> &'static [DiagCode] {
        &[
            DiagCode::RecursiveCycle,
            DiagCode::UndefinedPredicate,
            DiagCode::UnreachablePredicate,
            DiagCode::MixedFactsAndRules,
            DiagCode::UngroundableVariable,
            DiagCode::HeadVarNotInBody,
            DiagCode::NonGroundFact,
            DiagCode::InfeasibleAdornment,
            DiagCode::UnknownDomain,
            DiagCode::UnknownFunction,
            DiagCode::ArityMismatch,
            DiagCode::FreeConditionVariable,
            DiagCode::CyclicInvariantChain,
            DiagCode::UnsatisfiableCondition,
            DiagCode::DuplicateInvariant,
            DiagCode::SuspiciousDirection,
            DiagCode::EstimatorBlindSpot,
            DiagCode::SerializedParallelizable,
            DiagCode::CacheStarved,
            DiagCode::MaterializeSafe,
            DiagCode::MaterializeVolatile,
            DiagCode::MaterializeRecursive,
            DiagCode::SharedSubplan,
            DiagCode::InvalidationScope,
            DiagCode::MalformedDirective,
            DiagCode::UnknownDirective,
            DiagCode::DuplicateDirective,
        ]
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::RecursiveCycle
            | DiagCode::UndefinedPredicate
            | DiagCode::MixedFactsAndRules
            | DiagCode::UngroundableVariable
            | DiagCode::HeadVarNotInBody
            | DiagCode::NonGroundFact
            | DiagCode::InfeasibleAdornment
            | DiagCode::UnknownDomain
            | DiagCode::UnknownFunction
            | DiagCode::ArityMismatch
            | DiagCode::FreeConditionVariable
            | DiagCode::MalformedDirective
            | DiagCode::UnknownDirective => Severity::Error,
            DiagCode::UnreachablePredicate
            | DiagCode::CyclicInvariantChain
            | DiagCode::UnsatisfiableCondition
            | DiagCode::DuplicateInvariant
            | DiagCode::SuspiciousDirection
            | DiagCode::EstimatorBlindSpot
            | DiagCode::SerializedParallelizable
            | DiagCode::CacheStarved
            | DiagCode::DuplicateDirective => Severity::Warning,
            DiagCode::MaterializeSafe
            | DiagCode::MaterializeVolatile
            | DiagCode::MaterializeRecursive
            | DiagCode::SharedSubplan
            | DiagCode::InvalidationScope => Severity::Note,
        }
    }

    /// One-line meaning, used by `hermes-lint --explain` and docs.
    pub fn title(self) -> &'static str {
        match self {
            DiagCode::RecursiveCycle => "recursive predicate cycle",
            DiagCode::UndefinedPredicate => "body references an undefined predicate",
            DiagCode::UnreachablePredicate => "predicate unreachable from every query form",
            DiagCode::MixedFactsAndRules => "predicate mixes ground facts and rules",
            DiagCode::UngroundableVariable => "variable can never become ground",
            DiagCode::HeadVarNotInBody => "head variable does not occur in the body",
            DiagCode::NonGroundFact => "fact contains variables",
            DiagCode::InfeasibleAdornment => "no executable ordering under a declared adornment",
            DiagCode::UnknownDomain => "call names an unregistered domain",
            DiagCode::UnknownFunction => "call names a function the domain does not export",
            DiagCode::ArityMismatch => "call arity disagrees with the signature",
            DiagCode::FreeConditionVariable => "invariant condition variable appears in no call",
            DiagCode::CyclicInvariantChain => "equality invariants form a substitution cycle",
            DiagCode::UnsatisfiableCondition => "invariant condition can never hold",
            DiagCode::DuplicateInvariant => "invariant duplicates another",
            DiagCode::SuspiciousDirection => "invariant direction looks inverted",
            DiagCode::EstimatorBlindSpot => "call pattern costed only from the prior",
            DiagCode::SerializedParallelizable => "adornment serializes parallelizable calls",
            DiagCode::CacheStarved => "cache-only tier can never serve this program",
            DiagCode::MaterializeSafe => "subplan is safe to materialize",
            DiagCode::MaterializeVolatile => "subplan reads a volatile source",
            DiagCode::MaterializeRecursive => "recursive subplan needs delta evaluation",
            DiagCode::SharedSubplan => "identical subplan shared by several rules",
            DiagCode::InvalidationScope => "source updates that dirty materialized subplans",
            DiagCode::MalformedDirective => "malformed `%!` directive arguments",
            DiagCode::UnknownDirective => "unknown `%!` directive",
            DiagCode::DuplicateDirective => "duplicate `%!` directive",
        }
    }

    /// A longer explanation for `hermes-lint --explain HAxxx`.
    pub fn explain(self) -> &'static str {
        match self {
            DiagCode::RecursiveCycle => {
                "The rewriter flattens rules into finite plans and cannot \
                 terminate on recursion. Break the cycle by unrolling bounded \
                 traversals into distinct predicates."
            }
            DiagCode::UndefinedPredicate => {
                "A rule body references a predicate that no rule defines; \
                 every query through it returns nothing. Check the name and \
                 arity — a near-miss arity is reported in the suggestion."
            }
            DiagCode::UnreachablePredicate => {
                "No declared `%! query` form can reach this predicate, so its \
                 rules are dead weight. Delete them or declare a query form."
            }
            DiagCode::MixedFactsAndRules => {
                "A predicate defined by both ground facts and proper rules is \
                 usually a modelling slip; move the facts into a separate \
                 predicate with a bridging rule."
            }
            DiagCode::UngroundableVariable => {
                "Domain calls must be ground when issued (§3). This variable \
                 is never bound by any subgoal order, so no executable \
                 ordering of the body exists."
            }
            DiagCode::HeadVarNotInBody => {
                "A head variable the body never binds makes every answer \
                 non-ground. Bind it in the body or drop it from the head."
            }
            DiagCode::NonGroundFact => {
                "A fact (a rule with an empty body) must be ground; a \
                 variable in a fact matches everything."
            }
            DiagCode::InfeasibleAdornment => {
                "Under a declared query adornment, no rule for the predicate \
                 admits an executable subgoal ordering — queries of that form \
                 will always fail at plan time."
            }
            DiagCode::UnknownDomain => {
                "The call names a domain that is not registered (or not \
                 declared via `%! domain`)."
            }
            DiagCode::UnknownFunction => "The domain exists but does not export this function.",
            DiagCode::ArityMismatch => {
                "The call passes a different number of arguments than the \
                 domain's declared signature."
            }
            DiagCode::FreeConditionVariable => {
                "An invariant condition mentions a variable that appears in \
                 neither call, so the condition can never be checked against \
                 a concrete call (§4)."
            }
            DiagCode::CyclicInvariantChain => {
                "Equality invariants chain into a substitution cycle; the \
                 rewriter could loop replacing calls forever."
            }
            DiagCode::UnsatisfiableCondition => {
                "The invariant's guard contradicts itself, so the invariant \
                 never fires."
            }
            DiagCode::DuplicateInvariant => {
                "The invariant restates another (up to renaming and \
                 flipping); drop one copy."
            }
            DiagCode::SuspiciousDirection => {
                "The containment direction disagrees with what the guard \
                 implies; a wrong direction silently returns partial answers."
            }
            DiagCode::EstimatorBlindSpot => {
                "Neither DCSM statistics nor a native estimator cover this \
                 call pattern; the optimizer costs it from the prior and may \
                 pick bad plans. Profile the pattern or ship an estimator."
            }
            DiagCode::SerializedParallelizable => {
                "Under the declared adornment the rule's calls can only run \
                 sequentially, while a more-bound adornment would let them \
                 overlap."
            }
            DiagCode::CacheStarved => {
                "No call routes through the CIM and no invariant is declared, \
                 so the cache-only plan tier always returns empty answers \
                 under overload."
            }
            DiagCode::MaterializeSafe => {
                "The rule's subplan makes only pure, non-recursive, \
                 non-volatile domain calls: its answer set can be cached \
                 whole under its canonical fingerprint and reused until a \
                 source in its invalidation scope (HA074) changes."
            }
            DiagCode::MaterializeVolatile => {
                "A source feeding this subplan is declared `%! volatile` or \
                 is routed around the CIM, so there is no invalidation signal \
                 for a materialized copy — it would serve stale answers. \
                 Route the source through the CIM or leave the subplan \
                 unmaterialized."
            }
            DiagCode::MaterializeRecursive => {
                "The subplan belongs to a recursive SCC; a one-shot snapshot \
                 is not a fixpoint. Materializing it requires semi-naive or \
                 delta evaluation to maintain."
            }
            DiagCode::SharedSubplan => {
                "Two or more rules evaluate the same canonical subplan \
                 (identical fingerprint): materializing it once serves all of \
                 them, saving roughly (occurrences - 1) times the subplan's \
                 estimated cost per multi-rule query."
            }
            DiagCode::InvalidationScope => {
                "Inventory of which domain:function updates dirty which \
                 materialized fingerprints; a subplan cache subscribes to \
                 exactly these sources for invalidation."
            }
            DiagCode::MalformedDirective => {
                "The `%!` directive was recognized but its arguments do not \
                 parse; the directive is ignored, which may silently disable \
                 the pass it would have enabled."
            }
            DiagCode::UnknownDirective => {
                "`%!` starts a lint directive, but this name is not one of \
                 `query`, `domain`, `estimator`, `invariant`, `cache`, or \
                 `volatile`. A typo here silently disables checks."
            }
            DiagCode::DuplicateDirective => {
                "The directive repeats an earlier declaration verbatim; drop \
                 one copy (a changed copy would shadow nothing — declarations \
                 accumulate)."
            }
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a diagnostic is about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Locus {
    /// The program as a whole (cycles spanning rules, reachability).
    Program,
    /// A specific rule, by index in the program and rendered head.
    Rule {
        /// Index into `Program::rules`.
        index: usize,
        /// The rendered head atom, e.g. `p(A, B)`.
        head: String,
    },
    /// A specific invariant, by index in the analyzed list.
    Invariant {
        /// Index into the analyzed invariant list.
        index: usize,
        /// The rendered invariant.
        text: String,
    },
    /// A declared query form, e.g. `route(b, f)`.
    QueryForm {
        /// The rendered form.
        text: String,
    },
    /// A domain-call pattern, e.g. `ingres:select_eq('inventory', $b, $b)`.
    CallPattern {
        /// The rendered pattern.
        text: String,
    },
    /// A `%!` lint directive, by source line (1-based).
    Directive {
        /// 1-based source line of the directive.
        line: usize,
        /// The directive text.
        text: String,
    },
}

impl Locus {
    /// A stable ordering key: variant rank, then the variant's own index
    /// (rule/invariant index, directive line), then its text. Used to sort
    /// reports deterministically regardless of pass-execution order.
    pub fn sort_key(&self) -> (u8, usize, &str) {
        match self {
            Locus::Program => (0, 0, ""),
            Locus::Rule { index, head } => (1, *index, head),
            Locus::Invariant { index, text } => (2, *index, text),
            Locus::QueryForm { text } => (3, 0, text),
            Locus::CallPattern { text } => (4, 0, text),
            Locus::Directive { line, text } => (5, *line, text),
        }
    }
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Program => f.write_str("program"),
            Locus::Rule { index, head } => write!(f, "rule #{index} `{head}`"),
            Locus::Invariant { index, text } => {
                write!(f, "invariant #{index} `{text}`")
            }
            Locus::QueryForm { text } => write!(f, "query form `{text}`"),
            Locus::CallPattern { text } => write!(f, "call pattern `{text}`"),
            Locus::Directive { line, text } => write!(f, "directive (line {line}) `{text}`"),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What the finding is about.
    pub locus: Locus,
    /// Human-readable explanation.
    pub message: String,
    /// Optional actionable hint.
    pub suggestion: Option<String>,
    /// The canonical subplan fingerprint this finding is about, if any
    /// (the `HA07x` materialization family attaches it so tooling can join
    /// findings against a subplan cache).
    pub fingerprint: Option<Fingerprint>,
}

impl Diagnostic {
    /// Builds a diagnostic; severity comes from the code.
    pub fn new(code: DiagCode, locus: Locus, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            locus,
            message: message.into(),
            suggestion: None,
            fingerprint: None,
        }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }

    /// Attaches a subplan fingerprint.
    pub fn with_fingerprint(mut self, fp: Fingerprint) -> Self {
        self.fingerprint = Some(fp);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.locus, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// Everything the analyzer found, in pass order.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// The note-severity findings (the materialization inventory).
    pub fn notes(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Note)
            .collect()
    }

    /// Sorts findings by `(code, locus, message)` and collapses exact
    /// duplicates, making output independent of pass-execution order.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            (a.code, a.locus.sort_key(), &a.message, &a.suggestion).cmp(&(
                b.code,
                b.locus.sort_key(),
                &b.message,
                &b.suggestion,
            ))
        });
        self.diagnostics.dedup();
    }

    /// True when some finding carries `code`.
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders every finding, one per line (suggestions indented below).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_derived_from_code() {
        let d = Diagnostic::new(DiagCode::RecursiveCycle, Locus::Program, "cycle p/1 -> p/1");
        assert_eq!(d.severity, Severity::Error);
        let w = Diagnostic::new(
            DiagCode::EstimatorBlindSpot,
            Locus::CallPattern {
                text: "d:f($b)".into(),
            },
            "no stats",
        );
        assert_eq!(w.severity, Severity::Warning);
    }

    #[test]
    fn render_includes_code_locus_and_suggestion() {
        let d = Diagnostic::new(
            DiagCode::UngroundableVariable,
            Locus::Rule {
                index: 0,
                head: "p(A)".into(),
            },
            "variable `Z` can never become ground",
        )
        .with_suggestion("bind `Z` via an `in(...)` answer target");
        let text = d.to_string();
        assert!(text.contains("error[HA005] rule #0 `p(A)`"));
        assert!(text.contains("help: bind `Z`"));
    }

    #[test]
    fn report_partitions_by_severity() {
        let mut r = AnalysisReport::default();
        assert!(r.is_clean() && !r.has_errors());
        r.diagnostics.push(Diagnostic::new(
            DiagCode::DuplicateInvariant,
            Locus::Program,
            "dup",
        ));
        assert!(!r.has_errors());
        r.diagnostics.push(Diagnostic::new(
            DiagCode::UndefinedPredicate,
            Locus::Program,
            "missing",
        ));
        assert!(r.has_errors());
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.warnings().len(), 1);
        assert!(r.has_code(DiagCode::UndefinedPredicate));
        assert!(!r.has_code(DiagCode::RecursiveCycle));
    }

    #[test]
    fn every_code_round_trips_and_explains() {
        for code in DiagCode::all() {
            assert_eq!(DiagCode::from_code(code.as_str()), Some(*code));
            assert!(!code.title().is_empty());
            assert!(!code.explain().is_empty());
        }
        assert_eq!(DiagCode::from_code("HA999"), None);
        // `all()` is sorted by code string and free of duplicates.
        let strs: Vec<&str> = DiagCode::all().iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(strs, sorted);
    }

    #[test]
    fn notes_rank_below_warnings_and_never_count_as_errors() {
        assert!(Severity::Note < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        let mut r = AnalysisReport::default();
        r.diagnostics.push(Diagnostic::new(
            DiagCode::MaterializeSafe,
            Locus::Program,
            "x",
        ));
        assert!(!r.has_errors());
        assert_eq!(r.notes().len(), 1);
        assert!(r.warnings().is_empty());
    }

    #[test]
    fn normalize_sorts_by_code_then_locus_and_dedups() {
        let mk = |code, index| {
            Diagnostic::new(
                code,
                Locus::Rule {
                    index,
                    head: format!("p{index}()"),
                },
                "m",
            )
        };
        let mut r = AnalysisReport {
            diagnostics: vec![
                mk(DiagCode::CacheStarved, 1),
                mk(DiagCode::RecursiveCycle, 2),
                mk(DiagCode::RecursiveCycle, 0),
                mk(DiagCode::CacheStarved, 1),
            ],
        };
        r.normalize();
        let got: Vec<(DiagCode, (u8, usize, String))> = r
            .diagnostics
            .iter()
            .map(|d| {
                let (a, b, c) = d.locus.sort_key();
                (d.code, (a, b, c.to_string()))
            })
            .collect();
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, DiagCode::RecursiveCycle);
        assert_eq!(got[0].1 .1, 0);
        assert_eq!(got[1].1 .1, 2);
        assert_eq!(got[2].0, DiagCode::CacheStarved);
    }
}
