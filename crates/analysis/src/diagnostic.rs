//! Structured diagnostics emitted by the analyzer.
//!
//! Every finding carries a stable code (`HA001`…), a severity, a locus
//! (which rule/invariant/query form it is about), a human message, and an
//! optional suggestion. Codes are stable so tests, CI, and users can match
//! on them; messages are free to improve over time.

use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program is still executable, but something looks wrong or will
    /// hurt (dead rules, estimator blind spots, redundant invariants).
    Warning,
    /// The program (or invariant set) is broken: registering it would only
    /// defer the failure to query time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Stable diagnostic codes, one per distinct kind of finding.
///
/// Numbering groups by pass: `HA00x` dependency graph, `HA01x` adornment
/// feasibility, `HA02x` domain signatures, `HA03x` invariants, `HA04x`
/// cost coverage, `HA05x` parallelizability, `HA06x` cacheability.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagCode {
    /// `HA001` — recursive predicate cycle; the nested-loops executor
    /// cannot terminate on recursion.
    RecursiveCycle,
    /// `HA002` — a body atom references a predicate no rule defines.
    UndefinedPredicate,
    /// `HA003` — a predicate is unreachable from every declared query form
    /// (dead rules).
    UnreachablePredicate,
    /// `HA004` — a predicate mixes ground facts and proper rules.
    MixedFactsAndRules,
    /// `HA005` — a variable can never become ground in any subgoal order.
    UngroundableVariable,
    /// `HA006` — a head variable does not occur in the body.
    HeadVarNotInBody,
    /// `HA007` — a fact (empty body) contains variables.
    NonGroundFact,
    /// `HA010` — no rule admits an executable ordering under a declared
    /// query adornment.
    InfeasibleAdornment,
    /// `HA020` — a domain call names an unregistered domain.
    UnknownDomain,
    /// `HA021` — a domain call names a function the domain does not export.
    UnknownFunction,
    /// `HA022` — a domain call's arity disagrees with the signature.
    ArityMismatch,
    /// `HA030` — an invariant condition mentions a variable that appears in
    /// neither call.
    FreeConditionVariable,
    /// `HA031` — equality invariants form a substitution cycle that can
    /// make rewriting loop.
    CyclicInvariantChain,
    /// `HA032` — an invariant's condition can never be satisfied.
    UnsatisfiableCondition,
    /// `HA033` — an invariant duplicates another (up to renaming/flipping).
    DuplicateInvariant,
    /// `HA034` — the `⊆`/`⊇` direction looks wrong given the condition.
    SuspiciousDirection,
    /// `HA040` — a call pattern has neither DCSM statistics nor a native
    /// estimator; costing falls back to the prior.
    EstimatorBlindSpot,
    /// `HA050` — under a declared adornment, a rule's domain calls can only
    /// run one after another, while a more-bound adornment would let two or
    /// more dispatch concurrently (the parallel scheduler overlaps only
    /// calls that are ground at the same point).
    SerializedParallelizable,
    /// `HA060` — the program makes domain calls, but none is routed
    /// through the CIM and no invariant is declared: the `cache-only`
    /// plan tier can never serve it, so under overload (or an explicit
    /// cache-only request) every query comes back empty.
    CacheStarved,
}

impl DiagCode {
    /// The stable `HAxxx` string.
    pub fn as_str(self) -> &'static str {
        match self {
            DiagCode::RecursiveCycle => "HA001",
            DiagCode::UndefinedPredicate => "HA002",
            DiagCode::UnreachablePredicate => "HA003",
            DiagCode::MixedFactsAndRules => "HA004",
            DiagCode::UngroundableVariable => "HA005",
            DiagCode::HeadVarNotInBody => "HA006",
            DiagCode::NonGroundFact => "HA007",
            DiagCode::InfeasibleAdornment => "HA010",
            DiagCode::UnknownDomain => "HA020",
            DiagCode::UnknownFunction => "HA021",
            DiagCode::ArityMismatch => "HA022",
            DiagCode::FreeConditionVariable => "HA030",
            DiagCode::CyclicInvariantChain => "HA031",
            DiagCode::UnsatisfiableCondition => "HA032",
            DiagCode::DuplicateInvariant => "HA033",
            DiagCode::SuspiciousDirection => "HA034",
            DiagCode::EstimatorBlindSpot => "HA040",
            DiagCode::SerializedParallelizable => "HA050",
            DiagCode::CacheStarved => "HA060",
        }
    }

    /// The severity this code always carries.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::RecursiveCycle
            | DiagCode::UndefinedPredicate
            | DiagCode::MixedFactsAndRules
            | DiagCode::UngroundableVariable
            | DiagCode::HeadVarNotInBody
            | DiagCode::NonGroundFact
            | DiagCode::InfeasibleAdornment
            | DiagCode::UnknownDomain
            | DiagCode::UnknownFunction
            | DiagCode::ArityMismatch
            | DiagCode::FreeConditionVariable => Severity::Error,
            DiagCode::UnreachablePredicate
            | DiagCode::CyclicInvariantChain
            | DiagCode::UnsatisfiableCondition
            | DiagCode::DuplicateInvariant
            | DiagCode::SuspiciousDirection
            | DiagCode::EstimatorBlindSpot
            | DiagCode::SerializedParallelizable
            | DiagCode::CacheStarved => Severity::Warning,
        }
    }
}

impl fmt::Display for DiagCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What a diagnostic is about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Locus {
    /// The program as a whole (cycles spanning rules, reachability).
    Program,
    /// A specific rule, by index in the program and rendered head.
    Rule {
        /// Index into `Program::rules`.
        index: usize,
        /// The rendered head atom, e.g. `p(A, B)`.
        head: String,
    },
    /// A specific invariant, by index in the analyzed list.
    Invariant {
        /// Index into the analyzed invariant list.
        index: usize,
        /// The rendered invariant.
        text: String,
    },
    /// A declared query form, e.g. `route(b, f)`.
    QueryForm {
        /// The rendered form.
        text: String,
    },
    /// A domain-call pattern, e.g. `ingres:select_eq('inventory', $b, $b)`.
    CallPattern {
        /// The rendered pattern.
        text: String,
    },
}

impl fmt::Display for Locus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Locus::Program => f.write_str("program"),
            Locus::Rule { index, head } => write!(f, "rule #{index} `{head}`"),
            Locus::Invariant { index, text } => {
                write!(f, "invariant #{index} `{text}`")
            }
            Locus::QueryForm { text } => write!(f, "query form `{text}`"),
            Locus::CallPattern { text } => write!(f, "call pattern `{text}`"),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: DiagCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// What the finding is about.
    pub locus: Locus,
    /// Human-readable explanation.
    pub message: String,
    /// Optional actionable hint.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds a diagnostic; severity comes from the code.
    pub fn new(code: DiagCode, locus: Locus, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            locus,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.locus, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  help: {s}")?;
        }
        Ok(())
    }
}

/// Everything the analyzer found, in pass order.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// True when no findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// True when at least one error-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// True when some finding carries `code`.
    pub fn has_code(&self, code: DiagCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Renders every finding, one per line (suggestions indented below).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_is_derived_from_code() {
        let d = Diagnostic::new(DiagCode::RecursiveCycle, Locus::Program, "cycle p/1 -> p/1");
        assert_eq!(d.severity, Severity::Error);
        let w = Diagnostic::new(
            DiagCode::EstimatorBlindSpot,
            Locus::CallPattern {
                text: "d:f($b)".into(),
            },
            "no stats",
        );
        assert_eq!(w.severity, Severity::Warning);
    }

    #[test]
    fn render_includes_code_locus_and_suggestion() {
        let d = Diagnostic::new(
            DiagCode::UngroundableVariable,
            Locus::Rule {
                index: 0,
                head: "p(A)".into(),
            },
            "variable `Z` can never become ground",
        )
        .with_suggestion("bind `Z` via an `in(...)` answer target");
        let text = d.to_string();
        assert!(text.contains("error[HA005] rule #0 `p(A)`"));
        assert!(text.contains("help: bind `Z`"));
    }

    #[test]
    fn report_partitions_by_severity() {
        let mut r = AnalysisReport::default();
        assert!(r.is_clean() && !r.has_errors());
        r.diagnostics.push(Diagnostic::new(
            DiagCode::DuplicateInvariant,
            Locus::Program,
            "dup",
        ));
        assert!(!r.has_errors());
        r.diagnostics.push(Diagnostic::new(
            DiagCode::UndefinedPredicate,
            Locus::Program,
            "missing",
        ));
        assert!(r.has_errors());
        assert_eq!(r.errors().len(), 1);
        assert_eq!(r.warnings().len(), 1);
        assert!(r.has_code(DiagCode::UndefinedPredicate));
        assert!(!r.has_code(DiagCode::RecursiveCycle));
    }
}
