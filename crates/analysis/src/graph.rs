//! Pass 1 — predicate dependency graph.
//!
//! Builds the graph whose nodes are defined predicate identities
//! (`name/arity`) and whose edges go from a rule head to every IDB predicate
//! its body references, then checks:
//!
//! * **HA001** recursion (an SCC of size > 1 or a self-loop) — the
//!   nested-loops rewriter/executor flattens rules and cannot terminate on
//!   recursive programs;
//! * **HA002** references to predicates no rule defines;
//! * **HA003** predicates unreachable from every declared query form
//!   (dead rules) — only checked when query forms are declared;
//! * **HA004** predicates that mix ground facts and proper rules.

use crate::analyzer::QueryForm;
use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use hermes_lang::{BodyAtom, Program};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

type PredKey = (Arc<str>, usize);

fn fmt_key(k: &PredKey) -> String {
    format!("{}/{}", k.0, k.1)
}

/// Runs the pass.
pub(crate) fn run(program: &Program, query_forms: &[QueryForm], out: &mut Vec<Diagnostic>) {
    let defined: BTreeSet<PredKey> = program.defined_predicates();
    let mut edges: BTreeMap<PredKey, BTreeSet<PredKey>> = BTreeMap::new();
    for k in &defined {
        edges.entry(k.clone()).or_default();
    }

    // HA002 + edge construction.
    for (index, rule) in program.rules.iter().enumerate() {
        let head = rule.head.key();
        for atom in &rule.body {
            if let BodyAtom::Pred(p) = atom {
                let k = p.key();
                if defined.contains(&k) {
                    edges.entry(head.clone()).or_default().insert(k);
                } else {
                    let mut d = Diagnostic::new(
                        DiagCode::UndefinedPredicate,
                        Locus::Rule {
                            index,
                            head: rule.head.to_string(),
                        },
                        format!("body references `{}`, which no rule defines", fmt_key(&k)),
                    );
                    let same_name: Vec<String> = defined
                        .iter()
                        .filter(|(n, _)| n == &k.0)
                        .map(fmt_key)
                        .collect();
                    if !same_name.is_empty() {
                        d = d.with_suggestion(format!(
                            "a predicate with this name exists at a \
                             different arity: {}",
                            same_name.join(", ")
                        ));
                    }
                    out.push(d);
                }
            }
        }
    }

    // HA001: strongly connected components of the defined-predicate graph.
    for scc in sccs(&edges) {
        let recursive = scc.len() > 1
            || edges
                .get(&scc[0])
                .is_some_and(|succ| succ.contains(&scc[0]));
        if recursive {
            let cycle: Vec<String> = scc.iter().chain(scc.first()).map(fmt_key).collect();
            out.push(
                Diagnostic::new(
                    DiagCode::RecursiveCycle,
                    Locus::Program,
                    format!(
                        "recursive cycle {}; the rewriter flattens rules \
                         and cannot terminate on recursion",
                        cycle.join(" -> ")
                    ),
                )
                .with_suggestion(
                    "break the cycle: bounded traversals must be unrolled \
                     into distinct predicates",
                ),
            );
        }
    }

    // HA004: a predicate defined by both facts and proper rules.
    for key in &defined {
        let defs = program.rules_for(&key.0, key.1);
        let facts = defs.iter().filter(|r| r.body.is_empty()).count();
        if facts > 0 && facts < defs.len() {
            out.push(
                Diagnostic::new(
                    DiagCode::MixedFactsAndRules,
                    Locus::Program,
                    format!(
                        "predicate `{}` mixes facts and rules ({} fact(s), \
                         {} rule(s))",
                        fmt_key(key),
                        facts,
                        defs.len() - facts
                    ),
                )
                .with_suggestion(
                    "move the facts into a separate predicate and add a \
                     bridging rule",
                ),
            );
        }
    }

    // HA003: reachability from declared query forms.
    if !query_forms.is_empty() {
        let mut reached: BTreeSet<PredKey> = BTreeSet::new();
        let mut stack: Vec<PredKey> = query_forms
            .iter()
            .map(|f| (f.pred.clone(), f.bound.len()))
            .filter(|k| defined.contains(k))
            .collect();
        while let Some(k) = stack.pop() {
            if !reached.insert(k.clone()) {
                continue;
            }
            if let Some(succ) = edges.get(&k) {
                stack.extend(succ.iter().cloned());
            }
        }
        for key in defined.iter().filter(|k| !reached.contains(*k)) {
            out.push(
                Diagnostic::new(
                    DiagCode::UnreachablePredicate,
                    Locus::Program,
                    format!(
                        "predicate `{}` is unreachable from every declared \
                         query form (dead rules)",
                        fmt_key(key)
                    ),
                )
                .with_suggestion("delete the rules or declare a query form that uses them"),
            );
        }
    }
}

/// The predicate identities sitting on a recursive SCC (size > 1, or a
/// self-loop). Shared with the materialization pass (`HA072`), which must
/// not snapshot a fixpoint.
pub(crate) fn recursive_predicates(program: &Program) -> BTreeSet<PredKey> {
    let defined: BTreeSet<PredKey> = program.defined_predicates();
    let mut edges: BTreeMap<PredKey, BTreeSet<PredKey>> = BTreeMap::new();
    for k in &defined {
        edges.entry(k.clone()).or_default();
    }
    for rule in &program.rules {
        for atom in &rule.body {
            if let BodyAtom::Pred(p) = atom {
                let k = p.key();
                if defined.contains(&k) {
                    edges.entry(rule.head.key()).or_default().insert(k);
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    for scc in sccs(&edges) {
        let recursive = scc.len() > 1
            || edges
                .get(&scc[0])
                .is_some_and(|succ| succ.contains(&scc[0]));
        if recursive {
            out.extend(scc);
        }
    }
    out
}

/// Tarjan's strongly-connected-components algorithm (iterative bookkeeping
/// via recursion; mediator programs are small).
fn sccs(edges: &BTreeMap<PredKey, BTreeSet<PredKey>>) -> Vec<Vec<PredKey>> {
    struct State<'g> {
        edges: &'g BTreeMap<PredKey, BTreeSet<PredKey>>,
        index: usize,
        indices: BTreeMap<PredKey, usize>,
        lowlink: BTreeMap<PredKey, usize>,
        stack: Vec<PredKey>,
        on_stack: BTreeSet<PredKey>,
        out: Vec<Vec<PredKey>>,
    }
    fn visit(s: &mut State<'_>, v: &PredKey) {
        s.indices.insert(v.clone(), s.index);
        s.lowlink.insert(v.clone(), s.index);
        s.index += 1;
        s.stack.push(v.clone());
        s.on_stack.insert(v.clone());
        let succ: Vec<PredKey> = s
            .edges
            .get(v)
            .map(|e| e.iter().cloned().collect())
            .unwrap_or_default();
        for w in &succ {
            if !s.indices.contains_key(w) {
                visit(s, w);
                let wl = s.lowlink[w];
                let vl = s.lowlink.get_mut(v).unwrap_or_else(|| unreachable!());
                *vl = (*vl).min(wl);
            } else if s.on_stack.contains(w) {
                let wi = s.indices[w];
                let vl = s.lowlink.get_mut(v).unwrap_or_else(|| unreachable!());
                *vl = (*vl).min(wi);
            }
        }
        if s.lowlink[v] == s.indices[v] {
            let mut comp = Vec::new();
            while let Some(w) = s.stack.pop() {
                s.on_stack.remove(&w);
                let done = w == *v;
                comp.push(w);
                if done {
                    break;
                }
            }
            comp.reverse();
            s.out.push(comp);
        }
    }
    let mut s = State {
        edges,
        index: 0,
        indices: BTreeMap::new(),
        lowlink: BTreeMap::new(),
        stack: Vec::new(),
        on_stack: BTreeSet::new(),
        out: Vec::new(),
    };
    let nodes: Vec<PredKey> = edges.keys().cloned().collect();
    for v in &nodes {
        if !s.indices.contains_key(v) {
            visit(&mut s, v);
        }
    }
    s.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_program;

    fn diags(src: &str, forms: &[QueryForm]) -> Vec<Diagnostic> {
        let p = parse_program(src).unwrap();
        let mut out = Vec::new();
        run(&p, forms, &mut out);
        out
    }

    #[test]
    fn ha001_direct_and_mutual_recursion() {
        let out = diags("p(A) :- p(A).", &[]);
        assert!(out.iter().any(|d| d.code == DiagCode::RecursiveCycle));

        let out = diags("p(A) :- q(A).\n q(A) :- p(A).\n", &[]);
        let rec: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::RecursiveCycle)
            .collect();
        assert_eq!(rec.len(), 1);
        assert!(rec[0].message.contains("p/1"));
        assert!(rec[0].message.contains("q/1"));
    }

    #[test]
    fn ha002_undefined_predicate_with_arity_hint() {
        let out = diags("p(A) :- q(A, 'x').\n q(A) :- in(A, d:f()).\n", &[]);
        let miss: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::UndefinedPredicate)
            .collect();
        assert_eq!(miss.len(), 1);
        assert!(miss[0].message.contains("q/2"));
        assert!(miss[0].suggestion.as_deref().unwrap().contains("q/1"));
    }

    #[test]
    fn ha003_unreachable_only_with_query_forms() {
        let src = "p(A) :- in(A, d:f()).\n dead(A) :- in(A, d:g()).\n";
        assert!(diags(src, &[]).is_empty());
        let forms = vec![QueryForm::parse("p(f)").unwrap()];
        let out = diags(src, &forms);
        let dead: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::UnreachablePredicate)
            .collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].message.contains("dead/1"));
    }

    #[test]
    fn ha004_mixed_facts_and_rules() {
        let out = diags("p('a').\n p(A) :- in(A, d:f()).\n", &[]);
        assert!(out.iter().any(|d| d.code == DiagCode::MixedFactsAndRules));
    }

    #[test]
    fn clean_layered_program_has_no_graph_findings() {
        let out = diags(
            "m(A, C) :- p(A, B) & q(B, C).\n\
             p(A, B) :- in(Ans, d1:p_ff()) & =(Ans.1, A) & =(Ans.2, B).\n\
             q(B, C) :- in(C, d2:q_bf(B)).\n",
            &[QueryForm::parse("m(f, f)").unwrap()],
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
