//! Canonical subplan fingerprints.
//!
//! A *subplan* is a rule body (or query conjunction) evaluated under an
//! adornment: the set of variables bound before the body runs. Two
//! subplans that differ only by variable names, by the order of subgoals
//! that are independent of each other (§5's commutative reordering within
//! a dataflow layer), or by the spelling of a symmetric comparison compute
//! the same answer set — so a subplan result cache must give them the same
//! key, and the materialization analyzer must recognize them as shared.
//!
//! This module normalizes a body to a canonical form and hashes it:
//!
//! 1. **Layering.** Atoms are grouped into dataflow layers by the same
//!    groundability fixpoint the §3 validator uses: layer 0 holds every
//!    atom runnable from the entry bindings, layer *k+1* everything newly
//!    runnable once layer *k*'s bindings exist. Layer membership is a set
//!    property, so any textual order of the same body yields the same
//!    layers. Atoms that can never run land in a final "stuck" layer.
//! 2. **Structural keys.** Each atom gets a name-blind rendering (variables
//!    become `?b`/`?f` by entry-boundness), refined with a one-round
//!    Weisfeiler–Leman signature of its variables (which other atoms
//!    mention each variable, and where) so structurally identical atoms in
//!    different dataflow contexts sort apart.
//! 3. **Canonical naming.** Within each layer, atoms are placed greedily in
//!    sorted key order; as each atom is placed, its still-unnamed variables
//!    receive canonical names (`B0, B1, …` for bound-at-entry, `V0, V1, …`
//!    for free) in argument order. Comparisons are direction-normalized
//!    (`>` becomes `<` with swapped operands; `=`/`!=` operands sort).
//! 4. **Hashing.** The canonical rendering is hashed with FNV-1a 64 — a
//!    fixed, platform-independent function (the std hasher is seeded per
//!    process and would not produce stable keys).
//!
//! Constants stay literal: `d:f('x')` and `d:f('y')` are *different*
//! subplans — the right semantics for a result cache. Adornment is
//! normalized only up to renaming: *which* positions are bound still
//! distinguishes fingerprints, as §5 requires.

use hermes_lang::{BodyAtom, PathTerm, Relop, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// FNV-1a 64-bit: stable across platforms and processes, unlike
/// `DefaultHasher`. Good enough for 64-bit cache keys; collisions are
/// checked structurally by callers that keep the canonical form around.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// A stable 64-bit subplan fingerprint.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// The fixed-width hex form used in diagnostics and JSON output.
    pub fn to_hex(self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:016x}", self.0)
    }
}

/// A fingerprint plus the evidence behind it: the canonical rendering (for
/// collision checks and debugging) and the distinct domain calls the
/// subplan makes (its invalidation scope).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubplanKey {
    /// The stable hash of `canonical`.
    pub fingerprint: Fingerprint,
    /// The canonical rendering: layers joined by ` | `, atoms within a
    /// layer by ` & `, variables renamed to `B*`/`V*`.
    pub canonical: String,
    /// Sorted, distinct `(domain, function)` pairs the body calls — an
    /// update to any of them dirties a materialized copy of this subplan.
    pub calls: Vec<(Arc<str>, Arc<str>)>,
}

/// Fingerprints a body conjunction under `bound_at_entry` bindings.
pub fn fingerprint_body(body: &[BodyAtom], bound_at_entry: &BTreeSet<Arc<str>>) -> SubplanKey {
    let canonical = canonicalize(body, bound_at_entry);
    let mut calls: Vec<(Arc<str>, Arc<str>)> = body
        .iter()
        .filter_map(|a| match a {
            BodyAtom::In { call, .. } => Some((call.domain.clone(), call.function.clone())),
            _ => None,
        })
        .collect();
    calls.sort();
    calls.dedup();
    SubplanKey {
        fingerprint: Fingerprint(fnv1a64(canonical.as_bytes())),
        canonical,
        calls,
    }
}

/// Fingerprints a rule body under a head adornment: `bound[i]` says whether
/// head position `i` is bound when the rule is invoked.
pub fn fingerprint_rule(rule: &Rule, bound: &[bool]) -> SubplanKey {
    let seed: BTreeSet<Arc<str>> = rule
        .head
        .args
        .iter()
        .zip(bound.iter())
        .filter(|(_, b)| **b)
        .filter_map(|(t, _)| t.as_var().cloned())
        .collect();
    fingerprint_body(&rule.body, &seed)
}

/// Assigns each atom a dataflow layer via the groundability fixpoint; the
/// result is independent of the body's textual order.
fn layers(body: &[BodyAtom], bound_at_entry: &BTreeSet<Arc<str>>) -> Vec<usize> {
    let mut layer_of = vec![usize::MAX; body.len()];
    let mut bound = bound_at_entry.clone();
    let mut layer = 0usize;
    loop {
        let runnable: Vec<usize> = (0..body.len())
            .filter(|&i| layer_of[i] == usize::MAX && body[i].can_run(&bound))
            .collect();
        if runnable.is_empty() {
            break;
        }
        for &i in &runnable {
            layer_of[i] = layer;
        }
        for &i in &runnable {
            bound.extend(body[i].variables());
        }
        layer += 1;
    }
    // Anything still unplaced can never run; it forms one final layer so
    // infeasible bodies still canonicalize deterministically.
    for l in layer_of.iter_mut() {
        if *l == usize::MAX {
            *l = layer;
        }
    }
    layer_of
}

/// The variables of an atom with stable position tags, in argument order
/// (duplicates kept — repeated variables matter).
fn var_occurrences(atom: &BodyAtom) -> Vec<(Arc<str>, String)> {
    let mut out = Vec::new();
    match atom {
        BodyAtom::Pred(p) => {
            for (i, t) in p.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    out.push((v.clone(), format!("a{i}")));
                }
            }
        }
        BodyAtom::In { target, call } => {
            if let Some(v) = target.as_var() {
                out.push((v.clone(), "t".to_string()));
            }
            for (i, t) in call.args.iter().enumerate() {
                if let Some(v) = t.as_var() {
                    out.push((v.clone(), format!("a{i}")));
                }
            }
        }
        BodyAtom::Cond(c) => {
            if let Some(v) = c.lhs.var_name() {
                out.push((v.clone(), "l".to_string()));
            }
            if let Some(v) = c.rhs.var_name() {
                out.push((v.clone(), "r".to_string()));
            }
        }
    }
    out
}

/// Renders an atom with `name` supplying each variable's spelling.
/// Comparisons are direction-normalized so `>(A, B)` and `<(B, A)` (and
/// the operand orders of `=`/`!=`) render identically.
fn render_atom(atom: &BodyAtom, name: &dyn Fn(&Arc<str>) -> String) -> String {
    let term = |t: &Term| match t {
        Term::Var(v) => name(v),
        Term::Const(c) => c.to_literal(),
    };
    let path = |pt: &PathTerm| format!("{}{}", term(&pt.base), pt.path);
    match atom {
        BodyAtom::Pred(p) => {
            let args: Vec<String> = p.args.iter().map(term).collect();
            format!("{}({})", p.name, args.join(","))
        }
        BodyAtom::In { target, call } => {
            let args: Vec<String> = call.args.iter().map(term).collect();
            format!(
                "in({},{}:{}({}))",
                term(target),
                call.domain,
                call.function,
                args.join(",")
            )
        }
        BodyAtom::Cond(c) => {
            let (op, mut l, mut r) = match c.op {
                Relop::Gt | Relop::Ge => (c.op.flipped(), path(&c.rhs), path(&c.lhs)),
                op => (op, path(&c.lhs), path(&c.rhs)),
            };
            if matches!(op, Relop::Eq | Relop::Ne) && r < l {
                std::mem::swap(&mut l, &mut r);
            }
            format!("{}({},{})", op.symbol(), l, r)
        }
    }
}

/// Builds the canonical rendering of a body under entry bindings.
fn canonicalize(body: &[BodyAtom], bound_at_entry: &BTreeSet<Arc<str>>) -> String {
    let layer_of = layers(body, bound_at_entry);
    let blind = |v: &Arc<str>| -> String {
        if bound_at_entry.contains(v) {
            "?b".to_string()
        } else {
            "?f".to_string()
        }
    };

    // Name-blind structural key per atom, contextualized with its layer.
    let base_key: Vec<String> = body
        .iter()
        .enumerate()
        .map(|(i, a)| format!("L{}|{}", layer_of[i], render_atom(a, &blind)))
        .collect();

    // One Weisfeiler–Leman round: each variable's signature is the sorted
    // multiset of (structural key, position) over every atom mentioning it.
    // Hashed, it refines atom keys so two atoms identical in isolation but
    // feeding different consumers sort apart deterministically.
    let mut var_sig: BTreeMap<Arc<str>, Vec<String>> = BTreeMap::new();
    for (i, atom) in body.iter().enumerate() {
        for (v, tag) in var_occurrences(atom) {
            var_sig
                .entry(v)
                .or_default()
                .push(format!("{}@{}", base_key[i], tag));
        }
    }
    let var_hash: BTreeMap<Arc<str>, u64> = var_sig
        .into_iter()
        .map(|(v, mut sig)| {
            sig.sort();
            (v, fnv1a64(sig.join("\n").as_bytes()))
        })
        .collect();
    let ext_key: Vec<String> = body
        .iter()
        .enumerate()
        .map(|(i, atom)| {
            let sigs: Vec<String> = var_occurrences(atom)
                .iter()
                .map(|(v, _)| format!("{:016x}", var_hash.get(v).copied().unwrap_or(0)))
                .collect();
            format!("{}#{}", base_key[i], sigs.join("."))
        })
        .collect();

    // Greedy placement per layer with incremental canonical naming.
    let mut names: BTreeMap<Arc<str>, String> = BTreeMap::new();
    let mut bound_count = 0usize;
    let mut free_count = 0usize;
    let max_layer = layer_of.iter().copied().max().unwrap_or(0);
    let mut rendered_layers: Vec<Vec<String>> = Vec::new();
    for layer in 0..=max_layer {
        let mut remaining: Vec<usize> = (0..body.len()).filter(|&i| layer_of[i] == layer).collect();
        let mut placed_here = Vec::new();
        while !remaining.is_empty() {
            let current = |v: &Arc<str>| match names.get(v) {
                Some(n) => n.clone(),
                None => blind(v),
            };
            remaining.sort_by(|&a, &b| {
                let ka = (render_atom(&body[a], &current), &ext_key[a]);
                let kb = (render_atom(&body[b], &current), &ext_key[b]);
                ka.cmp(&kb)
            });
            let i = remaining.remove(0);
            for (v, _) in var_occurrences(&body[i]) {
                names.entry(v.clone()).or_insert_with(|| {
                    if bound_at_entry.contains(&v) {
                        bound_count += 1;
                        format!("B{}", bound_count - 1)
                    } else {
                        free_count += 1;
                        format!("V{}", free_count - 1)
                    }
                });
            }
            placed_here.push(i);
        }
        let named = |v: &Arc<str>| names.get(v).cloned().unwrap_or_else(|| blind(v));
        rendered_layers.push(
            placed_here
                .iter()
                .map(|&i| render_atom(&body[i], &named))
                .collect(),
        );
    }
    rendered_layers
        .iter()
        .filter(|l| !l.is_empty())
        .map(|l| l.join(" & "))
        .collect::<Vec<_>>()
        .join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_rule;

    fn fp(rule_src: &str, adornment: &str) -> SubplanKey {
        let rule = parse_rule(rule_src).unwrap();
        let bound: Vec<bool> = adornment.chars().map(|c| c == 'b').collect();
        fingerprint_rule(&rule, &bound)
    }

    #[test]
    fn alpha_renaming_is_invisible() {
        let a = fp("p(X, Y) :- in(Y, d:f(X)).", "bf");
        let b = fp("p(Alpha, Omega) :- in(Omega, d:f(Alpha)).", "bf");
        assert_eq!(a, b);
        assert!(a.canonical.contains("B0"));
    }

    #[test]
    fn independent_subgoal_order_is_invisible() {
        let a = fp(
            "p(A, X, Y) :- in(X, d:f(A)) & in(Y, e:g(A)) & in(Z, h:k(X, Y)).",
            "bff",
        );
        let b = fp(
            "p(A, X, Y) :- in(Y, e:g(A)) & in(X, d:f(A)) & in(Z, h:k(X, Y)).",
            "bff",
        );
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.canonical, b.canonical);
    }

    #[test]
    fn adornment_distinguishes_fingerprints() {
        let bf = fp("p(X, Y) :- in(Y, d:f(X)).", "bf");
        let ff = fp("p(X, Y) :- in(Y, d:f(X)).", "ff");
        assert_ne!(bf.fingerprint, ff.fingerprint);
    }

    #[test]
    fn constants_distinguish_fingerprints() {
        let x = fp("p(A) :- in(A, d:f('x')).", "f");
        let y = fp("p(A) :- in(A, d:f('y')).", "f");
        assert_ne!(x.fingerprint, y.fingerprint);
    }

    #[test]
    fn symmetric_comparisons_normalize() {
        let a = fp("p(A, B) :- in(A, d:f()) & in(B, d:g()) & =(A, B).", "ff");
        let b = fp("p(A, B) :- in(A, d:f()) & in(B, d:g()) & =(B, A).", "ff");
        assert_eq!(a.fingerprint, b.fingerprint);
        let gt = fp("p(A, B) :- in(A, d:f()) & in(B, d:g()) & >(A, B).", "ff");
        let lt = fp("p(A, B) :- in(A, d:f()) & in(B, d:g()) & <(B, A).", "ff");
        assert_eq!(gt.fingerprint, lt.fingerprint);
    }

    #[test]
    fn dataflow_context_breaks_structural_ties() {
        // Both f-calls look identical in isolation, but only one feeds the
        // g-call; swapping which one feeds it must not change the key, while
        // consuming the other variable must.
        let a = fp(
            "p(U, V) :- in(U, d:f()) & in(V, d:f()) & in(W, e:g(U)).",
            "ff",
        );
        let b = fp(
            "p(U, V) :- in(V, d:f()) & in(U, d:f()) & in(W, e:g(V)).",
            "ff",
        );
        assert_eq!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn calls_collect_sorted_and_distinct() {
        let k = fp(
            "p(A) :- in(A, z:last()) & in(B, a:first(A)) & in(C, a:first(B)).",
            "f",
        );
        let calls: Vec<String> = k.calls.iter().map(|(d, f)| format!("{d}:{f}")).collect();
        assert_eq!(calls, vec!["a:first", "z:last"]);
    }

    #[test]
    fn fnv_is_the_reference_function() {
        // Reference vectors for FNV-1a 64.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn stuck_atoms_still_canonicalize() {
        let k = fp("p(A) :- in(A, d:f(Missing)).", "f");
        assert!(k.canonical.contains("d:f"));
        assert_eq!(k.calls.len(), 1);
    }
}
