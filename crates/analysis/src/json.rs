//! A minimal JSON value, emitter, and parser.
//!
//! The workspace deliberately carries zero external dependencies, so the
//! machine-readable lint output (`hermes-lint --format json|sarif`) hand-
//! rolls the ~150 lines of JSON it needs instead of pulling in serde.
//! Objects preserve insertion order so emitted documents are byte-stable —
//! the lint snapshot in CI diffs them verbatim.

use std::fmt::Write as _;

/// A JSON value. Numbers are `f64` (the lint schema only carries small
/// integers and milliseconds); object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the byte-stable form CI snapshots.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document. Strict enough for round-tripping the lint
/// schema; not a general-purpose validator.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes: Vec<char> = src.chars().collect();
    let mut p = Parser { src: &bytes, at: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.src.len() {
        return Err(format!("trailing content at offset {}", p.at));
    }
    Ok(v)
}

struct Parser<'a> {
    src: &'a [char],
    at: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<char> {
        self.src.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.at += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\n' | '\r' | '\t')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == c => Ok(()),
            other => Err(format!(
                "expected `{c}`, got {other:?} at offset {}",
                self.at
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err("unterminated string".into()),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|c| c.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some('-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || "+-.eE".contains(c)) {
            self.at += 1;
        }
        let text: String = self.src[start..self.at].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}`"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some(']') => return Ok(Json::Arr(items)),
                other => return Err(format!("expected `,` or `]`, got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.at += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(',') => {}
                Some('}') => return Ok(Json::Obj(pairs)),
                other => return Err(format!("expected `,` or `}}`, got {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_render_and_parse() {
        let doc = Json::obj(vec![
            ("name", Json::Str("hermes \"lint\"\n".into())),
            ("count", Json::Num(3.0)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "items",
                Json::Arr(vec![
                    Json::Num(-1.0),
                    Json::Str("x".into()),
                    Json::Arr(vec![]),
                ]),
            ),
            ("empty", Json::Obj(vec![])),
        ]);
        let text = doc.render();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
        // Rendering is byte-stable.
        assert_eq!(text, parse(&text).unwrap().render());
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(Json::Num(42.0).render(), "42\n");
        assert_eq!(Json::Num(2.5).render(), "2.5\n");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_navigate_objects() {
        let doc = parse(r#"{"a": [1, 2], "b": "x"}"#).unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(doc.get("c"), None);
    }

    #[test]
    fn control_characters_escape() {
        let s = Json::Str("\u{1}".into());
        assert_eq!(s.render(), "\"\\u0001\"\n");
        assert_eq!(parse("\"\\u0041\"").unwrap(), Json::Str("A".into()));
    }
}
