//! Machine-readable renderings of analysis reports.
//!
//! The JSON schema (`hermes-lint-report/v1`) is stable; CI and editors can
//! match on it. One document covers a whole lint invocation:
//!
//! ```text
//! {
//!   "schema": "hermes-lint-report/v1",
//!   "files": [
//!     {
//!       "path": "examples/programs/logistics.hms",
//!       "error": null,                  // or the parse-failure text
//!       "diagnostics": [
//!         {
//!           "code": "HA070",
//!           "severity": "note",         // note | warning | error
//!           "locus": {
//!             "kind": "rule",           // program | rule | invariant |
//!                                       // query_form | call_pattern |
//!                                       // directive
//!             "index": 0,               // rule/invariant index or
//!                                       // directive line; absent otherwise
//!             "text": "route(A, B)"     // rendered locus; absent for
//!                                       // program
//!           },
//!           "message": "…",
//!           "suggestion": "…",          // or null
//!           "fingerprint": "0x…"        // or null; HA07x carry it
//!         }
//!       ]
//!     }
//!   ],
//!   "summary": {
//!     "files": 1, "errors": 0, "warnings": 0, "notes": 1, "unparseable": 0
//!   }
//! }
//! ```
//!
//! [`report_from_json`] parses the same schema back (the round-trip is
//! tested in CI), validating that each code exists and carries its fixed
//! severity. The SARIF rendering targets the SARIF 2.1.0 subset GitHub
//! code scanning ingests.

use crate::diagnostic::{AnalysisReport, DiagCode, Diagnostic, Locus, Severity};
use crate::fingerprint::Fingerprint;
use crate::json::{parse, Json};

/// The schema identifier emitted and required by this module.
pub const JSON_SCHEMA: &str = "hermes-lint-report/v1";

/// One linted file: its report, or the reason it could not be analyzed.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// The path as given on the command line.
    pub path: String,
    /// The findings (empty when clean or unparseable).
    pub report: AnalysisReport,
    /// A parse failure that prevented analysis, if any.
    pub error: Option<String>,
}

fn opt_str(s: &Option<String>) -> Json {
    match s {
        Some(s) => Json::Str(s.clone()),
        None => Json::Null,
    }
}

fn locus_to_json(locus: &Locus) -> Json {
    match locus {
        Locus::Program => Json::obj(vec![("kind", Json::Str("program".into()))]),
        Locus::Rule { index, head } => Json::obj(vec![
            ("kind", Json::Str("rule".into())),
            ("index", Json::Num(*index as f64)),
            ("text", Json::Str(head.clone())),
        ]),
        Locus::Invariant { index, text } => Json::obj(vec![
            ("kind", Json::Str("invariant".into())),
            ("index", Json::Num(*index as f64)),
            ("text", Json::Str(text.clone())),
        ]),
        Locus::QueryForm { text } => Json::obj(vec![
            ("kind", Json::Str("query_form".into())),
            ("text", Json::Str(text.clone())),
        ]),
        Locus::CallPattern { text } => Json::obj(vec![
            ("kind", Json::Str("call_pattern".into())),
            ("text", Json::Str(text.clone())),
        ]),
        Locus::Directive { line, text } => Json::obj(vec![
            ("kind", Json::Str("directive".into())),
            ("index", Json::Num(*line as f64)),
            ("text", Json::Str(text.clone())),
        ]),
    }
}

fn locus_from_json(v: &Json) -> Result<Locus, String> {
    let kind = v
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("locus without kind")?;
    let index = v.get("index").and_then(Json::as_num).map(|n| n as usize);
    let text = v
        .get("text")
        .and_then(Json::as_str)
        .map(str::to_string)
        .unwrap_or_default();
    match kind {
        "program" => Ok(Locus::Program),
        "rule" => Ok(Locus::Rule {
            index: index.ok_or("rule locus without index")?,
            head: text,
        }),
        "invariant" => Ok(Locus::Invariant {
            index: index.ok_or("invariant locus without index")?,
            text,
        }),
        "query_form" => Ok(Locus::QueryForm { text }),
        "call_pattern" => Ok(Locus::CallPattern { text }),
        "directive" => Ok(Locus::Directive {
            line: index.ok_or("directive locus without line index")?,
            text,
        }),
        other => Err(format!("unknown locus kind `{other}`")),
    }
}

fn diagnostic_to_json(d: &Diagnostic) -> Json {
    Json::obj(vec![
        ("code", Json::Str(d.code.as_str().into())),
        ("severity", Json::Str(d.severity.to_string())),
        ("locus", locus_to_json(&d.locus)),
        ("message", Json::Str(d.message.clone())),
        ("suggestion", opt_str(&d.suggestion)),
        (
            "fingerprint",
            match d.fingerprint {
                Some(fp) => Json::Str(fp.to_hex()),
                None => Json::Null,
            },
        ),
    ])
}

fn diagnostic_from_json(v: &Json) -> Result<Diagnostic, String> {
    let code_str = v
        .get("code")
        .and_then(Json::as_str)
        .ok_or("diagnostic without code")?;
    let code = DiagCode::from_code(code_str)
        .ok_or_else(|| format!("unknown diagnostic code `{code_str}`"))?;
    let sev = v
        .get("severity")
        .and_then(Json::as_str)
        .ok_or("diagnostic without severity")?;
    if sev != code.severity().to_string() {
        return Err(format!(
            "severity `{sev}` disagrees with {code_str}'s fixed severity `{}`",
            code.severity()
        ));
    }
    let locus = locus_from_json(v.get("locus").ok_or("diagnostic without locus")?)?;
    let message = v
        .get("message")
        .and_then(Json::as_str)
        .ok_or("diagnostic without message")?
        .to_string();
    let mut d = Diagnostic::new(code, locus, message);
    if let Some(s) = v.get("suggestion").and_then(Json::as_str) {
        d = d.with_suggestion(s);
    }
    if let Some(fp) = v.get("fingerprint").and_then(Json::as_str) {
        let hex = fp
            .strip_prefix("0x")
            .ok_or_else(|| format!("fingerprint `{fp}` is not 0x-prefixed hex"))?;
        let bits =
            u64::from_str_radix(hex, 16).map_err(|_| format!("bad fingerprint hex `{fp}`"))?;
        d = d.with_fingerprint(Fingerprint(bits));
    }
    Ok(d)
}

/// Renders a whole lint invocation as a `hermes-lint-report/v1` document.
pub fn report_to_json(files: &[FileReport]) -> String {
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut notes = 0usize;
    let mut unparseable = 0usize;
    let file_values: Vec<Json> = files
        .iter()
        .map(|f| {
            if f.error.is_some() {
                unparseable += 1;
            }
            for d in &f.report.diagnostics {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warning => warnings += 1,
                    Severity::Note => notes += 1,
                }
            }
            Json::obj(vec![
                ("path", Json::Str(f.path.clone())),
                ("error", opt_str(&f.error)),
                (
                    "diagnostics",
                    Json::Arr(
                        f.report
                            .diagnostics
                            .iter()
                            .map(diagnostic_to_json)
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Json::obj(vec![
        ("schema", Json::Str(JSON_SCHEMA.into())),
        ("files", Json::Arr(file_values)),
        (
            "summary",
            Json::obj(vec![
                ("files", Json::Num(files.len() as f64)),
                ("errors", Json::Num(errors as f64)),
                ("warnings", Json::Num(warnings as f64)),
                ("notes", Json::Num(notes as f64)),
                ("unparseable", Json::Num(unparseable as f64)),
            ]),
        ),
    ])
    .render()
}

/// Parses a `hermes-lint-report/v1` document back into file reports,
/// validating codes, severities, and loci along the way.
pub fn report_from_json(src: &str) -> Result<Vec<FileReport>, String> {
    let doc = parse(src)?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if schema != JSON_SCHEMA {
        return Err(format!(
            "unsupported schema `{schema}` (expected `{JSON_SCHEMA}`)"
        ));
    }
    let mut out = Vec::new();
    for file in doc
        .get("files")
        .and_then(Json::as_arr)
        .ok_or("missing files array")?
    {
        let path = file
            .get("path")
            .and_then(Json::as_str)
            .ok_or("file without path")?
            .to_string();
        let error = file.get("error").and_then(Json::as_str).map(str::to_string);
        let mut report = AnalysisReport::default();
        for d in file
            .get("diagnostics")
            .and_then(Json::as_arr)
            .ok_or("file without diagnostics array")?
        {
            report.diagnostics.push(diagnostic_from_json(d)?);
        }
        out.push(FileReport {
            path,
            report,
            error,
        });
    }
    Ok(out)
}

/// Renders a lint invocation as SARIF 2.1.0 (the subset GitHub code
/// scanning ingests). Rule metadata covers only the codes that actually
/// fired; parse failures become tool-level `error` results.
pub fn report_to_sarif(files: &[FileReport]) -> String {
    let mut used: Vec<DiagCode> = files
        .iter()
        .flat_map(|f| f.report.diagnostics.iter().map(|d| d.code))
        .collect();
    used.sort();
    used.dedup();
    let rules: Vec<Json> = used
        .iter()
        .map(|c| {
            Json::obj(vec![
                ("id", Json::Str(c.as_str().into())),
                (
                    "shortDescription",
                    Json::obj(vec![("text", Json::Str(c.title().into()))]),
                ),
                (
                    "fullDescription",
                    Json::obj(vec![("text", Json::Str(c.explain().into()))]),
                ),
            ])
        })
        .collect();
    let mut results: Vec<Json> = Vec::new();
    for f in files {
        if let Some(err) = &f.error {
            results.push(Json::obj(vec![
                ("level", Json::Str("error".into())),
                (
                    "message",
                    Json::obj(vec![("text", Json::Str(format!("parse failure: {err}")))]),
                ),
                ("locations", Json::Arr(vec![sarif_location(&f.path, None)])),
            ]));
        }
        for d in &f.report.diagnostics {
            results.push(Json::obj(vec![
                ("ruleId", Json::Str(d.code.as_str().into())),
                ("level", Json::Str(d.severity.to_string())),
                (
                    "message",
                    Json::obj(vec![("text", Json::Str(d.message.clone()))]),
                ),
                (
                    "locations",
                    Json::Arr(vec![sarif_location(&f.path, Some(&d.locus))]),
                ),
            ]));
        }
    }
    Json::obj(vec![
        (
            "$schema",
            Json::Str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
                    .into(),
            ),
        ),
        ("version", Json::Str("2.1.0".into())),
        (
            "runs",
            Json::Arr(vec![Json::obj(vec![
                (
                    "tool",
                    Json::obj(vec![(
                        "driver",
                        Json::obj(vec![
                            ("name", Json::Str("hermes-lint".into())),
                            ("rules", Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results", Json::Arr(results)),
            ])]),
        ),
    ])
    .render()
}

fn sarif_location(path: &str, locus: Option<&Locus>) -> Json {
    let mut pairs = vec![(
        "physicalLocation",
        Json::obj(vec![(
            "artifactLocation",
            Json::obj(vec![("uri", Json::Str(path.into()))]),
        )]),
    )];
    if let Some(locus) = locus {
        pairs.push((
            "logicalLocations",
            Json::Arr(vec![Json::obj(vec![(
                "fullyQualifiedName",
                Json::Str(locus.to_string()),
            )])]),
        ));
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprint;

    fn sample() -> Vec<FileReport> {
        let mut report = AnalysisReport::default();
        report.diagnostics.push(
            Diagnostic::new(
                DiagCode::MaterializeSafe,
                Locus::Rule {
                    index: 2,
                    head: "p(A, B)".into(),
                },
                "subplan safe",
            )
            .with_suggestion("canonical form: in(V0,d:f(B0))")
            .with_fingerprint(Fingerprint(0xdead_beef_0123_4567)),
        );
        report.diagnostics.push(Diagnostic::new(
            DiagCode::RecursiveCycle,
            Locus::Program,
            "cycle p/1 -> p/1",
        ));
        vec![
            FileReport {
                path: "a.hms".into(),
                report,
                error: None,
            },
            FileReport {
                path: "broken.hms".into(),
                report: AnalysisReport::default(),
                error: Some("parse error: line 3".into()),
            },
        ]
    }

    #[test]
    fn json_round_trips_losslessly() {
        let files = sample();
        let text = report_to_json(&files);
        let back = report_from_json(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].path, "a.hms");
        assert_eq!(back[0].report.diagnostics, files[0].report.diagnostics);
        assert_eq!(back[1].error.as_deref(), Some("parse error: line 3"));
        // ...and re-rendering is byte-identical (the CI snapshot relies on
        // this).
        assert_eq!(text, report_to_json(&back));
    }

    #[test]
    fn json_summary_counts_by_severity() {
        let text = report_to_json(&sample());
        let doc = parse(&text).unwrap();
        let summary = doc.get("summary").unwrap();
        assert_eq!(summary.get("errors").and_then(Json::as_num), Some(1.0));
        assert_eq!(summary.get("notes").and_then(Json::as_num), Some(1.0));
        assert_eq!(summary.get("unparseable").and_then(Json::as_num), Some(1.0));
    }

    #[test]
    fn wrong_schema_and_wrong_severity_are_rejected() {
        assert!(report_from_json(r#"{"schema": "other/v9", "files": []}"#).is_err());
        let forged = r#"{
          "schema": "hermes-lint-report/v1",
          "files": [{"path": "x", "error": null, "diagnostics": [
            {"code": "HA001", "severity": "note",
             "locus": {"kind": "program"}, "message": "m",
             "suggestion": null, "fingerprint": null}
          ]}]
        }"#;
        let err = report_from_json(forged).unwrap_err();
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn sarif_contains_rules_results_and_parse_failures() {
        let text = report_to_sarif(&sample());
        let doc = parse(&text).unwrap();
        assert_eq!(doc.get("version").and_then(Json::as_str), Some("2.1.0"));
        let runs = doc.get("runs").and_then(Json::as_arr).unwrap();
        let results = runs[0].get("results").and_then(Json::as_arr).unwrap();
        assert_eq!(results.len(), 3, "two findings plus one parse failure");
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rules.len(), 2, "only codes that fired");
        assert!(text.contains("note"), "severity mapping");
    }
}
