//! Pass 3 — domain-call signature checking.
//!
//! Every `in(X, d:f(args))` in a rule body — and both call templates of
//! every invariant — is checked against the declared signatures so that
//! unknown domains (**HA020**), unknown functions (**HA021**), and arity
//! mismatches (**HA022**) fail at registration, not mid-execution.

use crate::analyzer::SignatureTable;
use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use hermes_lang::{BodyAtom, CallTemplate, Invariant, Program};

/// Runs the pass.
pub(crate) fn run(
    program: &Program,
    invariants: &[Invariant],
    table: &SignatureTable,
    out: &mut Vec<Diagnostic>,
) {
    for (index, rule) in program.rules.iter().enumerate() {
        for atom in &rule.body {
            if let BodyAtom::In { call, .. } = atom {
                check_call(
                    call,
                    table,
                    Locus::Rule {
                        index,
                        head: rule.head.to_string(),
                    },
                    out,
                );
            }
        }
    }
    for (index, inv) in invariants.iter().enumerate() {
        let locus = || Locus::Invariant {
            index,
            text: inv.to_string(),
        };
        check_call(&inv.lhs, table, locus(), out);
        check_call(&inv.rhs, table, locus(), out);
    }
}

fn check_call(
    call: &CallTemplate,
    table: &SignatureTable,
    locus: Locus,
    out: &mut Vec<Diagnostic>,
) {
    if !table.has_domain(&call.domain) {
        let mut d = Diagnostic::new(
            DiagCode::UnknownDomain,
            locus,
            format!("call `{call}` names unknown domain `{}`", call.domain),
        );
        let known = table.domain_names();
        if !known.is_empty() {
            d = d.with_suggestion(format!(
                "known domains: {}",
                known
                    .iter()
                    .map(|n| format!("`{n}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push(d);
        return;
    }
    match table.arity(&call.domain, &call.function) {
        None => {
            let mut d = Diagnostic::new(
                DiagCode::UnknownFunction,
                locus,
                format!(
                    "domain `{}` exports no function `{}`",
                    call.domain, call.function
                ),
            );
            let known = table.functions_of(&call.domain);
            if !known.is_empty() {
                d = d.with_suggestion(format!(
                    "`{}` exports: {}",
                    call.domain,
                    known
                        .iter()
                        .map(|n| format!("`{n}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                ));
            }
            out.push(d);
        }
        Some(expected) if expected != call.args.len() => {
            out.push(Diagnostic::new(
                DiagCode::ArityMismatch,
                locus,
                format!(
                    "call `{call}` passes {} argument(s) but \
                     `{}:{}` expects {expected}",
                    call.args.len(),
                    call.domain,
                    call.function,
                ),
            ));
        }
        Some(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::{parse_invariant, parse_program};

    fn table() -> SignatureTable {
        let mut t = SignatureTable::new();
        t.declare("d", "f", 1);
        t.declare("d", "g", 2);
        t.declare("e", "h", 0);
        t
    }

    fn diags(src: &str, invs: &[&str]) -> Vec<Diagnostic> {
        let p = parse_program(src).unwrap();
        let invs: Vec<Invariant> = invs.iter().map(|s| parse_invariant(s).unwrap()).collect();
        let mut out = Vec::new();
        run(&p, &invs, &table(), &mut out);
        out
    }

    #[test]
    fn ha020_unknown_domain_lists_known_ones() {
        let out = diags("p(A) :- in(A, nosuch:f('x')).", &[]);
        let d = out
            .iter()
            .find(|d| d.code == DiagCode::UnknownDomain)
            .unwrap();
        assert!(d.message.contains("nosuch"));
        assert!(d.suggestion.as_deref().unwrap().contains("`d`"));
    }

    #[test]
    fn ha021_unknown_function_lists_exports() {
        let out = diags("p(A) :- in(A, d:nosuch('x')).", &[]);
        let d = out
            .iter()
            .find(|d| d.code == DiagCode::UnknownFunction)
            .unwrap();
        assert!(d.suggestion.as_deref().unwrap().contains("`f`"));
    }

    #[test]
    fn ha022_arity_mismatch_reports_both_counts() {
        let out = diags("p(A) :- in(A, d:g('x')).", &[]);
        let d = out
            .iter()
            .find(|d| d.code == DiagCode::ArityMismatch)
            .unwrap();
        assert!(d.message.contains("1 argument"));
        assert!(d.message.contains("expects 2"));
    }

    #[test]
    fn invariant_templates_are_checked_too() {
        let out = diags(
            "p(A) :- in(A, d:f('x')).",
            &["X > 0 => d:f(X) = d:missing(X)."],
        );
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::UnknownFunction
                && matches!(d.locus, Locus::Invariant { .. })));
    }

    #[test]
    fn well_typed_calls_are_clean() {
        let out = diags(
            "p(A, B) :- in(A, d:f(B)) & in(B, e:h()).",
            &["X > 0 => d:g(X, 'c') = d:g(X, 'c')."],
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
