//! Lint directives embedded in `.hms` program files.
//!
//! `%` starts a comment in the rule language, so directives hide in
//! comments beginning with `%!` — the parser never sees them, but
//! `hermes-lint` does:
//!
//! ```text
//! %! query route(b, f)                 declare an exported query adornment
//! %! domain terraindb: findrte/2       declare a domain's signatures
//! %! estimator terraindb               the domain ships a native estimator
//! %! invariant X > 0 => d:f(X) = d:g(X).   lint this invariant
//! ```
//!
//! Declaring at least one `domain` (or `estimator`) directive opts the file
//! into signature checking; files without any stay exempt so plain programs
//! lint without a registry.

use crate::analyzer::{QueryForm, SignatureTable};
use hermes_common::{HermesError, Result};
use hermes_lang::{parse_invariant, Invariant};

/// Everything the directives of one file declared.
#[derive(Debug, Default)]
pub struct Directives {
    /// Declared query adornments.
    pub query_forms: Vec<QueryForm>,
    /// Declared signatures; `None` when no `domain`/`estimator` directive
    /// appeared (signature checking stays off).
    pub signatures: Option<SignatureTable>,
    /// Declared invariants.
    pub invariants: Vec<Invariant>,
}

/// Scans `src` for `%!` directives.
pub fn parse_directives(src: &str) -> Result<Directives> {
    let mut out = Directives::default();
    for (lineno, line) in src.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("%!") else {
            continue;
        };
        let rest = rest.trim();
        let bad = |msg: String| HermesError::Parse {
            line: lineno + 1,
            col: 0,
            msg: format!("directive: {msg}"),
        };
        if let Some(arg) = rest.strip_prefix("query ") {
            out.query_forms.push(QueryForm::parse(arg)?);
        } else if let Some(arg) = rest.strip_prefix("domain ") {
            let (name, funcs) = arg
                .split_once(':')
                .ok_or_else(|| bad("expected `domain name: f/2, g/1`".into()))?;
            let table = out.signatures.get_or_insert_with(SignatureTable::new);
            let name = name.trim();
            for f in funcs.split(',') {
                let f = f.trim().trim_end_matches('.');
                if f.is_empty() {
                    continue;
                }
                let (fname, arity) = f
                    .split_once('/')
                    .ok_or_else(|| bad(format!("function `{f}` must be `name/arity`")))?;
                let arity: usize = arity
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad arity in `{f}`")))?;
                table.declare(name, fname.trim(), arity);
            }
        } else if let Some(arg) = rest.strip_prefix("estimator ") {
            out.signatures
                .get_or_insert_with(SignatureTable::new)
                .declare_estimator(arg.trim().trim_end_matches('.'));
        } else if let Some(arg) = rest.strip_prefix("invariant ") {
            out.invariants.push(parse_invariant(arg.trim())?);
        } else {
            return Err(bad(format!(
                "unknown directive `{rest}`; expected `query`, `domain`, \
                 `estimator`, or `invariant`"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directive_kinds() {
        let src = "\
            %! query route(b, f)\n\
            % plain comment, ignored\n\
            %! domain terraindb: findrte/2, within/3\n\
            %! estimator terraindb\n\
            %! invariant X > 0 => d:f(X) = d:g(X).\n\
            route(A, B) :- in(B, terraindb:findrte(A, 'x')).\n";
        let d = parse_directives(src).unwrap();
        assert_eq!(d.query_forms.len(), 1);
        assert_eq!(d.query_forms[0].adornment(), "bf");
        let sigs = d.signatures.unwrap();
        assert_eq!(sigs.arity("terraindb", "findrte"), Some(2));
        assert_eq!(sigs.arity("terraindb", "within"), Some(3));
        assert!(sigs.has_native_estimator("terraindb"));
        assert_eq!(d.invariants.len(), 1);
    }

    #[test]
    fn no_domain_directive_means_no_signature_table() {
        let d = parse_directives("%! query p(f)\np(A) :- in(A, d:f()).\n").unwrap();
        assert!(d.signatures.is_none());
    }

    #[test]
    fn unknown_directive_is_an_error() {
        assert!(parse_directives("%! frobnicate yes\n").is_err());
        assert!(parse_directives("%! domain nocolon\n").is_err());
        assert!(parse_directives("%! domain d: f/x\n").is_err());
    }
}
