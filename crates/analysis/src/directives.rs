//! Lint directives embedded in `.hms` program files.
//!
//! `%` starts a comment in the rule language, so directives hide in
//! comments beginning with `%!` — the parser never sees them, but
//! `hermes-lint` does:
//!
//! ```text
//! %! query route(b, f)                 declare an exported query adornment
//! %! domain terraindb: findrte/2       declare a domain's signatures
//! %! estimator terraindb               the domain ships a native estimator
//! %! invariant X > 0 => d:f(X) = d:g(X).   lint this invariant
//! %! cache terraindb                   the domain's calls route through CIM
//! %! cache terraindb:findrte           one function routes through CIM
//! %! cache never                       nothing routes through CIM
//! ```
//!
//! Declaring at least one `domain` (or `estimator`) directive opts the file
//! into signature checking; files without any stay exempt so plain programs
//! lint without a registry. Likewise, a `cache` directive opts the file
//! into cacheability checking (`HA060`).

use crate::analyzer::{QueryForm, SignatureTable};
use hermes_common::{HermesError, Result};
use hermes_lang::{parse_invariant, Invariant};
use std::collections::BTreeSet;

/// Declared CIM routing, built from `%! cache` directives. `%! cache
/// never` declares the empty routing (nothing cached); every other form
/// adds a domain or a `domain:function` route.
#[derive(Clone, Debug, Default)]
pub struct CacheRouting {
    domains: BTreeSet<String>,
    functions: BTreeSet<(String, String)>,
}

impl CacheRouting {
    /// Declares a whole domain as CIM-routed.
    pub fn route_domain(&mut self, domain: impl Into<String>) {
        self.domains.insert(domain.into());
    }

    /// Declares one `domain:function` as CIM-routed.
    pub fn route_function(&mut self, domain: impl Into<String>, function: impl Into<String>) {
        self.functions.insert((domain.into(), function.into()));
    }

    /// True when `domain:function` routes through the CIM.
    pub fn routes(&self, domain: &str, function: &str) -> bool {
        self.domains.contains(domain)
            || self
                .functions
                .contains(&(domain.to_string(), function.to_string()))
    }
}

/// Everything the directives of one file declared.
#[derive(Debug, Default)]
pub struct Directives {
    /// Declared query adornments.
    pub query_forms: Vec<QueryForm>,
    /// Declared signatures; `None` when no `domain`/`estimator` directive
    /// appeared (signature checking stays off).
    pub signatures: Option<SignatureTable>,
    /// Declared invariants.
    pub invariants: Vec<Invariant>,
    /// Declared CIM routing; `None` when no `cache` directive appeared
    /// (cacheability checking stays off).
    pub cache_routing: Option<CacheRouting>,
}

/// Scans `src` for `%!` directives.
pub fn parse_directives(src: &str) -> Result<Directives> {
    let mut out = Directives::default();
    for (lineno, line) in src.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("%!") else {
            continue;
        };
        let rest = rest.trim();
        let bad = |msg: String| HermesError::Parse {
            line: lineno + 1,
            col: 0,
            msg: format!("directive: {msg}"),
        };
        if let Some(arg) = rest.strip_prefix("query ") {
            out.query_forms.push(QueryForm::parse(arg)?);
        } else if let Some(arg) = rest.strip_prefix("domain ") {
            let (name, funcs) = arg
                .split_once(':')
                .ok_or_else(|| bad("expected `domain name: f/2, g/1`".into()))?;
            let table = out.signatures.get_or_insert_with(SignatureTable::new);
            let name = name.trim();
            for f in funcs.split(',') {
                let f = f.trim().trim_end_matches('.');
                if f.is_empty() {
                    continue;
                }
                let (fname, arity) = f
                    .split_once('/')
                    .ok_or_else(|| bad(format!("function `{f}` must be `name/arity`")))?;
                let arity: usize = arity
                    .trim()
                    .parse()
                    .map_err(|_| bad(format!("bad arity in `{f}`")))?;
                table.declare(name, fname.trim(), arity);
            }
        } else if let Some(arg) = rest.strip_prefix("estimator ") {
            out.signatures
                .get_or_insert_with(SignatureTable::new)
                .declare_estimator(arg.trim().trim_end_matches('.'));
        } else if let Some(arg) = rest.strip_prefix("invariant ") {
            out.invariants.push(parse_invariant(arg.trim())?);
        } else if let Some(arg) = rest.strip_prefix("cache ") {
            let arg = arg.trim().trim_end_matches('.');
            let routing = out.cache_routing.get_or_insert_with(CacheRouting::default);
            if arg == "never" {
                // The empty routing: opts into HA060 with nothing cached.
            } else if let Some((domain, function)) = arg.split_once(':') {
                let (domain, function) = (domain.trim(), function.trim());
                if domain.is_empty() || function.is_empty() {
                    return Err(bad(format!(
                        "cache route `{arg}` must be `domain`, `domain:function`, or `never`"
                    )));
                }
                routing.route_function(domain, function);
            } else if arg.is_empty() {
                return Err(bad(
                    "expected `cache domain`, `cache domain:function`, or `cache never`".into(),
                ));
            } else {
                routing.route_domain(arg);
            }
        } else {
            return Err(bad(format!(
                "unknown directive `{rest}`; expected `query`, `domain`, \
                 `estimator`, `invariant`, or `cache`"
            )));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directive_kinds() {
        let src = "\
            %! query route(b, f)\n\
            % plain comment, ignored\n\
            %! domain terraindb: findrte/2, within/3\n\
            %! estimator terraindb\n\
            %! invariant X > 0 => d:f(X) = d:g(X).\n\
            route(A, B) :- in(B, terraindb:findrte(A, 'x')).\n";
        let d = parse_directives(src).unwrap();
        assert_eq!(d.query_forms.len(), 1);
        assert_eq!(d.query_forms[0].adornment(), "bf");
        let sigs = d.signatures.unwrap();
        assert_eq!(sigs.arity("terraindb", "findrte"), Some(2));
        assert_eq!(sigs.arity("terraindb", "within"), Some(3));
        assert!(sigs.has_native_estimator("terraindb"));
        assert_eq!(d.invariants.len(), 1);
    }

    #[test]
    fn no_domain_directive_means_no_signature_table() {
        let d = parse_directives("%! query p(f)\np(A) :- in(A, d:f()).\n").unwrap();
        assert!(d.signatures.is_none());
    }

    #[test]
    fn unknown_directive_is_an_error() {
        assert!(parse_directives("%! frobnicate yes\n").is_err());
        assert!(parse_directives("%! domain nocolon\n").is_err());
        assert!(parse_directives("%! domain d: f/x\n").is_err());
    }

    #[test]
    fn cache_directives_build_the_routing() {
        let d = parse_directives("%! cache d\n%! cache e:f\n").unwrap();
        let routing = d.cache_routing.unwrap();
        assert!(routing.routes("d", "anything"));
        assert!(routing.routes("e", "f"));
        assert!(!routing.routes("e", "g"));
        assert!(!routing.routes("x", "y"));
    }

    #[test]
    fn cache_never_declares_the_empty_routing() {
        let d = parse_directives("%! cache never\n").unwrap();
        let routing = d.cache_routing.unwrap();
        assert!(!routing.routes("d", "f"));
    }

    #[test]
    fn no_cache_directive_means_no_routing() {
        let d = parse_directives("p(A) :- in(A, d:f()).\n").unwrap();
        assert!(d.cache_routing.is_none());
    }

    #[test]
    fn malformed_cache_directive_is_an_error() {
        assert!(parse_directives("%! cache d:\n").is_err());
        assert!(parse_directives("%! cache :f\n").is_err());
    }
}
