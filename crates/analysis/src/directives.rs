//! Lint directives embedded in `.hms` program files.
//!
//! `%` starts a comment in the rule language, so directives hide in
//! comments beginning with `%!` — the parser never sees them, but
//! `hermes-lint` does:
//!
//! ```text
//! %! query route(b, f)                 declare an exported query adornment
//! %! domain terraindb: findrte/2       declare a domain's signatures
//! %! estimator terraindb               the domain ships a native estimator
//! %! invariant X > 0 => d:f(X) = d:g(X).   lint this invariant
//! %! cache terraindb                   the domain's calls route through CIM
//! %! cache terraindb:findrte           one function routes through CIM
//! %! cache never                       nothing routes through CIM
//! %! volatile feed                     the domain's answers change underfoot
//! %! volatile feed:price               one function is volatile
//! ```
//!
//! Declaring at least one `domain` (or `estimator`) directive opts the file
//! into signature checking; files without any stay exempt so plain programs
//! lint without a registry. Likewise, a `cache` directive opts the file
//! into cacheability checking (`HA060`), and `volatile` feeds the
//! materialization pass (`HA071`).
//!
//! Directive problems never abort the lint: an unknown directive name
//! (`HA081`), malformed arguments (`HA080`), or a verbatim duplicate
//! (`HA082`) each become a [`Diagnostic`] in [`Directives::diagnostics`]
//! and the offending line is skipped. A silently ignored directive would
//! silently disable the very checks it was meant to enable — hence the
//! error severity on the first two.

use crate::analyzer::{QueryForm, SignatureTable};
use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use hermes_lang::{parse_invariant, Invariant};
use std::collections::BTreeSet;

/// Declared CIM routing, built from `%! cache` directives (`%! cache
/// never` declares the empty routing), and doubling as the route-set
/// behind `%! volatile`.
#[derive(Clone, Debug, Default)]
pub struct CacheRouting {
    domains: BTreeSet<String>,
    functions: BTreeSet<(String, String)>,
}

impl CacheRouting {
    /// Declares a whole domain as CIM-routed.
    pub fn route_domain(&mut self, domain: impl Into<String>) {
        self.domains.insert(domain.into());
    }

    /// Declares one `domain:function` as CIM-routed.
    pub fn route_function(&mut self, domain: impl Into<String>, function: impl Into<String>) {
        self.functions.insert((domain.into(), function.into()));
    }

    /// True when `domain:function` routes through the CIM.
    pub fn routes(&self, domain: &str, function: &str) -> bool {
        self.domains.contains(domain)
            || self
                .functions
                .contains(&(domain.to_string(), function.to_string()))
    }
}

/// Everything the directives of one file declared.
#[derive(Debug, Default)]
pub struct Directives {
    /// Declared query adornments.
    pub query_forms: Vec<QueryForm>,
    /// Declared signatures; `None` when no `domain`/`estimator` directive
    /// appeared (signature checking stays off).
    pub signatures: Option<SignatureTable>,
    /// Declared invariants.
    pub invariants: Vec<Invariant>,
    /// Declared CIM routing; `None` when no `cache` directive appeared
    /// (cacheability checking stays off).
    pub cache_routing: Option<CacheRouting>,
    /// Declared volatile sources; `None` when no `volatile` directive
    /// appeared.
    pub volatility: Option<CacheRouting>,
    /// Problems found while parsing the directives themselves
    /// (`HA080`–`HA082`); merged into the analysis report.
    pub diagnostics: Vec<Diagnostic>,
}

/// Scans `src` for `%!` directives. Directive-level problems are collected
/// into [`Directives::diagnostics`], never returned as `Err`.
pub fn parse_directives(src: &str) -> hermes_common::Result<Directives> {
    let mut out = Directives::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (lineno, line) in src.lines().enumerate() {
        let Some(rest) = line.trim_start().strip_prefix("%!") else {
            continue;
        };
        let rest = rest.trim();
        let locus = || Locus::Directive {
            line: lineno + 1,
            text: rest.to_string(),
        };
        if !seen.insert(rest.to_string()) {
            out.diagnostics.push(
                Diagnostic::new(
                    DiagCode::DuplicateDirective,
                    locus(),
                    "directive repeats an earlier declaration verbatim",
                )
                .with_suggestion("drop one copy; declarations accumulate, nothing is shadowed"),
            );
            continue;
        }
        let mut malformed = |msg: String| {
            out.diagnostics
                .push(Diagnostic::new(DiagCode::MalformedDirective, locus(), msg));
        };
        if let Some(arg) = rest.strip_prefix("query ") {
            match QueryForm::parse(arg) {
                Ok(form) => out.query_forms.push(form),
                Err(e) => malformed(e.to_string()),
            }
        } else if let Some(arg) = rest.strip_prefix("domain ") {
            let Some((name, funcs)) = arg.split_once(':') else {
                malformed("expected `domain name: f/2, g/1`".into());
                continue;
            };
            let name = name.trim();
            let mut declared: Vec<(String, usize)> = Vec::new();
            let mut ok = true;
            for f in funcs.split(',') {
                let f = f.trim().trim_end_matches('.');
                if f.is_empty() {
                    continue;
                }
                let Some((fname, arity)) = f.split_once('/') else {
                    malformed(format!("function `{f}` must be `name/arity`"));
                    ok = false;
                    break;
                };
                match arity.trim().parse::<usize>() {
                    Ok(arity) => declared.push((fname.trim().to_string(), arity)),
                    Err(_) => {
                        malformed(format!("bad arity in `{f}`"));
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let table = out.signatures.get_or_insert_with(SignatureTable::new);
                for (fname, arity) in declared {
                    table.declare(name, fname, arity);
                }
            }
        } else if let Some(arg) = rest.strip_prefix("estimator ") {
            out.signatures
                .get_or_insert_with(SignatureTable::new)
                .declare_estimator(arg.trim().trim_end_matches('.'));
        } else if let Some(arg) = rest.strip_prefix("invariant ") {
            match parse_invariant(arg.trim()) {
                Ok(inv) => out.invariants.push(inv),
                Err(e) => malformed(e.to_string()),
            }
        } else if let Some(arg) = rest.strip_prefix("cache ") {
            if let Err(msg) = route_directive(
                arg,
                "cache",
                true,
                out.cache_routing.get_or_insert_with(CacheRouting::default),
            ) {
                malformed(msg);
            }
        } else if let Some(arg) = rest.strip_prefix("volatile ") {
            if let Err(msg) = route_directive(
                arg,
                "volatile",
                false,
                out.volatility.get_or_insert_with(CacheRouting::default),
            ) {
                malformed(msg);
            }
        } else if matches!(
            rest,
            "query" | "domain" | "estimator" | "invariant" | "cache" | "volatile"
        ) {
            malformed(format!("`{rest}` directive is missing its arguments"));
        } else {
            out.diagnostics.push(
                Diagnostic::new(
                    DiagCode::UnknownDirective,
                    locus(),
                    format!(
                        "unknown directive `{rest}`; expected `query`, `domain`, \
                         `estimator`, `invariant`, `cache`, or `volatile`"
                    ),
                )
                .with_suggestion("a typo here silently disables the checks it would enable"),
            );
        }
    }
    Ok(out)
}

/// Parses the route-set argument shared by `cache` and `volatile`:
/// `domain`, `domain:function`, or (for `cache` only) `never`.
fn route_directive(
    arg: &str,
    kind: &str,
    allow_never: bool,
    routing: &mut CacheRouting,
) -> Result<(), String> {
    let arg = arg.trim().trim_end_matches('.');
    let forms = if allow_never {
        format!("`{kind} domain`, `{kind} domain:function`, or `{kind} never`")
    } else {
        format!("`{kind} domain` or `{kind} domain:function`")
    };
    if allow_never && arg == "never" {
        // The empty routing: opts into the pass with nothing routed.
    } else if let Some((domain, function)) = arg.split_once(':') {
        let (domain, function) = (domain.trim(), function.trim());
        if domain.is_empty() || function.is_empty() {
            return Err(format!("{kind} route `{arg}` must be one of {forms}"));
        }
        routing.route_function(domain, function);
    } else if arg.is_empty() {
        return Err(format!("expected {forms}"));
    } else {
        routing.route_domain(arg);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_directive_kinds() {
        let src = "\
            %! query route(b, f)\n\
            % plain comment, ignored\n\
            %! domain terraindb: findrte/2, within/3\n\
            %! estimator terraindb\n\
            %! invariant X > 0 => d:f(X) = d:g(X).\n\
            %! volatile feed:price\n\
            route(A, B) :- in(B, terraindb:findrte(A, 'x')).\n";
        let d = parse_directives(src).unwrap();
        assert!(d.diagnostics.is_empty(), "{:?}", d.diagnostics);
        assert_eq!(d.query_forms.len(), 1);
        assert_eq!(d.query_forms[0].adornment(), "bf");
        let sigs = d.signatures.unwrap();
        assert_eq!(sigs.arity("terraindb", "findrte"), Some(2));
        assert_eq!(sigs.arity("terraindb", "within"), Some(3));
        assert!(sigs.has_native_estimator("terraindb"));
        assert_eq!(d.invariants.len(), 1);
        let vol = d.volatility.unwrap();
        assert!(vol.routes("feed", "price"));
        assert!(!vol.routes("feed", "other"));
    }

    #[test]
    fn no_domain_directive_means_no_signature_table() {
        let d = parse_directives("%! query p(f)\np(A) :- in(A, d:f()).\n").unwrap();
        assert!(d.signatures.is_none());
        assert!(d.volatility.is_none());
    }

    #[test]
    fn unknown_directive_is_a_diagnostic_not_a_failure() {
        let d = parse_directives("%! frobnicate yes\n").unwrap();
        assert_eq!(d.diagnostics.len(), 1);
        assert_eq!(d.diagnostics[0].code, DiagCode::UnknownDirective);
        match &d.diagnostics[0].locus {
            Locus::Directive { line, text } => {
                assert_eq!(*line, 1);
                assert_eq!(text, "frobnicate yes");
            }
            other => panic!("wrong locus: {other:?}"),
        }
    }

    #[test]
    fn malformed_domain_directives_are_diagnostics() {
        let d = parse_directives("%! domain nocolon\n%! domain d: f/x\n").unwrap();
        let codes: Vec<_> = d.diagnostics.iter().map(|x| x.code).collect();
        assert_eq!(
            codes,
            vec![DiagCode::MalformedDirective, DiagCode::MalformedDirective]
        );
        // The half-parsed `domain d:` line must not leave partial signatures.
        assert!(d.signatures.is_none(), "{:?}", d.signatures);
    }

    #[test]
    fn malformed_query_and_invariant_are_diagnostics() {
        let d = parse_directives("%! query route(b, x)\n%! invariant garbage\n").unwrap();
        assert_eq!(d.diagnostics.len(), 2);
        assert!(d
            .diagnostics
            .iter()
            .all(|x| x.code == DiagCode::MalformedDirective));
        assert!(d.query_forms.is_empty());
        assert!(d.invariants.is_empty());
    }

    #[test]
    fn duplicate_directive_is_warned_and_skipped() {
        let d = parse_directives("%! query p(f)\n%! query p(f)\n%! query q(b)\n").unwrap();
        assert_eq!(d.query_forms.len(), 2, "the duplicate is not re-added");
        assert_eq!(d.diagnostics.len(), 1);
        assert_eq!(d.diagnostics[0].code, DiagCode::DuplicateDirective);
        assert_eq!(
            d.diagnostics[0].severity,
            crate::diagnostic::Severity::Warning
        );
    }

    #[test]
    fn cache_directives_build_the_routing() {
        let d = parse_directives("%! cache d\n%! cache e:f\n").unwrap();
        let routing = d.cache_routing.unwrap();
        assert!(routing.routes("d", "anything"));
        assert!(routing.routes("e", "f"));
        assert!(!routing.routes("e", "g"));
        assert!(!routing.routes("x", "y"));
    }

    #[test]
    fn cache_never_declares_the_empty_routing() {
        let d = parse_directives("%! cache never\n").unwrap();
        let routing = d.cache_routing.unwrap();
        assert!(!routing.routes("d", "f"));
    }

    #[test]
    fn no_cache_directive_means_no_routing() {
        let d = parse_directives("p(A) :- in(A, d:f()).\n").unwrap();
        assert!(d.cache_routing.is_none());
        assert!(d.diagnostics.is_empty());
    }

    #[test]
    fn malformed_cache_directives_are_diagnostics() {
        for src in ["%! cache d:\n", "%! cache :f\n", "%! cache \n"] {
            let d = parse_directives(src).unwrap();
            assert_eq!(d.diagnostics.len(), 1, "{src:?}");
            assert_eq!(d.diagnostics[0].code, DiagCode::MalformedDirective);
        }
    }

    #[test]
    fn volatile_never_is_malformed() {
        // `never` only makes sense for routing; a volatile set is additive.
        let d = parse_directives("%! volatile never\n").unwrap();
        assert!(d.diagnostics.is_empty());
        // ...it reads as a domain named `never`, which is harmless but
        // reported by nothing; the empty-arg form is the malformed one.
        let d = parse_directives("%! volatile \n").unwrap();
        assert_eq!(d.diagnostics.len(), 1);
    }
}
