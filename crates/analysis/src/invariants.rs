//! Pass 4 — invariant lints.
//!
//! The CIM applies invariants (§4) as rewrite rules at cache-lookup time, so
//! a bad invariant silently corrupts answers or loops the rewriter. Checks:
//!
//! * **HA030** a condition variable appears in neither call ("no free
//!   variables in the invariants", §4);
//! * **HA031** equality invariants chain into a substitution cycle that can
//!   make `substitutes()` loop (`f = g`, `g = h`, `h = f`);
//! * **HA032** the condition can never be satisfied (false constant
//!   comparisons, `X < X`, empty intervals like `X > 5 & X < 3`);
//! * **HA033** an invariant duplicates an earlier one up to variable
//!   renaming and/or flipping the relation;
//! * **HA034** the `⊆`/`⊇` direction looks wrong: the relation is not `=`
//!   yet the two calls are identical (or the condition forces them to be),
//!   or two invariants claim opposite monotonicity for the same function
//!   argument.

use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use hermes_lang::{CallTemplate, Condition, InvRel, Invariant, Relop, Term};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Runs the pass.
pub(crate) fn run(invariants: &[Invariant], out: &mut Vec<Diagnostic>) {
    let locus = |index: usize| Locus::Invariant {
        index,
        text: invariants[index].to_string(),
    };

    // HA030 — free condition variables.
    for (i, inv) in invariants.iter().enumerate() {
        let call_vars = inv.call_variables();
        for c in &inv.conditions {
            for v in c.variables() {
                if !call_vars.contains(&v) {
                    out.push(
                        Diagnostic::new(
                            DiagCode::FreeConditionVariable,
                            locus(i),
                            format!(
                                "condition variable `{v}` appears in \
                                 neither domain call"
                            ),
                        )
                        .with_suggestion(format!(
                            "every condition variable must occur in one of \
                             the two calls; rename `{v}` or drop the \
                             condition"
                        )),
                    );
                }
            }
        }
    }

    // HA031 — substitution cycles among `=` invariants. Union-find over
    // `domain:function` nodes: an equality edge between two already
    // connected nodes closes a cycle.
    let mut uf: BTreeMap<String, String> = BTreeMap::new();
    fn find(uf: &mut BTreeMap<String, String>, x: &str) -> String {
        let parent = uf.entry(x.to_string()).or_insert_with(|| x.to_string());
        if parent == x {
            return x.to_string();
        }
        let p = parent.clone();
        let root = find(uf, &p);
        uf.insert(x.to_string(), root.clone());
        root
    }
    for (i, inv) in invariants.iter().enumerate() {
        if inv.rel != InvRel::Equal {
            continue;
        }
        let a = format!("{}:{}", inv.lhs.domain, inv.lhs.function);
        let b = format!("{}:{}", inv.rhs.domain, inv.rhs.function);
        if a == b {
            continue; // self-maps (e.g. argument symmetries) don't chain
        }
        let ra = find(&mut uf, &a);
        let rb = find(&mut uf, &b);
        if ra == rb {
            out.push(
                Diagnostic::new(
                    DiagCode::CyclicInvariantChain,
                    locus(i),
                    format!(
                        "equality invariants already connect `{a}` and \
                         `{b}`; this one closes a substitution cycle that \
                         can make invariant rewriting loop"
                    ),
                )
                .with_suggestion(
                    "drop one invariant of the cycle; equalities compose \
                     transitively",
                ),
            );
        } else {
            uf.insert(ra, rb);
        }
    }

    // HA032 — unsatisfiable conditions.
    for (i, inv) in invariants.iter().enumerate() {
        if let Some(reason) = unsatisfiable(&inv.conditions) {
            out.push(
                Diagnostic::new(
                    DiagCode::UnsatisfiableCondition,
                    locus(i),
                    format!("condition can never hold: {reason}"),
                )
                .with_suggestion(
                    "an invariant with an unsatisfiable condition never \
                     fires; fix or remove it",
                ),
            );
        }
    }

    // HA033 — duplicates up to renaming / flipping.
    let canon: Vec<String> = invariants.iter().map(canon_string).collect();
    let canon_flipped: Vec<String> = invariants.iter().map(|i| canon_string(&flip(i))).collect();
    for j in 1..invariants.len() {
        for i in 0..j {
            if canon[j] == canon[i] || canon_flipped[j] == canon[i] {
                out.push(
                    Diagnostic::new(
                        DiagCode::DuplicateInvariant,
                        locus(j),
                        format!(
                            "duplicates invariant #{i} `{}` (up to variable \
                             renaming{})",
                            invariants[i],
                            if canon[j] == canon[i] {
                                ""
                            } else {
                                " and flipping"
                            }
                        ),
                    )
                    .with_suggestion("remove one of the two"),
                );
                break;
            }
        }
    }

    // HA034 — direction mistakes.
    direction_lints(invariants, &locus, out);
}

/// The invariant read right-to-left.
fn flip(inv: &Invariant) -> Invariant {
    Invariant::new(
        inv.conditions.clone(),
        inv.rhs.clone(),
        inv.rel.flipped(),
        inv.lhs.clone(),
    )
}

/// Renders an invariant with variables renamed `v0, v1, …` in first
/// occurrence order, so alpha-equivalent invariants render identically.
fn canon_string(inv: &Invariant) -> String {
    let mut names: BTreeMap<Arc<str>, String> = BTreeMap::new();
    let mut rename = |t: &Term| -> Term {
        match t {
            Term::Var(v) => {
                let n = names.len();
                Term::Var(
                    names
                        .entry(v.clone())
                        .or_insert_with(|| format!("v{n}"))
                        .as_str()
                        .into(),
                )
            }
            c => c.clone(),
        }
    };
    let mut parts = Vec::new();
    for c in &inv.conditions {
        let lhs = rename(&c.lhs.base);
        let rhs = rename(&c.rhs.base);
        parts.push(format!(
            "{}({}{},{}{})",
            c.op, lhs, c.lhs.path, rhs, c.rhs.path
        ));
    }
    let mut tmpl = |t: &CallTemplate| -> String {
        let args: Vec<String> = t.args.iter().map(|a| rename(a).to_string()).collect();
        format!("{}:{}({})", t.domain, t.function, args.join(","))
    };
    format!(
        "{} => {} {} {}",
        parts.join(" & "),
        tmpl(&inv.lhs),
        inv.rel,
        tmpl(&inv.rhs)
    )
}

/// Static satisfiability check over a condition conjunction. Returns the
/// reason when provably unsatisfiable; `None` means "don't know / fine".
fn unsatisfiable(conds: &[Condition]) -> Option<String> {
    use hermes_common::Value;
    // (lower bound, strict), (upper bound, strict), equality pin — per var.
    #[derive(Default)]
    struct Bounds {
        lower: Option<(Value, bool)>,
        upper: Option<(Value, bool)>,
        eq: Option<Value>,
    }
    let mut bounds: BTreeMap<Arc<str>, Bounds> = BTreeMap::new();

    for c in conds {
        let lb = (c.lhs.path.is_empty()).then_some(&c.lhs.base);
        let rb = (c.rhs.path.is_empty()).then_some(&c.rhs.base);
        match (lb, rb) {
            // Constant vs constant: evaluate now.
            (Some(Term::Const(a)), Some(Term::Const(b))) if !c.op.eval(a, b) => {
                return Some(format!("`{c}` is false"));
            }
            (Some(Term::Const(_)), Some(Term::Const(_))) => {}
            // Same bare variable on both sides.
            (Some(Term::Var(x)), Some(Term::Var(y))) if x == y => {
                if matches!(c.op, Relop::Lt | Relop::Gt | Relop::Ne) {
                    return Some(format!("`{c}` compares `{x}` with itself"));
                }
            }
            // Bare variable vs constant: accumulate interval constraints.
            (Some(Term::Var(x)), Some(Term::Const(v)))
            | (Some(Term::Const(v)), Some(Term::Var(x))) => {
                // Normalize to `x op' v`.
                let op = if matches!(&c.lhs.base, Term::Var(_)) && lb.is_some() {
                    c.op
                } else {
                    c.op.flipped()
                };
                let b = bounds.entry(x.clone()).or_default();
                match op {
                    Relop::Eq => {
                        if let Some(prev) = &b.eq {
                            if prev != v {
                                return Some(format!(
                                    "`{x}` pinned to both \
                                     {} and {}",
                                    prev.to_literal(),
                                    v.to_literal()
                                ));
                            }
                        }
                        b.eq = Some(v.clone());
                    }
                    Relop::Gt | Relop::Ge => {
                        let strict = op == Relop::Gt;
                        let tighter = match &b.lower {
                            Some((cur, _)) => v > cur,
                            None => true,
                        };
                        if tighter {
                            b.lower = Some((v.clone(), strict));
                        }
                    }
                    Relop::Lt | Relop::Le => {
                        let strict = op == Relop::Lt;
                        let tighter = match &b.upper {
                            Some((cur, _)) => v < cur,
                            None => true,
                        };
                        if tighter {
                            b.upper = Some((v.clone(), strict));
                        }
                    }
                    Relop::Ne => {}
                }
            }
            _ => {} // path selections and mixed shapes: not decidable here
        }
    }

    for (x, b) in &bounds {
        if let (Some((lo, ls)), Some((hi, hs))) = (&b.lower, &b.upper) {
            if lo > hi || (lo == hi && (*ls || *hs)) {
                return Some(format!(
                    "`{x}` is constrained to the empty interval ({} .. {})",
                    lo.to_literal(),
                    hi.to_literal()
                ));
            }
        }
        if let Some(v) = &b.eq {
            let below = b
                .lower
                .as_ref()
                .is_some_and(|(lo, s)| v < lo || (v == lo && *s));
            let above = b
                .upper
                .as_ref()
                .is_some_and(|(hi, s)| v > hi || (v == hi && *s));
            if below || above {
                return Some(format!("`{x}` = {} violates its bounds", v.to_literal()));
            }
        }
    }
    None
}

/// HA034 sub-lints; see module docs.
fn direction_lints(
    invariants: &[Invariant],
    locus: &dyn Fn(usize) -> Locus,
    out: &mut Vec<Diagnostic>,
) {
    // (a) non-`=` relation between syntactically identical calls.
    for (i, inv) in invariants.iter().enumerate() {
        if inv.rel != InvRel::Equal && inv.lhs == inv.rhs {
            out.push(
                Diagnostic::new(
                    DiagCode::SuspiciousDirection,
                    locus(i),
                    format!(
                        "`{}` between identical calls holds trivially; \
                         likely a typo in the arguments or the direction",
                        inv.rel
                    ),
                )
                .with_suggestion("make the two calls differ, or delete the invariant"),
            );
            continue;
        }
        // (b) equality conditions force the calls to coincide.
        if inv.rel != InvRel::Equal && templates_equal_under_conditions(inv) {
            out.push(
                Diagnostic::new(
                    DiagCode::SuspiciousDirection,
                    locus(i),
                    format!(
                        "the condition forces both calls to be identical, \
                         so `{}` holds trivially; likely a direction or \
                         condition mistake",
                        inv.rel
                    ),
                )
                .with_suggestion(
                    "an inequality condition (e.g. `V1 <= V2`) is usually \
                     intended for containment invariants",
                ),
            );
        }
    }

    // (c) opposite monotonicity claims for the same function argument.
    let mut claims: BTreeMap<ClaimKey, (InvRel, usize)> = BTreeMap::new();
    for (i, inv) in invariants.iter().enumerate() {
        let Some((key, rel)) = monotonicity_claim(inv) else {
            continue;
        };
        match claims.get(&key) {
            Some((prev_rel, prev_idx))
                if *prev_rel != rel && *prev_rel != InvRel::Equal && rel != InvRel::Equal =>
            {
                out.push(
                    Diagnostic::new(
                        DiagCode::SuspiciousDirection,
                        locus(i),
                        format!(
                            "claims the opposite monotonicity of invariant \
                             #{prev_idx} `{}` for argument {} of \
                             `{}:{}`; one of the two directions is wrong",
                            invariants[*prev_idx], key.2, key.0, key.1
                        ),
                    )
                    .with_suggestion(
                        "check which call's answer set really contains the \
                         other's",
                    ),
                );
            }
            _ => {
                claims.insert(key, (rel, i));
            }
        }
    }
}

/// True when unifying variables equated by bare `=` conditions makes the
/// two call templates syntactically identical.
fn templates_equal_under_conditions(inv: &Invariant) -> bool {
    let mut repr: BTreeMap<Arc<str>, Arc<str>> = BTreeMap::new();
    fn find(repr: &mut BTreeMap<Arc<str>, Arc<str>>, x: &Arc<str>) -> Arc<str> {
        let p = repr.entry(x.clone()).or_insert_with(|| x.clone()).clone();
        if p == *x {
            return x.clone();
        }
        let root = find(repr, &p);
        repr.insert(x.clone(), root.clone());
        root
    }
    for c in &inv.conditions {
        if c.op == Relop::Eq && c.lhs.path.is_empty() && c.rhs.path.is_empty() {
            if let (Term::Var(a), Term::Var(b)) = (&c.lhs.base, &c.rhs.base) {
                let ra = find(&mut repr, a);
                let rb = find(&mut repr, b);
                repr.insert(ra, rb);
            }
        }
    }
    if repr.is_empty() {
        return false;
    }
    let norm = |t: &CallTemplate, repr: &mut BTreeMap<Arc<str>, Arc<str>>| {
        let args: Vec<Term> = t
            .args
            .iter()
            .map(|a| match a {
                Term::Var(v) => Term::Var(find(repr, v)),
                c => c.clone(),
            })
            .collect();
        CallTemplate::new(t.domain.clone(), t.function.clone(), args)
    };
    norm(&inv.lhs, &mut repr) == norm(&inv.rhs, &mut repr)
}

/// `(domain, function, argument position)` identifying one monotone
/// argument of a domain function.
type ClaimKey = (Arc<str>, Arc<str>, usize);

/// Extracts a monotonicity claim: a single-condition invariant
/// `A op B => d:f(.. A ..) REL d:f(.. B ..)` whose calls differ in exactly
/// one position holding the condition variables. Returns the claim key
/// `(domain, function, position)` and the relation *from the smaller
/// argument's call to the bigger argument's call*.
fn monotonicity_claim(inv: &Invariant) -> Option<(ClaimKey, InvRel)> {
    if inv.conditions.len() != 1 {
        return None;
    }
    let c = &inv.conditions[0];
    if !c.lhs.path.is_empty() || !c.rhs.path.is_empty() {
        return None;
    }
    let (Term::Var(x), Term::Var(y)) = (&c.lhs.base, &c.rhs.base) else {
        return None;
    };
    let (small, big) = match c.op {
        Relop::Lt | Relop::Le => (x, y),
        Relop::Gt | Relop::Ge => (y, x),
        _ => return None,
    };
    if inv.lhs.domain != inv.rhs.domain
        || inv.lhs.function != inv.rhs.function
        || inv.lhs.args.len() != inv.rhs.args.len()
    {
        return None;
    }
    let mut diff = None;
    for (pos, (a, b)) in inv.lhs.args.iter().zip(inv.rhs.args.iter()).enumerate() {
        if a == b {
            continue;
        }
        if diff.is_some() {
            return None; // differs in more than one position
        }
        diff = Some((pos, a, b));
    }
    let (pos, a, b) = diff?;
    let (Term::Var(av), Term::Var(bv)) = (a, b) else {
        return None;
    };
    let key = (inv.lhs.domain.clone(), inv.lhs.function.clone(), pos);
    if av == small && bv == big {
        Some((key, inv.rel)) // lhs is the smaller-argument call
    } else if av == big && bv == small {
        Some((key, inv.rel.flipped()))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_invariant;

    fn diags(srcs: &[&str]) -> Vec<Diagnostic> {
        let invs: Vec<Invariant> = srcs.iter().map(|s| parse_invariant(s).unwrap()).collect();
        let mut out = Vec::new();
        run(&invs, &mut out);
        out
    }

    #[test]
    fn ha030_free_condition_variable() {
        let out = diags(&["W > 5 => d:f(X) = d:g(X)."]);
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::FreeConditionVariable && d.message.contains("`W`")));
    }

    #[test]
    fn ha031_triangle_of_equalities_warns_once() {
        let out = diags(&[
            "=> d:f(X) = d:g(X).",
            "=> d:g(X) = d:h(X).",
            "=> d:h(X) = d:f(X).",
        ]);
        let cyc: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::CyclicInvariantChain)
            .collect();
        assert_eq!(cyc.len(), 1);
    }

    #[test]
    fn ha031_single_equality_and_self_map_are_fine() {
        let out = diags(&[
            "=> d:f(X) = d:g(X).",
            // Argument symmetry on the same function: not a chain.
            "=> d:sym(X, Y) = d:sym(Y, X).",
        ]);
        assert!(!out.iter().any(|d| d.code == DiagCode::CyclicInvariantChain));
    }

    #[test]
    fn ha032_false_constant_and_self_comparison() {
        let out = diags(&["1 > 2 => d:f(X) = d:g(X)."]);
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::UnsatisfiableCondition));

        let out = diags(&["X < X => d:f(X) = d:g(X)."]);
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::UnsatisfiableCondition));
    }

    #[test]
    fn ha032_empty_interval() {
        let out = diags(&["X > 5 & X < 3 => d:f(X) = d:g(X)."]);
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::UnsatisfiableCondition
                && d.message.contains("empty interval")));
        // A satisfiable interval stays quiet.
        let ok = diags(&["X > 3 & X < 5 => d:f(X) = d:g(X)."]);
        assert!(!ok
            .iter()
            .any(|d| d.code == DiagCode::UnsatisfiableCondition));
    }

    #[test]
    fn ha033_alpha_renamed_duplicate() {
        let out = diags(&["X > 5 => d:f(X) >= d:g(X).", "Y > 5 => d:f(Y) >= d:g(Y)."]);
        assert!(out.iter().any(|d| d.code == DiagCode::DuplicateInvariant));
    }

    #[test]
    fn ha033_flipped_duplicate() {
        let out = diags(&["X > 5 => d:f(X) >= d:g(X).", "X > 5 => d:g(X) <= d:f(X)."]);
        assert!(out.iter().any(|d| d.code == DiagCode::DuplicateInvariant));
    }

    #[test]
    fn ha034_identical_calls_with_containment() {
        let out = diags(&["X > 5 => d:f(X) >= d:f(X)."]);
        assert!(out.iter().any(|d| d.code == DiagCode::SuspiciousDirection));
    }

    #[test]
    fn ha034_condition_forces_identity() {
        let out = diags(&["V1 = V2 => d:f(V1) >= d:f(V2)."]);
        assert!(out.iter().any(|d| d.code == DiagCode::SuspiciousDirection));
    }

    #[test]
    fn ha034_opposite_monotonicity_claims() {
        let out = diags(&[
            "V1 <= V2 => d:select_lt(T, A, V2) >= d:select_lt(T, A, V1).",
            "V1 <= V2 => d:select_lt(T, A, V1) >= d:select_lt(T, A, V2).",
        ]);
        assert!(out.iter().any(|d| d.code == DiagCode::SuspiciousDirection
            && d.message.contains("opposite monotonicity")));
    }

    #[test]
    fn paper_monotonicity_invariant_is_clean() {
        let out = diags(&["V1 <= V2 => relation:select_lt(T, A, V2) >= \
             relation:select_lt(T, A, V1)."]);
        assert!(out.is_empty(), "{out:?}");
    }
}
