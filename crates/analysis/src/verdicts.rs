//! Cheap runtime view of the pass-7 materialization verdicts.
//!
//! The HA070–HA074 diagnostics are built for humans: every entry allocates
//! a formatted message, a locus, and a suggestion, and reading "is this
//! subplan safe?" back out of an [`AnalysisReport`](crate::AnalysisReport)
//! means re-running the whole pass pipeline and string-matching notes. The
//! runtime subplan cache asks that question on the query path, so it gets
//! this struct instead: the same classification the pass computes (safe /
//! volatile / recursive, plus the per-source invalidation scope), computed
//! once per program registration, with no diagnostics allocated.
//!
//! The unit of classification is the *source call*: a flat executable plan
//! is safe to snapshot exactly when every `(domain, function)` it reads is
//! non-volatile (HA071's test), and an update to a source dirties exactly
//! the fingerprints that transitively read it (HA074's scope). Calls the
//! program never mentions are conservatively treated as volatile — a call
//! the analyzer never saw has no verdict, and "don't cache" is the only
//! safe default.

use crate::analyzer::{CacheRoutes, QueryForm};
use crate::fingerprint::{fingerprint_rule, Fingerprint, SubplanKey};
use crate::graph;
use crate::materialize::{adornment_for, touches_recursion, transitive_calls};
use hermes_lang::Program;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

type Call = (Arc<str>, Arc<str>);

/// The pass-7 classification of one subplan, without the diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubplanVerdict {
    /// HA070: non-recursive and every reachable source is non-volatile.
    Safe,
    /// HA071: reads at least one volatile (or CIM-bypassing) source.
    Volatile,
    /// HA072: sits on a recursive SCC; a snapshot is not a fixpoint.
    Recursive,
}

/// One classified rule: which rule, its canonical key, the verdict, and
/// the sources its subplan transitively reads.
#[derive(Clone, Debug)]
pub struct RuleVerdict {
    /// Index into `program.rules`.
    pub rule: usize,
    /// Canonical subplan key under the rule's declared adornment.
    pub key: SubplanKey,
    /// The classification.
    pub verdict: SubplanVerdict,
    /// Every `(domain, function)` the subplan can reach.
    pub reads: BTreeSet<Call>,
}

/// The materialization verdicts for one registered program, queryable in
/// O(log n) per call with no re-analysis. Built by
/// [`MaterializationVerdicts::compute`]; the mediator rebuilds it when the
/// program or the CIM routing policy changes.
#[derive(Clone, Debug, Default)]
pub struct MaterializationVerdicts {
    /// Every source call the program mentions, `true` = volatile.
    calls: BTreeMap<Call, bool>,
    /// Per-rule classification (rules with no source calls are skipped,
    /// exactly as pass 7 skips facts and pure-IDB glue).
    rules: Vec<RuleVerdict>,
    /// HA074 scope: source call → fingerprints an update dirties.
    scope: BTreeMap<Call, BTreeSet<Fingerprint>>,
}

impl MaterializationVerdicts {
    /// Classifies `program` exactly as pass 7 does. `volatile` answers
    /// "is this call declared `%! volatile`?" and `cache_routes` answers
    /// "is this call routed through the CIM?"; pass `None` for whichever
    /// signal the deployment lacks (volatility-by-routing then stays
    /// unknown, again matching the pass).
    pub fn compute(
        program: &Program,
        query_forms: &[QueryForm],
        volatile: Option<CacheRoutes<'_>>,
        cache_routes: Option<CacheRoutes<'_>>,
    ) -> Self {
        let recursive = graph::recursive_predicates(program);
        let mut calls: BTreeMap<Call, bool> = BTreeMap::new();
        let mut rules: Vec<RuleVerdict> = Vec::new();
        let mut scope: BTreeMap<Call, BTreeSet<Fingerprint>> = BTreeMap::new();

        for (index, rule) in program.rules.iter().enumerate() {
            let reads = transitive_calls(program, rule);
            if rule.body.is_empty() || reads.is_empty() {
                continue;
            }
            for (d, f) in &reads {
                let is_volatile =
                    volatile.is_some_and(|v| v(d, f)) || cache_routes.is_some_and(|r| !r(d, f));
                let slot = calls.entry((d.clone(), f.clone())).or_insert(false);
                *slot = *slot || is_volatile;
            }
            let bound = adornment_for(query_forms, rule);
            let key = fingerprint_rule(rule, &bound);
            let verdict = if touches_recursion(program, rule, &recursive) {
                SubplanVerdict::Recursive
            } else if reads.iter().any(|(d, f)| {
                volatile.is_some_and(|v| v(d, f)) || cache_routes.is_some_and(|r| !r(d, f))
            }) {
                SubplanVerdict::Volatile
            } else {
                SubplanVerdict::Safe
            };
            if verdict == SubplanVerdict::Safe {
                for call in &reads {
                    scope
                        .entry(call.clone())
                        .or_default()
                        .insert(key.fingerprint);
                }
            }
            rules.push(RuleVerdict {
                rule: index,
                key,
                verdict,
                reads,
            });
        }

        MaterializationVerdicts {
            calls,
            rules,
            scope,
        }
    }

    /// Is this source call volatile? Calls the program never mentions
    /// return `true`: no verdict means no invalidation signal.
    pub fn is_volatile(&self, domain: &str, function: &str) -> bool {
        self.calls
            .get(&(Arc::from(domain), Arc::from(function)))
            .copied()
            .unwrap_or(true)
    }

    /// The HA070/HA071 test for an arbitrary flat subplan: safe exactly
    /// when every call it reads has a non-volatile verdict. (Flat plans
    /// are already unfolded, so the HA072 recursive case cannot arise —
    /// a recursive program has no finite flat plan to fingerprint.)
    pub fn verdict_for_calls<'c>(
        &self,
        reads: impl IntoIterator<Item = &'c Call>,
    ) -> SubplanVerdict {
        for (d, f) in reads {
            if self
                .calls
                .get(&(d.clone(), f.clone()))
                .copied()
                .unwrap_or(true)
            {
                return SubplanVerdict::Volatile;
            }
        }
        SubplanVerdict::Safe
    }

    /// Per-rule classifications, in rule order.
    pub fn rules(&self) -> &[RuleVerdict] {
        &self.rules
    }

    /// HA074: the fingerprints an update to `domain:function` dirties.
    /// Empty when no safe subplan reads the source.
    pub fn invalidation_scope(&self, domain: &str, function: &str) -> BTreeSet<Fingerprint> {
        self.scope
            .get(&(Arc::from(domain), Arc::from(function)))
            .cloned()
            .unwrap_or_default()
    }

    /// Number of distinct source calls classified.
    pub fn call_count(&self) -> usize {
        self.calls.len()
    }

    /// Count of rules with each verdict: `(safe, volatile, recursive)`.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for r in &self.rules {
            match r.verdict {
                SubplanVerdict::Safe => t.0 += 1,
                SubplanVerdict::Volatile => t.1 += 1,
                SubplanVerdict::Recursive => t.2 += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_program;

    fn forms(specs: &[&str]) -> Vec<QueryForm> {
        specs.iter().map(|f| QueryForm::parse(f).unwrap()).collect()
    }

    #[test]
    fn verdicts_match_the_pass_classification() {
        let program = parse_program(
            "p(A) :- in(A, feed:price('x')).\n\
             q(A) :- in(A, ref:name('x')).\n\
             reach(X, Y) :- in(Y, g:edge(X)).\n\
             reach(X, Y) :- reach(X, Z) & in(Y, g:edge(Z)).",
        )
        .unwrap();
        let vol = |d: &str, _f: &str| d == "feed";
        let v = MaterializationVerdicts::compute(
            &program,
            &forms(&["p(f)", "q(f)", "reach(b, f)"]),
            Some(&vol),
            None,
        );
        assert_eq!(v.tally(), (1, 1, 2));
        assert!(v.is_volatile("feed", "price"));
        assert!(!v.is_volatile("ref", "name"));
        assert!(
            v.is_volatile("nowhere", "seen"),
            "unknown calls are volatile"
        );
    }

    #[test]
    fn flat_subplan_verdict_follows_its_calls() {
        let program = parse_program(
            "p(A, B) :- in(A, d:f('k')) & in(B, e:g(A)).\n\
             v(A) :- in(A, feed:price('x')).",
        )
        .unwrap();
        let vol = |d: &str, _f: &str| d == "feed";
        let v = MaterializationVerdicts::compute(
            &program,
            &forms(&["p(f, f)", "v(f)"]),
            Some(&vol),
            None,
        );
        let safe: Vec<Call> = vec![
            (Arc::from("d"), Arc::from("f")),
            (Arc::from("e"), Arc::from("g")),
        ];
        assert_eq!(v.verdict_for_calls(safe.iter()), SubplanVerdict::Safe);
        let tainted: Vec<Call> = vec![
            (Arc::from("d"), Arc::from("f")),
            (Arc::from("feed"), Arc::from("price")),
        ];
        assert_eq!(
            v.verdict_for_calls(tainted.iter()),
            SubplanVerdict::Volatile
        );
    }

    #[test]
    fn invalidation_scope_covers_only_safe_rules() {
        let program = parse_program(
            "p(A) :- in(A, d:f('k')).\n\
             q(A) :- in(A, d:f('k')).\n\
             v(A) :- in(A, feed:price('x')) & in(A, d:f('k')).",
        )
        .unwrap();
        let vol = |d: &str, _f: &str| d == "feed";
        let v = MaterializationVerdicts::compute(
            &program,
            &forms(&["p(f)", "q(f)", "v(f)"]),
            Some(&vol),
            None,
        );
        // p and q share a fingerprint, so the scope of d:f is that one key.
        let scope = v.invalidation_scope("d", "f");
        assert_eq!(scope.len(), 1);
        // feed:price feeds no safe subplan.
        assert!(v.invalidation_scope("feed", "price").is_empty());
    }
}
