//! Pass 5 — cost-coverage advisory.
//!
//! The optimizer ranks orderings with DCSM cost estimates (§6). A call
//! pattern with neither statistics (summary table or detail records) nor a
//! native estimator silently falls back to the configured prior — plans
//! involving it are ranked blind. **HA040** makes those blind spots visible
//! before benchmarking.

use crate::analyzer::SignatureTable;
use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use hermes_common::{CallPattern, PatArg};
use hermes_dcsm::{Dcsm, EstimateSource};
use hermes_lang::{BodyAtom, Program, Term};
use std::collections::BTreeSet;

/// Runs the pass.
pub(crate) fn run(
    program: &Program,
    dcsm: &Dcsm,
    signatures: Option<&SignatureTable>,
    out: &mut Vec<Diagnostic>,
) {
    let mut patterns: BTreeSet<CallPattern> = BTreeSet::new();
    for rule in &program.rules {
        for atom in &rule.body {
            if let BodyAtom::In { call, .. } = atom {
                let args: Vec<PatArg> = call
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(v) => PatArg::Const(v.clone()),
                        Term::Var(_) => PatArg::Bound,
                    })
                    .collect();
                patterns.insert(CallPattern::new(
                    call.domain.clone(),
                    call.function.clone(),
                    args,
                ));
            }
        }
    }

    for pattern in &patterns {
        let outcome = dcsm.cost(pattern);
        if !matches!(outcome.source, EstimateSource::Prior) {
            continue;
        }
        let has_native = signatures.is_some_and(|t| t.has_native_estimator(&pattern.domain));
        let suggestion = if has_native {
            format!(
                "the `{}` domain ships a native estimator; register it \
                 with the DCSM (`Dcsm::register_external`)",
                pattern.domain
            )
        } else {
            "record profile runs (`Dcsm::record`) or build a summary table \
             for this call's shape"
                .to_string()
        };
        out.push(
            Diagnostic::new(
                DiagCode::EstimatorBlindSpot,
                Locus::CallPattern {
                    text: pattern.to_string(),
                },
                "no DCSM statistics and no native estimate cover this call \
                 pattern; cost ranking falls back to the configured prior",
            )
            .with_suggestion(suggestion),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::{GroundCall, SimInstant};
    use hermes_lang::parse_program;

    #[test]
    fn ha040_fires_only_for_uncovered_patterns() {
        let p = parse_program("p(A, B) :- in(A, d:f(B)) & in(B, d:g()).").unwrap();
        let mut dcsm = Dcsm::new();
        // Give `d:g()` detail statistics; `d:f($b)` stays blind.
        dcsm.record(
            &GroundCall::new("d", "g", vec![]),
            Some(10.0),
            Some(12.0),
            Some(3.0),
            SimInstant::EPOCH,
        );
        let mut out = Vec::new();
        run(&p, &dcsm, None, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].code, DiagCode::EstimatorBlindSpot);
        assert!(matches!(
            &out[0].locus,
            Locus::CallPattern { text } if text.contains("d:f")
        ));
    }

    #[test]
    fn ha040_suggests_native_estimator_when_available() {
        let p = parse_program("p(A) :- in(A, d:f('x')).").unwrap();
        let dcsm = Dcsm::new();
        let mut table = SignatureTable::new();
        table.declare("d", "f", 1);
        table.declare_estimator("d");
        let mut out = Vec::new();
        run(&p, &dcsm, Some(&table), &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0]
            .suggestion
            .as_deref()
            .unwrap()
            .contains("register_external"));
    }

    #[test]
    fn duplicate_call_sites_report_once() {
        let p = parse_program("p(A) :- in(A, d:f('x')).\n q(A) :- in(A, d:f('x')).\n").unwrap();
        let dcsm = Dcsm::new();
        let mut out = Vec::new();
        run(&p, &dcsm, None, &mut out);
        assert_eq!(out.len(), 1);
    }
}
