//! # hermes-analysis
//!
//! Whole-program static analysis for HERMES mediator programs. The paper's
//! optimizer assumes well-formed inputs — ground calls (§3), no free
//! invariant variables (§4), binding-pattern-compatible orderings (§5) —
//! and a production mediator should reject bad configurations at load time,
//! not at query time. This crate runs a series of passes over a
//! [`Program`](hermes_lang::Program) (plus optional invariants, domain
//! signatures, a DCSM, and CIM routing) and emits structured
//! [`Diagnostic`]s with stable `HAxxx` codes:
//!
//! | Pass | Codes | Checks |
//! |------|-------|--------|
//! | 1 dependency graph | `HA001`–`HA004` | recursion (SCCs), undefined predicates, unreachable predicates, fact/rule mixing |
//! | 2 adornment feasibility | `HA005`–`HA010` | groundability per rule, range restriction, ground facts, per-adornment executability |
//! | 3 domain signatures | `HA020`–`HA022` | unknown domains/functions, arity mismatches |
//! | 4 invariant lint | `HA030`–`HA034` | free condition variables, substitution cycles, unsatisfiable conditions, duplicates, direction mistakes |
//! | 5 cost coverage | `HA040` | call patterns the DCSM can only cost from the prior |
//! | 6 cacheability | `HA060` | programs the `cache-only` plan tier can never serve |
//! | 7 materialization | `HA070`–`HA074` | safe-to-materialize inventory, volatile sources, recursive SCCs, shared subplans, invalidation scope (opt-in) |
//! | directives | `HA080`–`HA082` | malformed, unknown, and duplicate `%!` directives |
//!
//! Pass 7 rests on [`fingerprint`]: canonical subplan fingerprints, stable
//! modulo variable renaming, independent-subgoal reordering, and symmetric
//! comparison spelling — the keys a subplan result cache shares with this
//! analyzer. Reports render as text, JSON (`hermes-lint-report/v1`), or
//! SARIF 2.1.0 via [`report_to_json`]/[`report_to_sarif`].
//!
//! ```
//! use hermes_analysis::{Analyzer, DiagCode};
//! use hermes_lang::parse_program;
//!
//! let program = parse_program("p(A) :- in(A, d:f(Z)).").unwrap();
//! let report = Analyzer::new(&program).analyze();
//! assert!(report.has_errors());
//! assert!(report.has_code(DiagCode::UngroundableVariable));
//! ```

mod adorn;
mod analyzer;
mod cacheable;
mod coverage;
mod diagnostic;
mod directives;
pub mod fingerprint;
mod graph;
mod invariants;
pub mod json;
mod materialize;
mod output;
mod sigs;
mod verdicts;

pub use analyzer::{Analyzer, QueryForm, SignatureTable};
pub use diagnostic::{AnalysisReport, DiagCode, Diagnostic, Locus, Severity};
pub use directives::{parse_directives, CacheRouting, Directives};
pub use fingerprint::{fingerprint_body, fingerprint_rule, Fingerprint, SubplanKey};
pub use output::{report_from_json, report_to_json, report_to_sarif, FileReport, JSON_SCHEMA};
pub use verdicts::{MaterializationVerdicts, RuleVerdict, SubplanVerdict};

use hermes_common::Result;
use hermes_lang::{groundability, parse_program, BodyAtom, Program};
use std::collections::BTreeSet;

/// Knobs for [`analyze_source_with`]: which opt-in passes to run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalyzeOptions {
    /// Run the cost-coverage pass (`HA040`) against an empty DCSM, listing
    /// every call pattern the optimizer would cost from the prior.
    pub coverage: bool,
    /// Run the materialization-safety pass (`HA070`–`HA074`).
    pub materialize: bool,
}

/// Parses a `.hms` source (program text plus optional `%!` lint
/// directives) and analyzes it. This is what `hermes-lint` and the REPL's
/// `:check` run.
pub fn analyze_source(src: &str) -> Result<AnalysisReport> {
    analyze_source_with(src, AnalyzeOptions::default())
}

/// [`analyze_source`] with the opt-in passes selectable.
pub fn analyze_source_with(src: &str, opts: AnalyzeOptions) -> Result<AnalysisReport> {
    let program = parse_program(src)?;
    let directives = parse_directives(src)?;
    let empty_dcsm = hermes_dcsm::Dcsm::new();
    let mut analyzer = Analyzer::new(&program)
        .with_query_forms(directives.query_forms)
        .with_invariants(directives.invariants);
    if let Some(table) = directives.signatures {
        analyzer = analyzer.with_signatures(table);
    }
    if opts.coverage {
        analyzer = analyzer.with_dcsm(&empty_dcsm);
    }
    if opts.materialize {
        analyzer = analyzer.with_materialization();
    }
    let routes = directives
        .cache_routing
        .as_ref()
        .map(|routing| move |domain: &str, function: &str| routing.routes(domain, function));
    if let Some(routes) = &routes {
        analyzer = analyzer.with_cache_routing(routes);
    }
    let volatile = directives
        .volatility
        .as_ref()
        .map(|v| move |domain: &str, function: &str| v.routes(domain, function));
    if let Some(volatile) = &volatile {
        analyzer = analyzer.with_volatility(volatile);
    }
    let mut report = analyzer.analyze();
    report.diagnostics.extend(directives.diagnostics);
    report.normalize();
    Ok(report)
}

/// Explains why a *query* (a goal conjunction against `program`) admits no
/// executable ordering: names the undefined predicates and the stuck
/// subgoals with the variables that can never become ground. Unlike plain
/// per-goal groundability, predicate goals are gated on their *rules*
/// admitting an executable ordering under the bindings available at the
/// goal — so a blocker buried in a rule body is surfaced by name. Returns
/// `None` when nothing is provably wrong (the failure lies elsewhere).
/// Used by the rewriter to turn its generic "no executable ordering" error
/// into a precise one.
pub fn explain_infeasible_query(program: &Program, goals: &[BodyAtom]) -> Option<String> {
    use hermes_lang::PredAtom;
    use std::sync::Arc;

    let defined = program.defined_predicates();
    let mut reasons: Vec<String> = Vec::new();
    for goal in goals {
        if let BodyAtom::Pred(p) = goal {
            if !defined.contains(&p.key()) {
                reasons.push(format!(
                    "predicate `{}/{}` is not defined by any rule",
                    p.name,
                    p.args.len()
                ));
            }
        }
    }

    // Why no rule answers `goal` with `bound` available; `None` = feasible.
    let pred_blocked = |goal: &PredAtom, bound: &BTreeSet<Arc<str>>| -> Option<String> {
        let rules = program.rules_for(&goal.name, goal.args.len());
        let mut why: Vec<String> = Vec::new();
        for rule in &rules {
            if rule.body.is_empty() {
                return None; // a ground fact answers anything
            }
            let mut seed: BTreeSet<Arc<str>> = BTreeSet::new();
            for (garg, harg) in goal.args.iter().zip(rule.head.args.iter()) {
                let arg_bound = match garg.as_var() {
                    Some(v) => bound.contains(v),
                    None => true,
                };
                if arg_bound {
                    if let Some(v) = harg.as_var() {
                        seed.insert(v.clone());
                    }
                }
            }
            let report = groundability(seed, &rule.body);
            if let Some(stuck) = report.stuck.first() {
                let vars: Vec<String> = stuck.missing.iter().map(|v| format!("`{v}`")).collect();
                why.push(format!(
                    "in rule `{}`, subgoal `{}` can never run ({} never \
                     bound)",
                    rule.head,
                    stuck.atom,
                    vars.join(", "),
                ));
                continue;
            }
            let unbound: Vec<String> = rule
                .head
                .variables()
                .into_iter()
                .filter(|v| !report.groundable.contains(v))
                .map(|v| format!("`{v}`"))
                .collect();
            if unbound.is_empty() {
                return None; // this rule works
            }
            why.push(format!(
                "in rule `{}`, head variable {} is never bound by the body",
                rule.head,
                unbound.join(", "),
            ));
        }
        Some(why.join("; "))
    };

    // Goal-level fixpoint: predicate goals run only when some rule is
    // feasible given the bindings accumulated so far.
    let mut bound: BTreeSet<Arc<str>> = BTreeSet::new();
    let mut changed = true;
    while changed {
        changed = false;
        for goal in goals {
            let runnable = match goal {
                BodyAtom::Pred(p) => {
                    defined.contains(&p.key()) && pred_blocked(p, &bound).is_none()
                }
                other => other.can_run(&bound),
            };
            if runnable {
                for v in goal.variables() {
                    if bound.insert(v) {
                        changed = true;
                    }
                }
            }
        }
    }

    for goal in goals {
        match goal {
            BodyAtom::Pred(p) if defined.contains(&p.key()) => {
                if let Some(why) = pred_blocked(p, &bound) {
                    reasons.push(format!("goal `{goal}` admits no executable rule: {why}"));
                }
            }
            BodyAtom::Pred(_) => {} // undefined: already reported
            other => {
                if !other.can_run(&bound) {
                    let missing: Vec<String> = other
                        .requires()
                        .into_iter()
                        .filter(|v| !bound.contains(v))
                        .map(|v| format!("`{v}`"))
                        .collect();
                    reasons.push(format!(
                        "subgoal `{other}` can never run: {} {} never bound \
                         by any goal order",
                        missing.join(", "),
                        if missing.len() == 1 { "is" } else { "are" },
                    ));
                }
            }
        }
    }

    if reasons.is_empty() {
        None
    } else {
        Some(reasons.join("; "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_query;

    #[test]
    fn analyze_source_combines_program_and_directives() {
        let src = "\
            %! query p(f)\n\
            %! domain d: f/0\n\
            p(A) :- in(A, d:f()).\n\
            dead(A) :- in(A, d:g('x')).\n";
        let report = analyze_source(src).unwrap();
        // dead/1 is unreachable (warning) and d:g is unknown (error).
        assert!(report.has_code(DiagCode::UnreachablePredicate));
        assert!(report.has_code(DiagCode::UnknownFunction));
        assert!(report.has_errors());
    }

    #[test]
    fn analyze_source_clean_program() {
        let src = "p(A) :- in(A, d:f()).\n";
        let report = analyze_source(src).unwrap();
        assert!(report.is_clean(), "{}", report.render());
    }

    #[test]
    fn explain_infeasible_query_names_the_blockers() {
        let program = parse_program("p(A) :- in(A, d:f()).").unwrap();
        let q = parse_query("?- nosuch(X) & in(Y, d:g(Z)).").unwrap();
        let why = explain_infeasible_query(&program, &q.goals).unwrap();
        assert!(why.contains("nosuch/1"));
        assert!(why.contains("`Z`"));

        let ok = parse_query("?- p(X).").unwrap();
        assert!(explain_infeasible_query(&program, &ok.goals).is_none());
    }

    #[test]
    fn explain_recurses_into_rule_bodies() {
        // The rule is valid in isolation (C may flow in from the caller),
        // but `?- only(C).` leaves C free, so no ordering exists. The
        // explanation must name the blocked subgoal inside the rule.
        let program = parse_program("only(C) :- in(C, d2:q_bf(B)) & in(B, d9:f(C)).").unwrap();
        let q = parse_query("?- only(C).").unwrap();
        let why = explain_infeasible_query(&program, &q.goals).unwrap();
        assert!(why.contains("goal `only(C)`"), "{why}");
        assert!(why.contains("in rule `only(C)`"), "{why}");

        // Binding C through another goal makes it feasible again.
        let q2 = parse_query("?- =(C, 5) & only(C).").unwrap();
        assert!(explain_infeasible_query(&program, &q2.goals).is_none());
    }
}
