//! Pass 6 — cacheability / tier starvation (**HA060**).
//!
//! The adaptive plan-tier machinery (overload, explicit `cache-only`
//! requests, budget pressure) falls back to serving queries from the CIM
//! alone. That only works if *something* can ever land in the CIM: at
//! least one domain call routed through it, or an invariant whose cached
//! answers can substitute for fresh ones. A program with domain calls but
//! neither is silently un-servable at the `cache-only` tier — every
//! downgraded query comes back empty. Better to say so at registration.
//!
//! The pass only runs when routing information is available (a `%! cache`
//! directive in the file, or the mediator's live `CimPolicy`); plain
//! programs lint without it and stay exempt.

use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use hermes_lang::{BodyAtom, Invariant, Program};

/// Runs the pass. `routes(domain, function)` answers whether a call is
/// CIM-routed.
pub(crate) fn run(
    program: &Program,
    invariants: &[Invariant],
    routes: &dyn Fn(&str, &str) -> bool,
    out: &mut Vec<Diagnostic>,
) {
    let mut calls = 0usize;
    let mut routed = 0usize;
    for rule in &program.rules {
        for atom in &rule.body {
            if let BodyAtom::In { call, .. } = atom {
                calls += 1;
                if routes(&call.domain, &call.function) {
                    routed += 1;
                }
            }
        }
    }
    if calls == 0 || routed > 0 || !invariants.is_empty() {
        return;
    }
    out.push(
        Diagnostic::new(
            DiagCode::CacheStarved,
            Locus::Program,
            format!(
                "none of the program's {calls} domain call(s) is routed \
                 through the CIM and no invariant is declared: the \
                 `cache-only` plan tier can never serve an answer, so \
                 overload downgrades and explicit cache-only requests \
                 always come back empty"
            ),
        )
        .with_suggestion(
            "route at least one call through the CIM (e.g. drop `%! cache \
             never`, or add `%! cache <domain>`), or declare an invariant \
             whose cached answers can stand in for fresh ones",
        ),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::{parse_invariant, parse_program};

    fn diags(src: &str, invs: &[&str], routes: &dyn Fn(&str, &str) -> bool) -> Vec<Diagnostic> {
        let p = parse_program(src).unwrap();
        let invs: Vec<Invariant> = invs.iter().map(|s| parse_invariant(s).unwrap()).collect();
        let mut out = Vec::new();
        run(&p, &invs, routes, &mut out);
        out
    }

    #[test]
    fn ha060_fires_when_nothing_can_reach_the_cache() {
        let out = diags("p(A) :- in(A, d:f('x')).", &[], &|_, _| false);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].code, DiagCode::CacheStarved);
        assert!(out[0].message.contains("cache-only"));
    }

    #[test]
    fn one_routed_call_is_enough() {
        let src = "p(A, B) :- in(A, d:f(B)) & in(B, e:g()).";
        let out = diags(src, &[], &|domain, _| domain == "e");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn an_invariant_is_enough() {
        let out = diags(
            "p(A) :- in(A, d:f('x')).",
            &["X > 0 => d:f(X) = d:f(X)."],
            &|_, _| false,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn programs_without_domain_calls_are_exempt() {
        let out = diags("p('a', 'b').", &[], &|_, _| false);
        assert!(out.is_empty(), "{out:?}");
    }
}
