//! The analyzer driver: inputs, builder, and pass orchestration.

use crate::diagnostic::AnalysisReport;
use crate::{adorn, cacheable, coverage, graph, invariants, materialize, sigs};
use hermes_cim::InvariantStore;
use hermes_common::{HermesError, Result};
use hermes_dcsm::Dcsm;
use hermes_domains::DomainRegistry;
use hermes_lang::{Invariant, Program};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// A declared query adornment, e.g. `route(b, f)`: the mediator promises to
/// answer queries on `route/2` with the first argument bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryForm {
    /// The predicate name.
    pub pred: Arc<str>,
    /// Per-position binding: `true` = bound (`b`), `false` = free (`f`).
    pub bound: Vec<bool>,
}

impl QueryForm {
    /// Builds a form from a name and per-position bindings.
    pub fn new(pred: impl Into<Arc<str>>, bound: Vec<bool>) -> Self {
        QueryForm {
            pred: pred.into(),
            bound,
        }
    }

    /// Parses `pred(b, f, ...)` — also accepts the compact `pred/bf` form.
    pub fn parse(text: &str) -> Result<Self> {
        let text = text.trim().trim_end_matches('.');
        let bad = |msg: &str| HermesError::Parse {
            line: 0,
            col: 0,
            msg: format!("query form `{text}`: {msg}"),
        };
        let (pred, adornment) = if let Some((p, rest)) = text.split_once('(') {
            let rest = rest
                .strip_suffix(')')
                .ok_or_else(|| bad("missing closing `)`"))?;
            (p.trim(), rest.replace([',', ' '], ""))
        } else if let Some((p, a)) = text.split_once('/') {
            (p.trim(), a.trim().to_string())
        } else {
            return Err(bad("expected `pred(b, f, ...)` or `pred/bf`"));
        };
        if pred.is_empty() {
            return Err(bad("empty predicate name"));
        }
        let mut bound = Vec::with_capacity(adornment.len());
        for c in adornment.chars() {
            match c {
                'b' => bound.push(true),
                'f' => bound.push(false),
                other => {
                    return Err(bad(&format!(
                        "adornment positions must be `b` or `f`, got `{other}`"
                    )))
                }
            }
        }
        Ok(QueryForm::new(pred, bound))
    }

    /// The adornment string, e.g. `bf`.
    pub fn adornment(&self) -> String {
        self.bound
            .iter()
            .map(|b| if *b { 'b' } else { 'f' })
            .collect()
    }
}

impl fmt::Display for QueryForm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let args: Vec<&str> = self
            .bound
            .iter()
            .map(|b| if *b { "b" } else { "f" })
            .collect();
        write!(f, "{}({})", self.pred, args.join(", "))
    }
}

/// What the analyzer knows about one domain.
#[derive(Clone, Debug, Default)]
struct DomainSigs {
    /// Exported functions and their arities.
    functions: BTreeMap<Arc<str>, usize>,
    /// True when the domain ships its own cost estimator (§6).
    has_native_estimator: bool,
}

/// Known domain signatures, either snapshotted from a live
/// [`DomainRegistry`] or declared (e.g. by `%!` lint directives in a `.hms`
/// file).
#[derive(Clone, Debug, Default)]
pub struct SignatureTable {
    domains: BTreeMap<Arc<str>, DomainSigs>,
}

impl SignatureTable {
    /// An empty table (every call will be an unknown domain).
    pub fn new() -> Self {
        SignatureTable::default()
    }

    /// Snapshots every registered domain's signatures.
    pub fn from_registry(reg: &DomainRegistry) -> Self {
        let mut table = SignatureTable::new();
        for name in reg.names() {
            if let Ok(d) = reg.get(&name) {
                for sig in d.functions() {
                    table.declare(name.clone(), sig.name, sig.arity);
                }
                if d.native_estimator().is_some() {
                    table.declare_estimator(name.clone());
                }
            }
        }
        table
    }

    /// Declares one function signature.
    pub fn declare(
        &mut self,
        domain: impl Into<Arc<str>>,
        function: impl Into<Arc<str>>,
        arity: usize,
    ) {
        self.domains
            .entry(domain.into())
            .or_default()
            .functions
            .insert(function.into(), arity);
    }

    /// Marks a domain as shipping a native estimator.
    pub fn declare_estimator(&mut self, domain: impl Into<Arc<str>>) {
        self.domains
            .entry(domain.into())
            .or_default()
            .has_native_estimator = true;
    }

    /// True when no domain is declared at all.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Declared domain names.
    pub fn domain_names(&self) -> Vec<Arc<str>> {
        self.domains.keys().cloned().collect()
    }

    /// True when `domain` is declared.
    pub fn has_domain(&self, domain: &str) -> bool {
        self.domains.contains_key(domain)
    }

    /// The declared arity of `domain:function`, if any.
    pub fn arity(&self, domain: &str, function: &str) -> Option<usize> {
        self.domains.get(domain)?.functions.get(function).copied()
    }

    /// Function names declared for `domain`.
    pub fn functions_of(&self, domain: &str) -> Vec<Arc<str>> {
        self.domains
            .get(domain)
            .map(|d| d.functions.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// True when `domain` declared a native estimator.
    pub fn has_native_estimator(&self, domain: &str) -> bool {
        self.domains
            .get(domain)
            .is_some_and(|d| d.has_native_estimator)
    }
}

/// A `(domain, function) -> routed?` predicate for the cacheability pass.
pub type CacheRoutes<'a> = &'a dyn Fn(&str, &str) -> bool;

/// The multi-pass static analyzer (see crate docs for the pass list).
///
/// Only the program is mandatory; every other input unlocks further passes:
/// signatures enable domain-call checking, invariants enable the invariant
/// lints, a DCSM enables cost-coverage advisories, and query forms enable
/// reachability plus per-adornment feasibility.
pub struct Analyzer<'a> {
    program: &'a Program,
    invariants: Vec<Invariant>,
    signatures: Option<SignatureTable>,
    dcsm: Option<&'a Dcsm>,
    query_forms: Vec<QueryForm>,
    cache_routing: Option<CacheRoutes<'a>>,
    volatility: Option<CacheRoutes<'a>>,
    materialize: bool,
}

impl<'a> Analyzer<'a> {
    /// Starts an analysis of `program`.
    pub fn new(program: &'a Program) -> Self {
        Analyzer {
            program,
            invariants: Vec::new(),
            signatures: None,
            dcsm: None,
            query_forms: Vec::new(),
            cache_routing: None,
            volatility: None,
            materialize: false,
        }
    }

    /// Adds invariants to lint (pass 4).
    pub fn with_invariants(mut self, invs: impl IntoIterator<Item = Invariant>) -> Self {
        self.invariants.extend(invs);
        self
    }

    /// Adds every invariant of a CIM store (pass 4).
    pub fn with_invariant_store(self, store: &InvariantStore) -> Self {
        self.with_invariants(store.all().iter().cloned())
    }

    /// Declares domain signatures (pass 3; also sharpens pass 5).
    pub fn with_signatures(mut self, table: SignatureTable) -> Self {
        self.signatures = Some(table);
        self
    }

    /// Snapshots signatures from a live registry (pass 3).
    pub fn with_registry(self, reg: &DomainRegistry) -> Self {
        self.with_signatures(SignatureTable::from_registry(reg))
    }

    /// Enables cost-coverage advisories against this DCSM (pass 5).
    pub fn with_dcsm(mut self, dcsm: &'a Dcsm) -> Self {
        self.dcsm = Some(dcsm);
        self
    }

    /// Declares a query form (sharpens passes 1 and 2).
    pub fn with_query_form(mut self, form: QueryForm) -> Self {
        self.query_forms.push(form);
        self
    }

    /// Declares several query forms.
    pub fn with_query_forms(mut self, forms: impl IntoIterator<Item = QueryForm>) -> Self {
        self.query_forms.extend(forms);
        self
    }

    /// Enables the cacheability pass (pass 6, `HA060`): `routes(domain,
    /// function)` answers whether a call goes through the CIM. Without
    /// this, no routing information exists and the pass stays silent.
    pub fn with_cache_routing(mut self, routes: CacheRoutes<'a>) -> Self {
        self.cache_routing = Some(routes);
        self
    }

    /// Declares volatile sources: `volatile(domain, function)` answers
    /// whether a source's answers change without notice (sharpens the
    /// `HA071` materialization check).
    pub fn with_volatility(mut self, volatile: CacheRoutes<'a>) -> Self {
        self.volatility = Some(volatile);
        self
    }

    /// Enables the materialization-safety pass (pass 7, `HA070`–`HA074`).
    /// Opt-in: the pass emits an inventory of notes, which would be noise
    /// in a plain correctness lint.
    pub fn with_materialization(mut self) -> Self {
        self.materialize = true;
        self
    }

    /// Runs every enabled pass and collects the findings, sorted by
    /// `(code, locus)` with duplicates collapsed.
    pub fn analyze(&self) -> AnalysisReport {
        let mut out = Vec::new();
        graph::run(self.program, &self.query_forms, &mut out);
        adorn::run(self.program, &self.query_forms, &mut out);
        if let Some(table) = &self.signatures {
            sigs::run(self.program, &self.invariants, table, &mut out);
        }
        invariants::run(&self.invariants, &mut out);
        if let Some(dcsm) = self.dcsm {
            coverage::run(self.program, dcsm, self.signatures.as_ref(), &mut out);
        }
        if let Some(routes) = self.cache_routing {
            cacheable::run(self.program, &self.invariants, routes, &mut out);
        }
        if self.materialize {
            let inputs = materialize::Inputs {
                query_forms: &self.query_forms,
                cache_routes: self.cache_routing,
                volatile: self.volatility,
                dcsm: self.dcsm,
            };
            materialize::run(self.program, &inputs, &mut out);
        }
        let mut report = AnalysisReport { diagnostics: out };
        report.normalize();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::DiagCode;
    use hermes_lang::parse_program;

    #[test]
    fn query_form_parses_both_syntaxes() {
        let a = QueryForm::parse("route(b, f)").unwrap();
        assert_eq!(a.pred.as_ref(), "route");
        assert_eq!(a.bound, vec![true, false]);
        assert_eq!(a.adornment(), "bf");
        let b = QueryForm::parse("route/bf").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "route(b, f)");
        assert!(QueryForm::parse("route(b, x)").is_err());
        assert!(QueryForm::parse("route").is_err());
    }

    #[test]
    fn zero_arity_form_parses() {
        let f = QueryForm::parse("ping()").unwrap();
        assert!(f.bound.is_empty());
    }

    #[test]
    fn analyzer_runs_only_enabled_passes() {
        // Unknown domain, but no signature table: pass 3 must stay silent.
        let p = parse_program("p(A) :- in(A, nosuch:f()).").unwrap();
        let report = Analyzer::new(&p).analyze();
        assert!(report.is_clean(), "{}", report.render());

        // With an empty table the same call is an unknown domain.
        let report = Analyzer::new(&p)
            .with_signatures(SignatureTable::new())
            .analyze();
        assert!(report.has_code(DiagCode::UnknownDomain));
    }

    #[test]
    fn signature_table_declarations_round_trip() {
        let mut t = SignatureTable::new();
        t.declare("d", "f", 2);
        t.declare_estimator("d");
        assert!(t.has_domain("d"));
        assert_eq!(t.arity("d", "f"), Some(2));
        assert_eq!(t.arity("d", "g"), None);
        assert!(t.has_native_estimator("d"));
        assert!(!t.has_native_estimator("e"));
        assert_eq!(t.functions_of("d").len(), 1);
    }
}
