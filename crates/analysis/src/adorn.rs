//! Pass 2 — adornment feasibility.
//!
//! Reuses the shared groundability fixpoint from `hermes-lang` (the single
//! implementation of the paper's §3 ground-call requirement) to certify, per
//! rule, that *some* binding-pattern-compatible subgoal ordering exists:
//!
//! * **HA005** a variable the body requires can never become ground;
//! * **HA006** a head variable missing from the body (range restriction);
//! * **HA007** a non-ground fact;
//! * **HA010** for each *declared* query adornment (e.g. `route(b, f)`), no
//!   rule admits an executable ordering when only the `b` positions are
//!   bound — with a precise "variable X can never be ground under adornment
//!   bf" explanation instead of a generic plan error;
//! * **HA050** a declared adornment serializes a rule's domain calls that a
//!   more-bound adornment could dispatch concurrently.

use crate::analyzer::QueryForm;
use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use hermes_lang::{groundability, BodyAtom, Program, Rule};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Runs the pass.
pub(crate) fn run(program: &Program, query_forms: &[QueryForm], out: &mut Vec<Diagnostic>) {
    for (index, rule) in program.rules.iter().enumerate() {
        check_rule(index, rule, out);
    }
    for form in query_forms {
        check_form(program, form, out);
        check_parallelism(program, form, out);
    }
}

/// Per-rule groundability, seeded with every head variable (sideways
/// information passing may bind any of them).
fn check_rule(index: usize, rule: &Rule, out: &mut Vec<Diagnostic>) {
    let locus = || Locus::Rule {
        index,
        head: rule.head.to_string(),
    };

    if rule.body.is_empty() {
        if !rule.head.variables().is_empty() {
            out.push(
                Diagnostic::new(
                    DiagCode::NonGroundFact,
                    locus(),
                    "fact contains variables; facts must be ground",
                )
                .with_suggestion("replace the variables with constants"),
            );
        }
        return;
    }

    let report = groundability(rule.head.variables(), &rule.body);
    for stuck in &report.stuck {
        let vars: Vec<String> = stuck.missing.iter().map(|v| format!("`{v}`")).collect();
        out.push(
            Diagnostic::new(
                DiagCode::UngroundableVariable,
                locus(),
                format!(
                    "subgoal #{} `{}` can never run: it requires {} to be \
                     ground, but no subgoal order binds {}",
                    stuck.index + 1,
                    stuck.atom,
                    vars.join(", "),
                    if vars.len() == 1 { "it" } else { "them" },
                ),
            )
            .with_suggestion(format!(
                "bind {} via an `in(...)` answer target, a `=` assignment, \
                 or another predicate subgoal",
                vars.join(", ")
            )),
        );
    }

    let body_vars: BTreeSet<Arc<str>> = rule.body.iter().flat_map(|a| a.variables()).collect();
    for v in rule.head.variables() {
        if !body_vars.contains(&v) {
            out.push(
                Diagnostic::new(
                    DiagCode::HeadVarNotInBody,
                    locus(),
                    format!("head variable `{v}` does not occur in the body"),
                )
                .with_suggestion(format!(
                    "add a subgoal that produces `{v}` or drop it from the \
                     head"
                )),
            );
        }
    }
}

/// HA010: at least one rule for the form's predicate must admit an
/// executable ordering when exactly the `b`-adorned head positions are
/// bound, and the ordering must ground every head variable (the `f`
/// positions are answers the caller expects).
fn check_form(program: &Program, form: &QueryForm, out: &mut Vec<Diagnostic>) {
    let locus = Locus::QueryForm {
        text: form.to_string(),
    };
    let rules = program.rules_for(&form.pred, form.bound.len());
    if rules.is_empty() {
        out.push(Diagnostic::new(
            DiagCode::UndefinedPredicate,
            locus,
            format!(
                "declared query form references `{}/{}`, which no rule \
                 defines",
                form.pred,
                form.bound.len()
            ),
        ));
        return;
    }

    // Why each rule fails, for the error message; empty if some rule works.
    let mut reasons: Vec<String> = Vec::new();
    for rule in &rules {
        if rule.body.is_empty() {
            return; // a ground fact answers any adornment
        }
        let mut seed: BTreeSet<Arc<str>> = BTreeSet::new();
        for (i, bound) in form.bound.iter().enumerate() {
            if *bound {
                if let Some(v) = rule.head.args[i].as_var() {
                    seed.insert(v.clone());
                }
            }
        }
        let report = groundability(seed, &rule.body);
        if let Some(stuck) = report.stuck.first() {
            let vars: Vec<String> = stuck.missing.iter().map(|v| format!("`{v}`")).collect();
            reasons.push(format!(
                "in rule `{}`, variable {} can never be ground under \
                 adornment `{}` (subgoal `{}` requires it)",
                rule.head,
                vars.join(", "),
                form.adornment(),
                stuck.atom,
            ));
            continue;
        }
        let unbound: Vec<String> = rule
            .head
            .variables()
            .into_iter()
            .filter(|v| !report.groundable.contains(v))
            .map(|v| format!("`{v}`"))
            .collect();
        if unbound.is_empty() {
            return; // feasible
        }
        reasons.push(format!(
            "in rule `{}`, head variable {} is never bound by the body \
             under adornment `{}`",
            rule.head,
            unbound.join(", "),
            form.adornment(),
        ));
    }

    out.push(
        Diagnostic::new(
            DiagCode::InfeasibleAdornment,
            locus,
            format!(
                "no rule admits an executable subgoal ordering: {}",
                reasons.join("; ")
            ),
        )
        .with_suggestion(format!(
            "bind more arguments in the query (adornment `{}` leaves the \
             `f` positions free) or add a rule that produces them",
            form.adornment()
        )),
    );
}

/// HA050: the parallel scheduler overlaps only domain calls that are ground
/// at the *same* point in the plan, so a rule benefits exactly when two or
/// more `in(...)` calls are dispatchable from the entry bindings. For each
/// feasible rule with at least two calls, count the calls whose arguments
/// the declared `b` positions already ground; if fewer than two are ready
/// but binding every *caller-suppliable* head position would ready two or
/// more, the declared adornment is leaving overlap on the table — warn.
///
/// A head position is caller-suppliable unless the body derives it from the
/// calls themselves (directly as a call target, or via `=` projections of
/// one): a pipelined join like `in(O, v:objs(F)) & in(A, r:cast(O))`
/// serializes on `O` *inherently* — `O` is an answer the query exists to
/// compute, so no realistic adornment pre-binds it, and we stay quiet.
fn check_parallelism(program: &Program, form: &QueryForm, out: &mut Vec<Diagnostic>) {
    let rules = program.rules_for(&form.pred, form.bound.len());
    for rule in &rules {
        let calls: Vec<&BodyAtom> = rule
            .body
            .iter()
            .filter(|a| matches!(a, BodyAtom::In { .. }))
            .collect();
        if calls.len() < 2 {
            continue;
        }
        let mut declared_seed: BTreeSet<Arc<str>> = BTreeSet::new();
        for (i, bound) in form.bound.iter().enumerate() {
            if *bound {
                if let Some(v) = rule.head.args[i].as_var() {
                    declared_seed.insert(v.clone());
                }
            }
        }
        // Only feasible rules are interesting; infeasible ones already get
        // HA010 and have no ordering to serialize.
        if !groundability(declared_seed.clone(), &rule.body).is_executable() {
            continue;
        }
        let ready = |seed: &BTreeSet<Arc<str>>| {
            calls
                .iter()
                .filter(|a| a.requires().is_subset(seed))
                .count()
        };
        let declared_ready = ready(&declared_seed);
        if declared_ready >= 2 {
            continue;
        }
        // Everything the calls + conditions alone derive from the declared
        // bindings is an answer; what remains must flow in from elsewhere
        // (IDB predicates) and is fair game for the caller to bind instead.
        let non_pred: Vec<BodyAtom> = rule
            .body
            .iter()
            .filter(|a| !matches!(a, BodyAtom::Pred(_)))
            .cloned()
            .collect();
        let derived = groundability(declared_seed.clone(), &non_pred).groundable;
        let mut widened: BTreeSet<Arc<str>> = rule
            .head
            .variables()
            .into_iter()
            .filter(|v| !derived.contains(v))
            .collect();
        widened.extend(declared_seed.iter().cloned());
        let widened_ready = ready(&widened);
        if widened_ready >= 2 {
            out.push(
                Diagnostic::new(
                    DiagCode::SerializedParallelizable,
                    Locus::QueryForm {
                        text: form.to_string(),
                    },
                    format!(
                        "under adornment `{}`, rule `{}` can dispatch only \
                         {} of its {} domain calls at entry, so they run \
                         serially; binding every non-answer argument would \
                         let {} overlap",
                        form.adornment(),
                        rule.head,
                        declared_ready,
                        calls.len(),
                        widened_ready,
                    ),
                )
                .with_suggestion(
                    "bind more arguments in the query (or split the rule) so \
                     at least two `in(...)` calls are ground at entry and the \
                     scheduler can overlap them",
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_program;

    fn diags(src: &str, forms: &[QueryForm]) -> Vec<Diagnostic> {
        let p = parse_program(src).unwrap();
        let mut out = Vec::new();
        run(&p, forms, &mut out);
        out
    }

    #[test]
    fn ha005_names_the_blocking_subgoal_and_variable() {
        let out = diags("p(A) :- in(A, d:f(Z)).", &[]);
        let d = out
            .iter()
            .find(|d| d.code == DiagCode::UngroundableVariable)
            .unwrap();
        assert!(d.message.contains("`Z`"));
        assert!(d.message.contains("in(A, d:f(Z))"));
    }

    #[test]
    fn ha006_head_var_not_in_body() {
        let out = diags("p(A, B) :- in(A, d:f()).", &[]);
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::HeadVarNotInBody && d.message.contains("`B`")));
    }

    #[test]
    fn ha007_non_ground_fact() {
        let out = diags("p(A).", &[]);
        assert!(out.iter().any(|d| d.code == DiagCode::NonGroundFact));
    }

    #[test]
    fn ha010_reports_adornment_and_variable() {
        // Feasible only when B is bound: q(b, f) works, q(f, f) does not.
        let src = "q(B, C) :- in(C, d2:q_bf(B)).";
        let ok = diags(src, &[QueryForm::parse("q(b, f)").unwrap()]);
        assert!(ok.is_empty(), "{ok:?}");
        let bad = diags(src, &[QueryForm::parse("q(f, f)").unwrap()]);
        let d = bad
            .iter()
            .find(|d| d.code == DiagCode::InfeasibleAdornment)
            .unwrap();
        assert!(d.message.contains("`B`"), "{}", d.message);
        assert!(d.message.contains("adornment `ff`"), "{}", d.message);
    }

    #[test]
    fn ha010_passes_when_any_rule_is_feasible() {
        let src = "q(B, C) :- in(C, d2:q_bf(B)).\n\
                   q(B, C) :- in(Ans, d2:q_all()) & =(Ans.1, B) & =(Ans.2, C).\n";
        let out = diags(src, &[QueryForm::parse("q(f, f)").unwrap()]);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn ha050_warns_when_adornment_serializes_overlappable_calls() {
        // Under lookup(b, f, f, f) the second call waits for `p` to bind B,
        // a plain input position; declaring lookup(b, b, f, f) instead
        // would let both calls dispatch at entry.
        let src = "lookup(A, B, Y, Z) :- p(B) & in(Y, d1:f_bf(A)) & in(Z, d2:g_bf(B)).\n\
                   p('x').";
        let serial = diags(src, &[QueryForm::parse("lookup(b, f, f, f)").unwrap()]);
        let d = serial
            .iter()
            .find(|d| d.code == DiagCode::SerializedParallelizable)
            .expect("HA050 expected");
        assert_eq!(d.severity, crate::diagnostic::Severity::Warning);
        assert!(d.message.contains("adornment `bfff`"), "{}", d.message);
        assert!(
            d.message.contains("1 of its 2 domain calls"),
            "{}",
            d.message
        );

        let wide = diags(src, &[QueryForm::parse("lookup(b, b, f, f)").unwrap()]);
        assert!(
            !wide
                .iter()
                .any(|d| d.code == DiagCode::SerializedParallelizable),
            "{wide:?}"
        );
    }

    #[test]
    fn ha050_silent_when_no_adornment_could_parallelize() {
        // The second call consumes the first call's answer: inherently
        // sequential under every adornment, so no warning.
        let src = "chain(A, Y) :- in(X, d1:f_bf(A)) & in(Y, d2:g_bf(X)).";
        let out = diags(src, &[QueryForm::parse("chain(b, f)").unwrap()]);
        assert!(
            !out.iter()
                .any(|d| d.code == DiagCode::SerializedParallelizable),
            "{out:?}"
        );
    }

    #[test]
    fn ha050_silent_on_pipelined_joins_over_answer_variables() {
        // The paper's canonical join: the second call consumes the first
        // call's *answer* (an `f` head position). No caller would pre-bind
        // the object list it is asking for, so this must stay quiet.
        let src = "actors(F, L, O, A) :-
                       in(O, video:objs_bf(F, L)) &
                       in(A, relation:cast_bf(O)).";
        let out = diags(src, &[QueryForm::parse("actors(b, b, f, f)").unwrap()]);
        assert!(
            !out.iter()
                .any(|d| d.code == DiagCode::SerializedParallelizable),
            "{out:?}"
        );
    }

    #[test]
    fn ha050_silent_on_infeasible_rules() {
        // Infeasible under ff — HA010 fires, HA050 stays quiet.
        let src = "lookup(A, B, X, Y) :- in(X, d1:f_bf(A)) & in(Y, d2:g_bf(B)).";
        let out = diags(src, &[QueryForm::parse("lookup(f, f, f, f)").unwrap()]);
        assert!(out.iter().any(|d| d.code == DiagCode::InfeasibleAdornment));
        assert!(
            !out.iter()
                .any(|d| d.code == DiagCode::SerializedParallelizable),
            "{out:?}"
        );
    }

    #[test]
    fn ha010_undefined_query_form_pred() {
        let out = diags(
            "p(A) :- in(A, d:f()).",
            &[QueryForm::parse("nosuch(f)").unwrap()],
        );
        assert!(out.iter().any(|d| d.code == DiagCode::UndefinedPredicate));
    }
}
