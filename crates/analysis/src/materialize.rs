//! Pass 7 — materialization safety (`HA070`–`HA074`).
//!
//! The subplan cache planned on the roadmap stores whole rule-body answer
//! sets keyed by canonical fingerprint (see [`crate::fingerprint`]). This
//! pass proves, at registration time, which subplans such a cache may hold:
//!
//! * **HA070** — the safe inventory: rules whose bodies make only pure,
//!   non-recursive, non-volatile domain calls. Each note carries the
//!   subplan's fingerprint and canonical form.
//! * **HA071** — subplans fed by a volatile source: declared `%! volatile`,
//!   or routed *around* the CIM (a direct-routed call has no cache entry to
//!   invalidate, so a materialized copy would silently go stale).
//! * **HA072** — subplans on a recursive SCC: a one-shot snapshot is not a
//!   fixpoint; maintenance needs semi-naive/delta evaluation.
//! * **HA073** — sharing: the same fingerprint in two or more rules means
//!   one materialization serves all of them; when a DCSM is available the
//!   note carries an estimated saving.
//! * **HA074** — invalidation scope: for every source a safe subplan
//!   reads, which fingerprints an update to that source dirties.
//!
//! All five are `Severity::Note` — inventory, not judgement — and the pass
//! is opt-in (`Analyzer::with_materialization`, `hermes-lint
//! --materialize`, REPL `:materialize`) so default lint output is
//! unchanged.

use crate::analyzer::{CacheRoutes, QueryForm};
use crate::diagnostic::{DiagCode, Diagnostic, Locus};
use crate::fingerprint::{fingerprint_rule, SubplanKey};
use crate::graph;
use hermes_common::{CallPattern, PatArg};
use hermes_dcsm::Dcsm;
use hermes_lang::{BodyAtom, Program, Rule, Term};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything the pass may consult beyond the program itself.
pub(crate) struct Inputs<'a> {
    /// Declared query adornments (pick the rule's entry bindings).
    pub query_forms: &'a [QueryForm],
    /// `(domain, function) -> routed through the CIM?`; `None` when no
    /// routing is declared (volatility-by-routing then stays unknown).
    pub cache_routes: Option<CacheRoutes<'a>>,
    /// `(domain, function) -> declared volatile?`; `None` when no
    /// `%! volatile` directive appeared.
    pub volatile: Option<CacheRoutes<'a>>,
    /// Cost model for the HA073 savings estimate.
    pub dcsm: Option<&'a Dcsm>,
}

type Call = (Arc<str>, Arc<str>);

/// One safe-inventory entry: rule index, subplan key, sources it reads.
type SafeEntry = (usize, SubplanKey, BTreeSet<Call>);

/// Runs the pass.
pub(crate) fn run(program: &Program, inputs: &Inputs<'_>, out: &mut Vec<Diagnostic>) {
    let recursive = graph::recursive_predicates(program);
    let mut safe: Vec<SafeEntry> = Vec::new();

    for (index, rule) in program.rules.iter().enumerate() {
        let calls = transitive_calls(program, rule);
        if rule.body.is_empty() || calls.is_empty() {
            continue; // facts and pure-IDB glue: nothing worth caching
        }
        let locus = Locus::Rule {
            index,
            head: rule.head.to_string(),
        };
        let bound = adornment_for(inputs.query_forms, rule);
        let key = fingerprint_rule(rule, &bound);

        if touches_recursion(program, rule, &recursive) {
            out.push(
                Diagnostic::new(
                    DiagCode::MaterializeRecursive,
                    locus,
                    format!(
                        "subplan {} sits on a recursive SCC; a one-shot \
                         snapshot is not a fixpoint",
                        key.fingerprint
                    ),
                )
                .with_suggestion(
                    "maintain this subplan with semi-naive/delta evaluation, \
                     or break the cycle",
                )
                .with_fingerprint(key.fingerprint),
            );
            continue;
        }

        let volatile_calls: Vec<String> = calls
            .iter()
            .filter_map(|(d, f)| {
                if inputs.volatile.is_some_and(|v| v(d, f)) {
                    Some(format!("`{d}:{f}` (declared volatile)"))
                } else if inputs.cache_routes.is_some_and(|r| !r(d, f)) {
                    Some(format!("`{d}:{f}` (routed around the CIM)"))
                } else {
                    None
                }
            })
            .collect();
        if !volatile_calls.is_empty() {
            out.push(
                Diagnostic::new(
                    DiagCode::MaterializeVolatile,
                    locus,
                    format!(
                        "subplan {} reads {}; a materialized copy has no \
                         invalidation signal",
                        key.fingerprint,
                        volatile_calls.join(", ")
                    ),
                )
                .with_suggestion(
                    "route the source through the CIM (`%! cache ...`) or \
                     leave the subplan unmaterialized",
                )
                .with_fingerprint(key.fingerprint),
            );
            continue;
        }

        out.push(
            Diagnostic::new(
                DiagCode::MaterializeSafe,
                locus,
                format!(
                    "subplan {} is safe to materialize under adornment \
                     `{}`: {} distinct source call(s), non-recursive, \
                     volatility-free",
                    key.fingerprint,
                    adornment_string(&bound),
                    calls.len()
                ),
            )
            .with_suggestion(format!("canonical form: {}", key.canonical))
            .with_fingerprint(key.fingerprint),
        );
        safe.push((index, key, calls));
    }

    shared_subplans(program, inputs.dcsm, &safe, out);
    invalidation_scope(&safe, out);
}

/// The rule's entry bindings: the first declared query form matching the
/// head picks which head positions arrive bound; without one, all-free.
pub(crate) fn adornment_for(forms: &[QueryForm], rule: &Rule) -> Vec<bool> {
    forms
        .iter()
        .find(|f| f.pred == rule.head.name && f.bound.len() == rule.head.args.len())
        .map(|f| f.bound.clone())
        .unwrap_or_else(|| vec![false; rule.head.args.len()])
}

fn adornment_string(bound: &[bool]) -> String {
    bound.iter().map(|b| if *b { 'b' } else { 'f' }).collect()
}

/// Every `(domain, function)` the rule's subplan can reach: its own `in`
/// atoms plus, transitively, those of the rules defining every IDB
/// predicate it references. An update to any of them can change the
/// subplan's answer set.
pub(crate) fn transitive_calls(program: &Program, rule: &Rule) -> BTreeSet<Call> {
    let mut calls = BTreeSet::new();
    let mut seen: BTreeSet<(Arc<str>, usize)> = BTreeSet::new();
    let mut stack: Vec<&Rule> = vec![rule];
    while let Some(r) = stack.pop() {
        for atom in &r.body {
            match atom {
                BodyAtom::In { call, .. } => {
                    calls.insert((call.domain.clone(), call.function.clone()));
                }
                BodyAtom::Pred(p) => {
                    if seen.insert(p.key()) {
                        stack.extend(program.rules_for(&p.name, p.args.len()));
                    }
                }
                BodyAtom::Cond(_) => {}
            }
        }
    }
    calls
}

/// True when the rule's head or any predicate its body (transitively)
/// references sits on a recursive SCC.
pub(crate) fn touches_recursion(
    program: &Program,
    rule: &Rule,
    recursive: &BTreeSet<(Arc<str>, usize)>,
) -> bool {
    if recursive.contains(&rule.head.key()) {
        return true;
    }
    let mut seen: BTreeSet<(Arc<str>, usize)> = BTreeSet::new();
    let mut stack: Vec<&Rule> = vec![rule];
    while let Some(r) = stack.pop() {
        for atom in &r.body {
            if let BodyAtom::Pred(p) = atom {
                let k = p.key();
                if recursive.contains(&k) {
                    return true;
                }
                if seen.insert(k) {
                    stack.extend(program.rules_for(&p.name, p.args.len()));
                }
            }
        }
    }
    false
}

/// `HA073`: groups the safe inventory by fingerprint; every group of two
/// or more rules is a sharing opportunity.
fn shared_subplans(
    program: &Program,
    dcsm: Option<&Dcsm>,
    safe: &[SafeEntry],
    out: &mut Vec<Diagnostic>,
) {
    let mut groups: BTreeMap<u64, Vec<&SafeEntry>> = BTreeMap::new();
    for entry in safe {
        groups.entry(entry.1.fingerprint.0).or_default().push(entry);
    }
    for group in groups.values() {
        if group.len() < 2 {
            continue;
        }
        let (first_index, key, _) = group[0];
        let members: Vec<String> = group
            .iter()
            .map(|(i, _, _)| format!("rule #{i} `{}`", program.rules[*i].head))
            .collect();
        let savings = dcsm.map(|d| {
            let patterns = body_patterns(&program.rules[*first_index].body);
            d.estimate_subplan_savings(&patterns, group.len())
        });
        let estimate = match savings {
            Some(ms) => format!(
                "; materializing once saves an estimated {ms:.0} ms per query \
                 that touches all of them (DCSM)"
            ),
            None => "; enable a DCSM to estimate the saving".to_string(),
        };
        out.push(
            Diagnostic::new(
                DiagCode::SharedSubplan,
                Locus::Program,
                format!(
                    "subplan {} is shared by {} rules: {}{}",
                    key.fingerprint,
                    group.len(),
                    members.join(", "),
                    estimate
                ),
            )
            .with_suggestion("materialize the shared subplan once and let every rule read it")
            .with_fingerprint(key.fingerprint),
        );
    }
}

/// `HA074`: inverts the safe inventory into `source -> fingerprints`.
fn invalidation_scope(safe: &[SafeEntry], out: &mut Vec<Diagnostic>) {
    let mut scope: BTreeMap<Call, BTreeSet<String>> = BTreeMap::new();
    for (_, key, calls) in safe {
        for call in calls {
            scope
                .entry(call.clone())
                .or_default()
                .insert(key.fingerprint.to_string());
        }
    }
    for ((domain, function), fps) in scope {
        let list: Vec<String> = fps.into_iter().collect();
        out.push(Diagnostic::new(
            DiagCode::InvalidationScope,
            Locus::CallPattern {
                text: format!("{domain}:{function}"),
            },
            format!(
                "an update to `{domain}:{function}` invalidates {} \
                 materialized subplan(s): {}",
                list.len(),
                list.join(", ")
            ),
        ));
    }
}

/// Call patterns of a body's `in` atoms, constants kept, variables `$b`
/// (a materialized subplan executes with its entry bindings ground).
fn body_patterns(body: &[BodyAtom]) -> Vec<CallPattern> {
    body.iter()
        .filter_map(|atom| match atom {
            BodyAtom::In { call, .. } => Some(CallPattern {
                domain: call.domain.clone(),
                function: call.function.clone(),
                args: call
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(v) => PatArg::Const(v.clone()),
                        Term::Var(_) => PatArg::Bound,
                    })
                    .collect(),
            }),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::parse_program;

    fn run_pass(src: &str, forms: &[&str], volatile: Option<&[&str]>) -> Vec<Diagnostic> {
        let program = parse_program(src).unwrap();
        let forms: Vec<QueryForm> = forms.iter().map(|f| QueryForm::parse(f).unwrap()).collect();
        let volatile_set: Option<BTreeSet<String>> =
            volatile.map(|v| v.iter().map(|s| s.to_string()).collect());
        let vol_fn = |d: &str, f: &str| {
            volatile_set
                .as_ref()
                .is_some_and(|set| set.contains(d) || set.contains(&format!("{d}:{f}")))
        };
        let inputs = Inputs {
            query_forms: &forms,
            cache_routes: None,
            volatile: volatile.map(|_| &vol_fn as CacheRoutes<'_>),
            dcsm: None,
        };
        let mut out = Vec::new();
        run(&program, &inputs, &mut out);
        out
    }

    #[test]
    fn safe_rule_is_inventoried_with_fingerprint() {
        let out = run_pass("p(A) :- in(A, d:f('x')).", &["p(f)"], None);
        let safe: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::MaterializeSafe)
            .collect();
        assert_eq!(safe.len(), 1);
        assert!(safe[0].fingerprint.is_some());
        // ...and its invalidation scope is reported.
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::InvalidationScope && d.message.contains("d:f")));
    }

    #[test]
    fn volatile_source_blocks_materialization() {
        let out = run_pass(
            "p(A) :- in(A, feed:price('x')).\nq(A) :- in(A, ref:name('x')).",
            &["p(f)", "q(f)"],
            Some(&["feed"]),
        );
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::MaterializeVolatile && d.message.contains("feed:price")));
        assert!(out
            .iter()
            .any(|d| d.code == DiagCode::MaterializeSafe && d.message.contains("safe")));
    }

    #[test]
    fn recursion_demands_delta_maintenance() {
        let out = run_pass(
            "reach(X, Y) :- in(Y, g:edge(X)).\n\
             reach(X, Y) :- reach(X, Z) & in(Y, g:edge(Z)).",
            &["reach(b, f)"],
            None,
        );
        let rec: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::MaterializeRecursive)
            .collect();
        assert_eq!(rec.len(), 2, "both rules sit on the SCC");
        assert!(!out.iter().any(|d| d.code == DiagCode::MaterializeSafe));
    }

    #[test]
    fn shared_fingerprint_is_reported_once() {
        let out = run_pass(
            "p(A, B) :- in(A, d:f('k')) & in(B, e:g(A)).\n\
             q(X, Y) :- in(X, d:f('k')) & in(Y, e:g(X)).",
            &["p(f, f)", "q(f, f)"],
            None,
        );
        let shared: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::SharedSubplan)
            .collect();
        assert_eq!(shared.len(), 1);
        assert!(shared[0].message.contains("2 rules"));
    }

    #[test]
    fn volatility_transits_through_idb_references() {
        // top/1 never calls feed directly, but its body reaches it via q/1.
        let out = run_pass(
            "top(A) :- q(A).\nq(A) :- in(A, feed:price('x')).",
            &["top(f)"],
            Some(&["feed"]),
        );
        let volatile: Vec<_> = out
            .iter()
            .filter(|d| d.code == DiagCode::MaterializeVolatile)
            .collect();
        assert_eq!(volatile.len(), 2, "{out:?}");
    }

    #[test]
    fn pure_idb_glue_and_facts_are_skipped() {
        let out = run_pass("p('a').\nq(A) :- p(A) & =(A, 'a').", &["q(f)"], None);
        assert!(out.is_empty(), "{out:?}");
    }
}
