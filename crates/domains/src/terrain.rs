//! A grid-map path planner (`findrte`), standing in for the US Army path
//! planning package of the paper's `routetosupplies` example (§2).
//!
//! The map is an occupancy grid with named locations. `findrte(from, to)`
//! runs A* and returns the route as a list of waypoint records. Cost is
//! driven by the number of nodes A* expands — strongly data-dependent and
//! effectively impossible to predict from the call arguments alone, which
//! makes this (like AVIS) a domain only a statistics cache can cost.

use crate::domain::{CallOutcome, ComputeCost, Domain, FunctionSig};
use hermes_common::sync::RwLock;
use hermes_common::{HermesError, Record, Result, Value};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::sync::Arc;

/// A grid coordinate.
pub type Cell = (i32, i32);

/// The terrain map: an occupancy grid plus named locations.
#[derive(Clone, Debug, Default)]
pub struct TerrainMap {
    width: i32,
    height: i32,
    blocked: std::collections::HashSet<Cell>,
    places: BTreeMap<Arc<str>, Cell>,
}

impl TerrainMap {
    /// An open map of the given size.
    pub fn new(width: i32, height: i32) -> Self {
        assert!(width > 0 && height > 0, "map must be non-empty");
        TerrainMap {
            width,
            height,
            blocked: Default::default(),
            places: BTreeMap::new(),
        }
    }

    /// Marks a cell impassable.
    pub fn block(&mut self, cell: Cell) {
        self.blocked.insert(cell);
    }

    /// Blocks a vertical wall at `x` from `y0` to `y1` inclusive, except
    /// cells listed in `gaps`.
    pub fn block_wall_x(&mut self, x: i32, y0: i32, y1: i32, gaps: &[i32]) {
        for y in y0..=y1 {
            if !gaps.contains(&y) {
                self.block((x, y));
            }
        }
    }

    /// Registers a named place. Panics if the cell is blocked or outside.
    pub fn add_place(&mut self, name: impl Into<Arc<str>>, cell: Cell) {
        assert!(self.in_bounds(cell), "place outside map");
        assert!(!self.blocked.contains(&cell), "place on blocked cell");
        self.places.insert(name.into(), cell);
    }

    /// Names of registered places.
    pub fn place_names(&self) -> Vec<Arc<str>> {
        self.places.keys().cloned().collect()
    }

    fn in_bounds(&self, (x, y): Cell) -> bool {
        x >= 0 && y >= 0 && x < self.width && y < self.height
    }

    fn passable(&self, c: Cell) -> bool {
        self.in_bounds(c) && !self.blocked.contains(&c)
    }

    /// A* from `from` to `to`; returns `(path, nodes_expanded)`. `None` if
    /// unreachable.
    pub fn find_route(&self, from: Cell, to: Cell) -> (Option<Vec<Cell>>, usize) {
        if !self.passable(from) || !self.passable(to) {
            return (None, 0);
        }
        let h = |(x, y): Cell| ((x - to.0).abs() + (y - to.1).abs()) as u64;
        let mut open: BinaryHeap<Reverse<(u64, u64, Cell)>> = BinaryHeap::new();
        let mut g: HashMap<Cell, u64> = HashMap::new();
        let mut parent: HashMap<Cell, Cell> = HashMap::new();
        let mut expanded = 0usize;
        g.insert(from, 0);
        open.push(Reverse((h(from), 0, from)));
        while let Some(Reverse((_, gc, cur))) = open.pop() {
            if g.get(&cur).copied().unwrap_or(u64::MAX) < gc {
                continue; // stale entry
            }
            expanded += 1;
            if cur == to {
                let mut path = vec![cur];
                let mut c = cur;
                while let Some(&p) = parent.get(&c) {
                    path.push(p);
                    c = p;
                }
                path.reverse();
                return (Some(path), expanded);
            }
            for (dx, dy) in [(1, 0), (-1, 0), (0, 1), (0, -1)] {
                let nxt = (cur.0 + dx, cur.1 + dy);
                if !self.passable(nxt) {
                    continue;
                }
                let ng = gc + 1;
                if ng < g.get(&nxt).copied().unwrap_or(u64::MAX) {
                    g.insert(nxt, ng);
                    parent.insert(nxt, cur);
                    open.push(Reverse((ng + h(nxt), ng, nxt)));
                }
            }
        }
        (None, expanded)
    }
}

/// Cost parameters, microseconds.
#[derive(Clone, Copy, Debug)]
pub struct TerrainCostParams {
    /// Fixed per-call startup (map load, planner init).
    pub startup_us: f64,
    /// Cost per A* node expansion.
    pub per_expansion_us: f64,
}

impl Default for TerrainCostParams {
    fn default() -> Self {
        TerrainCostParams {
            startup_us: 5_000.0,
            per_expansion_us: 3.0,
        }
    }
}

/// The terrain-planner domain.
///
/// Exported functions:
///
/// | function | args | answers |
/// |---|---|---|
/// | `findrte` | from-place, to-place | singleton route: a list of `{x, y}` waypoints |
/// | `distance` | from-place, to-place | singleton route length (cells), or empty if unreachable |
/// | `places` | — | registered place names |
pub struct TerrainDomain {
    name: Arc<str>,
    map: RwLock<TerrainMap>,
    params: TerrainCostParams,
}

impl TerrainDomain {
    /// Wraps a map as a domain.
    pub fn new(name: impl Into<Arc<str>>, map: TerrainMap) -> Self {
        TerrainDomain {
            name: name.into(),
            map: RwLock::new(map),
            params: TerrainCostParams::default(),
        }
    }

    fn place(&self, map: &TerrainMap, function: &str, v: &Value) -> Result<Cell> {
        let name = v.as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: place must be a string, got `{v}`",
                self.name
            ))
        })?;
        map.places
            .get(name)
            .copied()
            .ok_or_else(|| HermesError::Eval(format!("{}: unknown place `{name}`", self.name)))
    }

    fn cost(&self, expanded: usize) -> ComputeCost {
        let t_all_us = self.params.startup_us + self.params.per_expansion_us * expanded as f64;
        // The planner emits nothing until the route is complete.
        ComputeCost::from_millis(t_all_us / 1000.0, t_all_us / 1000.0)
    }
}

impl Domain for TerrainDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        vec![
            FunctionSig::new("findrte", 2, "route between two named places"),
            FunctionSig::new("distance", 2, "route length between two places"),
            FunctionSig::new("places", 0, "registered place names"),
        ]
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let arity = match function {
            "places" => 0,
            "findrte" | "distance" => 2,
            other => return Err(self.unknown_function(other)),
        };
        self.check_arity(function, arity, args)?;
        let map = self.map.read();
        match function {
            "places" => {
                let names: Vec<Value> = map.places.keys().map(|k| Value::Str(k.clone())).collect();
                Ok(CallOutcome {
                    answers: names,
                    compute: self.cost(0),
                })
            }
            "findrte" | "distance" => {
                let from = self.place(&map, function, &args[0])?;
                let to = self.place(&map, function, &args[1])?;
                let (path, expanded) = map.find_route(from, to);
                let answers = match (&path, function) {
                    (Some(p), "findrte") => {
                        let waypoints: Vec<Value> = p
                            .iter()
                            .map(|(x, y)| {
                                Value::Record(Record::from_fields([
                                    ("x", Value::Int(*x as i64)),
                                    ("y", Value::Int(*y as i64)),
                                ]))
                            })
                            .collect();
                        vec![Value::List(waypoints)]
                    }
                    (Some(p), _) => vec![Value::Int(p.len() as i64 - 1)],
                    (None, _) => vec![],
                };
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(expanded),
                })
            }
            _ => unreachable!("arity table covers functions"),
        }
    }
}

/// A 64×64 demo map with a wall and four named bases, used by examples and
/// experiments.
pub fn demo_map() -> TerrainMap {
    let mut m = TerrainMap::new(64, 64);
    // A wall splits the map, with two gates.
    m.block_wall_x(32, 0, 63, &[10, 50]);
    m.add_place("place1", (5, 5));
    m.add_place("pax river", (60, 8));
    m.add_place("aberdeen", (58, 60));
    m.add_place("college park", (8, 58));
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_found_and_passes_gate() {
        let d = TerrainDomain::new("terraindb", demo_map());
        let out = d
            .call("findrte", &[Value::str("place1"), Value::str("pax river")])
            .unwrap();
        assert_eq!(out.answers.len(), 1);
        match &out.answers[0] {
            Value::List(wps) => {
                assert!(wps.len() > 50); // must detour through a gate
                                         // Route crosses the wall only at a gate row.
                let crossing = wps.iter().find_map(|w| match w {
                    Value::Record(r) => {
                        if r.get("x") == Some(&Value::Int(32)) {
                            r.get("y").and_then(Value::as_int)
                        } else {
                            None
                        }
                    }
                    _ => None,
                });
                assert!(matches!(crossing, Some(10) | Some(50)));
            }
            other => panic!("expected list, got {other}"),
        }
    }

    #[test]
    fn distance_matches_route_length() {
        let d = TerrainDomain::new("terraindb", demo_map());
        let dist = d
            .call("distance", &[Value::str("place1"), Value::str("pax river")])
            .unwrap();
        let route = d
            .call("findrte", &[Value::str("place1"), Value::str("pax river")])
            .unwrap();
        let n_waypoints = match &route.answers[0] {
            Value::List(wps) => wps.len() as i64,
            _ => panic!(),
        };
        assert_eq!(dist.answers, vec![Value::Int(n_waypoints - 1)]);
    }

    #[test]
    fn unreachable_returns_empty() {
        let mut m = TerrainMap::new(10, 10);
        m.block_wall_x(5, 0, 9, &[]); // no gaps
        m.add_place("a", (0, 0));
        m.add_place("b", (9, 9));
        let d = TerrainDomain::new("terraindb", m);
        let out = d
            .call("findrte", &[Value::str("a"), Value::str("b")])
            .unwrap();
        assert!(out.answers.is_empty());
        assert!(out.compute.t_all.as_millis_f64() > 0.0);
    }

    #[test]
    fn same_place_route_is_trivial() {
        let d = TerrainDomain::new("terraindb", demo_map());
        let out = d
            .call("distance", &[Value::str("place1"), Value::str("place1")])
            .unwrap();
        assert_eq!(out.answers, vec![Value::Int(0)]);
    }

    #[test]
    fn unknown_place_is_error() {
        let d = TerrainDomain::new("terraindb", demo_map());
        assert!(matches!(
            d.call("findrte", &[Value::str("atlantis"), Value::str("place1")]),
            Err(HermesError::Eval(_))
        ));
    }

    #[test]
    fn cost_tracks_search_difficulty() {
        let d = TerrainDomain::new("terraindb", demo_map());
        // Nearby pair: cheap. Cross-wall pair: expensive.
        let near = d
            .call(
                "distance",
                &[Value::str("place1"), Value::str("college park")],
            )
            .unwrap()
            .compute
            .t_all;
        let far = d
            .call("distance", &[Value::str("place1"), Value::str("aberdeen")])
            .unwrap()
            .compute
            .t_all;
        assert!(far > near);
    }

    #[test]
    fn places_lists_names() {
        let d = TerrainDomain::new("terraindb", demo_map());
        let out = d.call("places", &[]).unwrap();
        assert_eq!(out.answers.len(), 4);
    }

    #[test]
    fn astar_is_optimal_on_open_map() {
        let m = {
            let mut m = TerrainMap::new(20, 20);
            m.add_place("a", (0, 0));
            m.add_place("b", (7, 5));
            m
        };
        let (path, _) = m.find_route((0, 0), (7, 5));
        assert_eq!(path.unwrap().len() as i32 - 1, 12); // Manhattan distance
    }
}
