//! An object-oriented database — the paper's testbed lists "one
//! object-oriented DBMS (ObjectStore)".
//!
//! Objects belong to named classes, carry attribute records, and hold
//! typed *references* to other objects. The function surface exposes
//! class extents, object fetches, and reference traversal — the
//! navigational access pattern that distinguishes an OODB from the
//! relational engine. Traversal cost is pointer-chasing: proportional to
//! the number of objects visited.

use crate::domain::{CallOutcome, ComputeCost, Domain, FunctionSig};
use hermes_common::sync::RwLock;
use hermes_common::{HermesError, Record, Result, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An object identifier: class-local, dense.
pub type Oid = u32;

/// One stored object.
#[derive(Clone, Debug)]
pub struct StoredObject {
    /// The object's id within its class.
    pub oid: Oid,
    /// Attribute values.
    pub attrs: Record,
    /// Named references: field → (class, oid) targets.
    pub refs: BTreeMap<Arc<str>, Vec<(Arc<str>, Oid)>>,
}

#[derive(Clone, Debug, Default)]
struct Class {
    objects: Vec<StoredObject>,
}

/// Cost parameters, microseconds.
#[derive(Clone, Copy, Debug)]
pub struct ObjectStoreCostParams {
    /// Fixed per-call startup.
    pub startup_us: f64,
    /// Cost per object materialized.
    pub per_object_us: f64,
    /// Cost per reference edge traversed.
    pub per_edge_us: f64,
}

impl Default for ObjectStoreCostParams {
    fn default() -> Self {
        ObjectStoreCostParams {
            startup_us: 1_000.0,
            per_object_us: 12.0,
            per_edge_us: 3.0,
        }
    }
}

/// The object-store domain.
///
/// Exported functions:
///
/// | function | args | answers |
/// |---|---|---|
/// | `extent` | class | every object of the class, as records |
/// | `get` | class, oid | singleton object record |
/// | `follow` | class, oid, ref-field | records of the referenced objects |
/// | `reachable` | class, oid, ref-field, depth | objects reachable in ≤ depth hops along the field |
/// | `extent_size` | class | singleton count |
pub struct ObjectStoreDomain {
    name: Arc<str>,
    classes: RwLock<BTreeMap<Arc<str>, Class>>,
    params: ObjectStoreCostParams,
}

impl ObjectStoreDomain {
    /// Creates an empty store.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        ObjectStoreDomain {
            name: name.into(),
            classes: RwLock::new(BTreeMap::new()),
            params: ObjectStoreCostParams::default(),
        }
    }

    /// Creates an object in `class`; returns its oid. References can be
    /// added afterwards with [`ObjectStoreDomain::add_ref`].
    pub fn create(&self, class: impl Into<Arc<str>>, attrs: Record) -> Oid {
        let mut classes = self.classes.write();
        let c = classes.entry(class.into()).or_default();
        let oid = c.objects.len() as Oid;
        c.objects.push(StoredObject {
            oid,
            attrs,
            refs: BTreeMap::new(),
        });
        oid
    }

    /// Adds a reference edge `class(oid).field → to_class(to_oid)`.
    /// Returns false if the source object does not exist (the target is
    /// not checked — dangling references are representable, as in real
    /// OODBs, and `follow` skips them).
    pub fn add_ref(
        &self,
        class: &str,
        oid: Oid,
        field: impl Into<Arc<str>>,
        to_class: impl Into<Arc<str>>,
        to_oid: Oid,
    ) -> bool {
        let mut classes = self.classes.write();
        let Some(obj) = classes
            .get_mut(class)
            .and_then(|c| c.objects.get_mut(oid as usize))
        else {
            return false;
        };
        obj.refs
            .entry(field.into())
            .or_default()
            .push((to_class.into(), to_oid));
        true
    }

    fn object_record(class: &str, obj: &StoredObject) -> Value {
        let mut rec = Record::new();
        rec.push("class", Value::str(class));
        rec.push("oid", Value::Int(obj.oid as i64));
        for (name, v) in obj.attrs.iter() {
            rec.push(name.to_string(), v.clone());
        }
        Value::Record(rec)
    }

    fn cost(&self, objects: usize, edges: usize) -> ComputeCost {
        let p = &self.params;
        let t_all_us =
            p.startup_us + p.per_object_us * objects as f64 + p.per_edge_us * edges as f64;
        let t_first_us = p.startup_us + p.per_object_us;
        ComputeCost::from_millis(t_first_us / 1000.0, t_all_us / 1000.0)
    }
}

impl Domain for ObjectStoreDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        vec![
            FunctionSig::new("extent", 1, "every object of a class"),
            FunctionSig::new("get", 2, "one object by oid"),
            FunctionSig::new("follow", 3, "objects referenced by a field"),
            FunctionSig::new("reachable", 4, "objects within N hops along a field"),
            FunctionSig::new("extent_size", 1, "class cardinality"),
        ]
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let arity = match function {
            "extent" | "extent_size" => 1,
            "get" => 2,
            "follow" => 3,
            "reachable" => 4,
            other => return Err(self.unknown_function(other)),
        };
        self.check_arity(function, arity, args)?;
        let classes = self.classes.read();
        let cname = args[0].as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: first argument must be a class name",
                self.name
            ))
        })?;
        let class = classes
            .get(cname)
            .ok_or_else(|| HermesError::Eval(format!("{}: no class `{cname}`", self.name)))?;
        let oid_arg = |v: &Value| -> Result<Oid> {
            match v.as_int() {
                Some(i) if i >= 0 && i <= u32::MAX as i64 => Ok(i as Oid),
                _ => Err(HermesError::Type(format!(
                    "{}:{function}: oid must be a non-negative integer, got `{v}`",
                    self.name
                ))),
            }
        };
        match function {
            "extent" => {
                let answers: Vec<Value> = class
                    .objects
                    .iter()
                    .map(|o| Self::object_record(cname, o))
                    .collect();
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(n, 0),
                })
            }
            "extent_size" => Ok(CallOutcome {
                answers: vec![Value::Int(class.objects.len() as i64)],
                compute: self.cost(1, 0),
            }),
            "get" => {
                let oid = oid_arg(&args[1])?;
                let answers: Vec<Value> = class
                    .objects
                    .get(oid as usize)
                    .map(|o| Self::object_record(cname, o))
                    .into_iter()
                    .collect();
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(n, 0),
                })
            }
            "follow" => {
                let oid = oid_arg(&args[1])?;
                let field = args[2].as_str().ok_or_else(|| {
                    HermesError::Type(format!("{}:follow: field must be a string", self.name))
                })?;
                let mut answers = Vec::new();
                let mut edges = 0usize;
                if let Some(obj) = class.objects.get(oid as usize) {
                    if let Some(targets) = obj.refs.get(field) {
                        for (tclass, toid) in targets {
                            edges += 1;
                            if let Some(t) = classes
                                .get(tclass)
                                .and_then(|c| c.objects.get(*toid as usize))
                            {
                                answers.push(Self::object_record(tclass, t));
                            }
                        }
                    }
                }
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(n, edges),
                })
            }
            "reachable" => {
                let oid = oid_arg(&args[1])?;
                let field = args[2].as_str().ok_or_else(|| {
                    HermesError::Type(format!("{}:reachable: field must be a string", self.name))
                })?;
                let depth = args[3].as_int().filter(|d| *d >= 0).ok_or_else(|| {
                    HermesError::Type(format!(
                        "{}:reachable: depth must be a non-negative integer",
                        self.name
                    ))
                })? as usize;
                // BFS along `field`, bounded by depth, deduplicated.
                let mut seen: std::collections::BTreeSet<(Arc<str>, Oid)> = Default::default();
                let mut frontier: Vec<(Arc<str>, Oid)> = vec![(Arc::from(cname), oid)];
                let mut answers = Vec::new();
                let mut edges = 0usize;
                for _ in 0..depth {
                    let mut next = Vec::new();
                    for (c, o) in frontier.drain(..) {
                        let Some(obj) = classes.get(&c).and_then(|cl| cl.objects.get(o as usize))
                        else {
                            continue;
                        };
                        if let Some(targets) = obj.refs.get(field) {
                            for (tc, to) in targets {
                                edges += 1;
                                if seen.insert((tc.clone(), *to)) {
                                    if let Some(t) =
                                        classes.get(tc).and_then(|cl| cl.objects.get(*to as usize))
                                    {
                                        answers.push(Self::object_record(tc, t));
                                        next.push((tc.clone(), *to));
                                    }
                                }
                            }
                        }
                    }
                    frontier = next;
                    if frontier.is_empty() {
                        break;
                    }
                }
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(n, edges),
                })
            }
            _ => unreachable!("arity table covers functions"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small parts catalog: assemblies reference their components.
    fn store() -> ObjectStoreDomain {
        let d = ObjectStoreDomain::new("objstore");
        let engine = d.create(
            "part",
            Record::from_fields([("name", Value::str("engine")), ("mass", Value::Int(900))]),
        );
        let piston = d.create(
            "part",
            Record::from_fields([("name", Value::str("piston")), ("mass", Value::Int(3))]),
        );
        let ring = d.create(
            "part",
            Record::from_fields([("name", Value::str("ring")), ("mass", Value::Int(1))]),
        );
        let heli = d.create(
            "vehicle",
            Record::from_fields([("name", Value::str("h-22"))]),
        );
        d.add_ref("vehicle", heli, "parts", "part", engine);
        d.add_ref("part", engine, "parts", "part", piston);
        d.add_ref("part", piston, "parts", "part", ring);
        d
    }

    #[test]
    fn extent_and_size() {
        let d = store();
        let parts = d.call("extent", &[Value::str("part")]).unwrap();
        assert_eq!(parts.answers.len(), 3);
        let n = d.call("extent_size", &[Value::str("part")]).unwrap();
        assert_eq!(n.answers, vec![Value::Int(3)]);
    }

    #[test]
    fn get_returns_attrs_with_identity() {
        let d = store();
        let out = d.call("get", &[Value::str("part"), Value::Int(0)]).unwrap();
        match &out.answers[0] {
            Value::Record(r) => {
                assert_eq!(r.get("class"), Some(&Value::str("part")));
                assert_eq!(r.get("oid"), Some(&Value::Int(0)));
                assert_eq!(r.get("name"), Some(&Value::str("engine")));
            }
            other => panic!("unexpected {other}"),
        }
        let miss = d
            .call("get", &[Value::str("part"), Value::Int(99)])
            .unwrap();
        assert!(miss.answers.is_empty());
    }

    #[test]
    fn follow_traverses_one_hop_across_classes() {
        let d = store();
        let out = d
            .call(
                "follow",
                &[Value::str("vehicle"), Value::Int(0), Value::str("parts")],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 1);
        match &out.answers[0] {
            Value::Record(r) => assert_eq!(r.get("name"), Some(&Value::str("engine"))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn reachable_bounded_bfs() {
        let d = store();
        let hops = |depth: i64| {
            d.call(
                "reachable",
                &[
                    Value::str("vehicle"),
                    Value::Int(0),
                    Value::str("parts"),
                    Value::Int(depth),
                ],
            )
            .unwrap()
            .answers
            .len()
        };
        assert_eq!(hops(0), 0);
        assert_eq!(hops(1), 1); // engine
        assert_eq!(hops(2), 2); // + piston
        assert_eq!(hops(3), 3); // + ring
        assert_eq!(hops(10), 3); // closure
    }

    #[test]
    fn cycles_terminate() {
        let d = ObjectStoreDomain::new("objstore");
        let a = d.create("n", Record::from_fields([("name", Value::str("a"))]));
        let b = d.create("n", Record::from_fields([("name", Value::str("b"))]));
        d.add_ref("n", a, "next", "n", b);
        d.add_ref("n", b, "next", "n", a);
        let out = d
            .call(
                "reachable",
                &[
                    Value::str("n"),
                    Value::Int(a as i64),
                    Value::str("next"),
                    Value::Int(50),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 2); // b then a, once each
    }

    #[test]
    fn dangling_references_are_skipped() {
        let d = ObjectStoreDomain::new("objstore");
        let a = d.create("n", Record::new());
        d.add_ref("n", a, "next", "n", 999);
        let out = d
            .call(
                "follow",
                &[Value::str("n"), Value::Int(0), Value::str("next")],
            )
            .unwrap();
        assert!(out.answers.is_empty());
        assert!(!d.add_ref("n", 42, "next", "n", 0));
    }

    #[test]
    fn deeper_traversals_cost_more() {
        let d = store();
        let cost = |depth: i64| {
            d.call(
                "reachable",
                &[
                    Value::str("vehicle"),
                    Value::Int(0),
                    Value::str("parts"),
                    Value::Int(depth),
                ],
            )
            .unwrap()
            .compute
            .t_all
        };
        assert!(cost(3) > cost(1));
    }

    #[test]
    fn errors_on_bad_input() {
        let d = store();
        assert!(d.call("extent", &[Value::str("nope")]).is_err());
        assert!(d
            .call("get", &[Value::str("part"), Value::Int(-1)])
            .is_err());
        assert!(d
            .call(
                "reachable",
                &[
                    Value::str("part"),
                    Value::Int(0),
                    Value::str("parts"),
                    Value::Int(-2)
                ],
            )
            .is_err());
    }
}
