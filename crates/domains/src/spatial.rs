//! A spatial point database with grid-indexed range queries.
//!
//! The substrate behind the paper's §4 invariant example:
//!
//! ```text
//! Dist > 142 => spatial:range('points', X, Y, Dist)
//!             = spatial:range('points', X, Y, 142).
//! ```
//!
//! Point sets live in named "files"; `range(file, x, y, dist)` returns every
//! point within Euclidean distance `dist` of `(x, y)`. A uniform grid index
//! limits the cells examined, so cost grows with the query radius — which is
//! exactly why the range-shrinking invariant saves work.

use crate::domain::{CallOutcome, ComputeCost, Domain, FunctionSig};
use hermes_common::sync::RwLock;
use hermes_common::{HermesError, Record, Result, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A 2-D point with an identifying label.
#[derive(Clone, Debug, PartialEq)]
pub struct Point {
    /// Point label (unique within its file by convention).
    pub label: Arc<str>,
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

/// One named point set plus its grid index.
#[derive(Clone, Debug)]
struct PointFile {
    points: Vec<Point>,
    cell: f64,
    /// (cx, cy) → indexes into `points`.
    grid: BTreeMap<(i64, i64), Vec<usize>>,
}

impl PointFile {
    fn new(points: Vec<Point>, cell: f64) -> Self {
        let mut grid: BTreeMap<(i64, i64), Vec<usize>> = BTreeMap::new();
        for (i, p) in points.iter().enumerate() {
            grid.entry(Self::cell_of(p.x, p.y, cell))
                .or_default()
                .push(i);
        }
        PointFile { points, cell, grid }
    }

    fn cell_of(x: f64, y: f64, cell: f64) -> (i64, i64) {
        ((x / cell).floor() as i64, (y / cell).floor() as i64)
    }

    /// Points within `dist` of `(x, y)`, plus the number of candidate
    /// points examined (the cost driver).
    fn range(&self, x: f64, y: f64, dist: f64) -> (Vec<&Point>, usize) {
        if dist < 0.0 {
            return (Vec::new(), 0);
        }
        let (cx0, cy0) = Self::cell_of(x - dist, y - dist, self.cell);
        let (cx1, cy1) = Self::cell_of(x + dist, y + dist, self.cell);
        let mut hits = Vec::new();
        let mut examined = 0usize;
        let d2 = dist * dist;
        for cx in cx0..=cx1 {
            for cy in cy0..=cy1 {
                if let Some(ids) = self.grid.get(&(cx, cy)) {
                    for &i in ids {
                        examined += 1;
                        let p = &self.points[i];
                        let dx = p.x - x;
                        let dy = p.y - y;
                        if dx * dx + dy * dy <= d2 {
                            hits.push(p);
                        }
                    }
                }
            }
        }
        (hits, examined)
    }
}

/// Cost parameters, microseconds.
#[derive(Clone, Copy, Debug)]
pub struct SpatialCostParams {
    /// Fixed per-call startup.
    pub startup_us: f64,
    /// Cost per candidate point examined.
    pub per_candidate_us: f64,
    /// Cost per hit returned.
    pub per_hit_us: f64,
}

impl Default for SpatialCostParams {
    fn default() -> Self {
        SpatialCostParams {
            startup_us: 900.0,
            per_candidate_us: 0.8,
            per_hit_us: 5.0,
        }
    }
}

/// The spatial domain.
///
/// Exported functions:
///
/// | function | args | answers |
/// |---|---|---|
/// | `range` | file, x, y, dist | points within `dist` of `(x, y)`, as `{label, x, y}` records |
/// | `count_range` | file, x, y, dist | singleton hit count |
/// | `size` | file | singleton point count |
pub struct SpatialDomain {
    name: Arc<str>,
    files: RwLock<BTreeMap<Arc<str>, PointFile>>,
    params: SpatialCostParams,
}

impl SpatialDomain {
    /// Creates an empty spatial store.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        SpatialDomain {
            name: name.into(),
            files: RwLock::new(BTreeMap::new()),
            params: SpatialCostParams::default(),
        }
    }

    /// Loads a point file with the given grid cell size.
    pub fn load_points(&self, file: impl Into<Arc<str>>, points: Vec<Point>, cell: f64) {
        assert!(cell > 0.0, "grid cell size must be positive");
        self.files
            .write()
            .insert(file.into(), PointFile::new(points, cell));
    }

    fn num(&self, function: &str, v: &Value) -> Result<f64> {
        v.as_f64().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: expected a numeric argument, got `{v}`",
                self.name
            ))
        })
    }

    fn cost(&self, examined: usize, hits: usize) -> ComputeCost {
        let p = &self.params;
        let t_all_us =
            p.startup_us + p.per_candidate_us * examined as f64 + p.per_hit_us * hits as f64;
        let t_first_us =
            p.startup_us + p.per_candidate_us * (examined as f64).sqrt() + p.per_hit_us;
        ComputeCost::from_millis(t_first_us / 1000.0, t_all_us / 1000.0)
    }
}

impl Domain for SpatialDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        vec![
            FunctionSig::new("range", 4, "points within a distance of (x, y)"),
            FunctionSig::new("count_range", 4, "number of points within a distance"),
            FunctionSig::new("size", 1, "number of points in a file"),
        ]
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let arity = match function {
            "size" => 1,
            "range" | "count_range" => 4,
            other => return Err(self.unknown_function(other)),
        };
        self.check_arity(function, arity, args)?;
        let files = self.files.read();
        let fname = args[0].as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: first argument must be a file name",
                self.name
            ))
        })?;
        let file = files
            .get(fname)
            .ok_or_else(|| HermesError::Eval(format!("{}: no point file `{fname}`", self.name)))?;
        match function {
            "size" => Ok(CallOutcome {
                answers: vec![Value::Int(file.points.len() as i64)],
                compute: self.cost(0, 1),
            }),
            "range" | "count_range" => {
                let x = self.num(function, &args[1])?;
                let y = self.num(function, &args[2])?;
                let dist = self.num(function, &args[3])?;
                let (hits, examined) = file.range(x, y, dist);
                let n = hits.len();
                let answers = if function == "range" {
                    hits.into_iter()
                        .map(|p| {
                            Value::Record(Record::from_fields([
                                ("label", Value::Str(p.label.clone())),
                                ("x", Value::Float(p.x)),
                                ("y", Value::Float(p.y)),
                            ]))
                        })
                        .collect()
                } else {
                    vec![Value::Int(n as i64)]
                };
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(examined, n),
                })
            }
            _ => unreachable!("arity table covers functions"),
        }
    }
}

/// Generates `n` points uniformly over `[0, extent] × [0, extent]`.
pub fn uniform_points(seed: u64, n: usize, extent: f64) -> Vec<Point> {
    let mut rng = hermes_common::Rng64::new(seed);
    (0..n)
        .map(|i| Point {
            label: Arc::from(format!("p{i}")),
            x: rng.range_f64(0.0, extent),
            y: rng.range_f64(0.0, extent),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SpatialDomain {
        let d = SpatialDomain::new("spatial");
        let pts = vec![
            Point {
                label: Arc::from("a"),
                x: 0.0,
                y: 0.0,
            },
            Point {
                label: Arc::from("b"),
                x: 3.0,
                y: 4.0,
            }, // dist 5 from origin
            Point {
                label: Arc::from("c"),
                x: 50.0,
                y: 50.0,
            },
            Point {
                label: Arc::from("d"),
                x: 99.0,
                y: 99.0,
            },
        ];
        d.load_points("points", pts, 10.0);
        d
    }

    #[test]
    fn range_euclidean_inclusive() {
        let d = store();
        let out = d
            .call(
                "range",
                &[
                    Value::str("points"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(5),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 2); // a at 0, b at exactly 5
    }

    #[test]
    fn range_excludes_beyond() {
        let d = store();
        let out = d
            .call(
                "range",
                &[
                    Value::str("points"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Float(4.9),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn whole_square_range_covers_everything() {
        // The §4 example: a 100x100 square is fully covered by dist 142.
        let d = store();
        let out = d
            .call(
                "range",
                &[
                    Value::str("points"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(142),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 4);
        // And a bigger radius returns exactly the same set.
        let out2 = d
            .call(
                "range",
                &[
                    Value::str("points"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(10_000),
                ],
            )
            .unwrap();
        assert_eq!(out.answers, out2.answers);
    }

    #[test]
    fn negative_distance_is_empty() {
        let d = store();
        let out = d
            .call(
                "range",
                &[
                    Value::str("points"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(-1),
                ],
            )
            .unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn count_range_and_size() {
        let d = store();
        let c = d
            .call(
                "count_range",
                &[
                    Value::str("points"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(5),
                ],
            )
            .unwrap();
        assert_eq!(c.answers, vec![Value::Int(2)]);
        let s = d.call("size", &[Value::str("points")]).unwrap();
        assert_eq!(s.answers, vec![Value::Int(4)]);
    }

    #[test]
    fn larger_radius_costs_more() {
        let d = SpatialDomain::new("spatial");
        d.load_points("u", uniform_points(1, 5_000, 1_000.0), 25.0);
        let small = d
            .call(
                "range",
                &[
                    Value::str("u"),
                    Value::Int(500),
                    Value::Int(500),
                    Value::Int(10),
                ],
            )
            .unwrap()
            .compute
            .t_all;
        let large = d
            .call(
                "range",
                &[
                    Value::str("u"),
                    Value::Int(500),
                    Value::Int(500),
                    Value::Int(400),
                ],
            )
            .unwrap()
            .compute
            .t_all;
        assert!(large > small);
    }

    #[test]
    fn record_answer_shape() {
        let d = store();
        let out = d
            .call(
                "range",
                &[
                    Value::str("points"),
                    Value::Int(50),
                    Value::Int(50),
                    Value::Int(1),
                ],
            )
            .unwrap();
        match &out.answers[0] {
            Value::Record(r) => {
                assert_eq!(r.get("label"), Some(&Value::str("c")));
                assert_eq!(r.get("x"), Some(&Value::Float(50.0)));
            }
            other => panic!("expected record, got {other}"),
        }
    }

    #[test]
    fn errors_on_bad_input() {
        let d = store();
        assert!(d
            .call(
                "range",
                &[
                    Value::str("nope"),
                    Value::Int(0),
                    Value::Int(0),
                    Value::Int(5)
                ]
            )
            .is_err());
        assert!(d
            .call(
                "range",
                &[
                    Value::str("points"),
                    Value::str("x"),
                    Value::Int(0),
                    Value::Int(5)
                ]
            )
            .is_err());
    }

    #[test]
    fn uniform_points_deterministic() {
        assert_eq!(
            uniform_points(9, 10, 100.0)[3].x,
            uniform_points(9, 10, 100.0)[3].x
        );
    }
}
