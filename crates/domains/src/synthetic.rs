//! A fully parameterizable synthetic domain for optimizer experiments.
//!
//! The plan-choice experiment (§8 claims 1–2) needs many queries whose
//! alternative orderings have *known, controllable* cost differences. This
//! domain generates binary relations `R ⊆ U × U` deterministically from a
//! seed and exposes each through the paper's binding-pattern function
//! family (Example 5.1):
//!
//! * `{r}_ff()` — all pairs, as `{a, b}` records;
//! * `{r}_bf(a)` — every `b` with `(a, b) ∈ R`;
//! * `{r}_fb(b)` — every `a` with `(a, b) ∈ R`;
//! * `{r}_bb(a, b)` — the pair itself if `(a, b) ∈ R`, else empty.
//!
//! All four views are consistent by construction, so every subgoal ordering
//! of a query computes the same answers — differing only in simulated cost,
//! which is exactly what the optimizer experiments measure.

use crate::domain::{CallOutcome, ComputeCost, Domain, FunctionSig};
use hermes_common::{Record, Result, Rng64, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-relation cost profile, milliseconds.
#[derive(Clone, Copy, Debug)]
pub struct CostProfile {
    /// Fixed per-call startup.
    pub start_ms: f64,
    /// Cost per answer produced.
    pub per_answer_ms: f64,
    /// Cost of one indexed probe (`_bf` / `_fb` / `_bb`).
    pub per_probe_ms: f64,
}

impl Default for CostProfile {
    fn default() -> Self {
        CostProfile {
            start_ms: 1.0,
            per_answer_ms: 0.05,
            per_probe_ms: 0.2,
        }
    }
}

/// A generated binary relation with forward and inverse adjacency.
#[derive(Clone, Debug)]
struct SyntheticRelation {
    pairs: Vec<(Value, Value)>,
    forward: BTreeMap<Value, Vec<Value>>,
    inverse: BTreeMap<Value, Vec<Value>>,
    profile: CostProfile,
}

/// Configuration for generating one relation.
#[derive(Clone, Debug)]
pub struct RelationSpec {
    /// Relation name (function family prefix).
    pub name: String,
    /// Number of distinct left-hand values.
    pub domain_size: usize,
    /// Mean out-degree (right-hand values per left value).
    pub avg_fanout: f64,
    /// Zipf skew of the fanout across left values (0 = uniform).
    pub skew: f64,
    /// Size of the right-hand value universe.
    pub range_size: usize,
    /// Cost profile for this relation's functions.
    pub profile: CostProfile,
}

impl RelationSpec {
    /// A uniform relation with default costs.
    pub fn uniform(name: impl Into<String>, domain_size: usize, avg_fanout: f64) -> Self {
        RelationSpec {
            name: name.into(),
            domain_size,
            avg_fanout,
            skew: 0.0,
            range_size: domain_size * 2,
            profile: CostProfile::default(),
        }
    }

    /// Overrides the cost profile.
    pub fn with_profile(mut self, profile: CostProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Overrides the skew.
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }
}

/// The synthetic domain: a set of generated relations.
pub struct SyntheticDomain {
    name: Arc<str>,
    relations: BTreeMap<String, SyntheticRelation>,
}

impl SyntheticDomain {
    /// Generates the domain from relation specs, deterministically.
    pub fn generate(name: impl Into<Arc<str>>, seed: u64, specs: &[RelationSpec]) -> Self {
        let mut rng = Rng64::new(seed);
        let mut relations = BTreeMap::new();
        for spec in specs {
            let mut r = rng.fork(relations.len() as u64 + 1);
            relations.insert(spec.name.clone(), Self::generate_relation(&mut r, spec));
        }
        SyntheticDomain {
            name: name.into(),
            relations,
        }
    }

    fn generate_relation(rng: &mut Rng64, spec: &RelationSpec) -> SyntheticRelation {
        let mut pairs = Vec::new();
        let mut forward: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
        let mut inverse: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
        for a_idx in 0..spec.domain_size {
            let a = Value::str(format!("{}_{a_idx}", spec.name));
            // Skewed fanout: popular left values have larger out-degree.
            let weight = if spec.skew > 0.0 {
                (spec.domain_size as f64 / (a_idx as f64 + 1.0)).powf(spec.skew)
            } else {
                1.0
            };
            let norm = if spec.skew > 0.0 {
                // Normalize so the mean fanout stays ~avg_fanout.
                let total: f64 = (0..spec.domain_size)
                    .map(|i| (spec.domain_size as f64 / (i as f64 + 1.0)).powf(spec.skew))
                    .sum();
                spec.domain_size as f64 / total
            } else {
                1.0
            };
            let mean = (spec.avg_fanout * weight * norm).max(0.0);
            let fanout = rng.exponential(mean.max(1e-9)).round() as usize;
            let mut seen = std::collections::HashSet::new();
            for _ in 0..fanout {
                let b_idx = rng.range_usize(0, spec.range_size.max(1));
                if !seen.insert(b_idx) {
                    continue;
                }
                let b = Value::Int(b_idx as i64);
                pairs.push((a.clone(), b.clone()));
                forward.entry(a.clone()).or_default().push(b.clone());
                inverse.entry(b).or_default().push(a.clone());
            }
        }
        SyntheticRelation {
            pairs,
            forward,
            inverse,
            profile: spec.profile,
        }
    }

    /// Relation names.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(|s| s.as_str()).collect()
    }

    /// All left-hand values of a relation (workload generators draw probe
    /// arguments from here).
    pub fn domain_values(&self, relation: &str) -> Vec<Value> {
        self.relations
            .get(relation)
            .map(|r| r.forward.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// All right-hand values of a relation.
    pub fn range_values(&self, relation: &str) -> Vec<Value> {
        self.relations
            .get(relation)
            .map(|r| r.inverse.keys().cloned().collect())
            .unwrap_or_default()
    }

    /// Total number of pairs in a relation.
    pub fn pair_count(&self, relation: &str) -> usize {
        self.relations
            .get(relation)
            .map(|r| r.pairs.len())
            .unwrap_or(0)
    }

    fn split_function<'f>(&self, function: &'f str) -> Option<(&'f str, &'f str)> {
        let (rel, mode) = function.rsplit_once('_')?;
        if matches!(mode, "ff" | "bf" | "fb" | "bb") && self.relations.contains_key(rel) {
            Some((rel, mode))
        } else {
            None
        }
    }

    fn pair_record(a: &Value, b: &Value) -> Value {
        Value::Record(Record::from_fields([("a", a.clone()), ("b", b.clone())]))
    }
}

impl Domain for SyntheticDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        let mut out = Vec::new();
        for rel in self.relations.keys() {
            out.push(FunctionSig::new(format!("{rel}_ff"), 0, "all pairs"));
            out.push(FunctionSig::new(
                format!("{rel}_bf"),
                1,
                "b values for an a",
            ));
            out.push(FunctionSig::new(format!("{rel}_fb"), 1, "a values for a b"));
            out.push(FunctionSig::new(format!("{rel}_bb"), 2, "membership probe"));
        }
        out
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let (rel_name, mode) = self
            .split_function(function)
            .ok_or_else(|| self.unknown_function(function))?;
        let rel = &self.relations[rel_name];
        let p = rel.profile;
        match mode {
            "ff" => {
                self.check_arity(function, 0, args)?;
                let answers: Vec<Value> = rel
                    .pairs
                    .iter()
                    .map(|(a, b)| Self::pair_record(a, b))
                    .collect();
                let n = answers.len() as f64;
                Ok(CallOutcome {
                    answers,
                    compute: ComputeCost::from_millis(
                        p.start_ms + p.per_answer_ms,
                        p.start_ms + p.per_answer_ms * n,
                    ),
                })
            }
            "bf" | "fb" => {
                self.check_arity(function, 1, args)?;
                let map = if mode == "bf" {
                    &rel.forward
                } else {
                    &rel.inverse
                };
                let answers = map.get(&args[0]).cloned().unwrap_or_default();
                let n = answers.len() as f64;
                Ok(CallOutcome {
                    answers,
                    compute: ComputeCost::from_millis(
                        p.start_ms + p.per_probe_ms + p.per_answer_ms,
                        p.start_ms + p.per_probe_ms + p.per_answer_ms * n,
                    ),
                })
            }
            "bb" => {
                self.check_arity(function, 2, args)?;
                let hit = rel
                    .forward
                    .get(&args[0])
                    .is_some_and(|bs| bs.contains(&args[1]));
                let answers = if hit {
                    vec![Self::pair_record(&args[0], &args[1])]
                } else {
                    vec![]
                };
                Ok(CallOutcome {
                    answers,
                    compute: ComputeCost::from_millis(
                        p.start_ms + p.per_probe_ms,
                        p.start_ms + p.per_probe_ms,
                    ),
                })
            }
            _ => Err(self.unknown_function(function)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> SyntheticDomain {
        SyntheticDomain::generate(
            "d1",
            42,
            &[
                RelationSpec::uniform("p", 20, 3.0),
                RelationSpec::uniform("q", 40, 2.0).with_skew(1.0),
            ],
        )
    }

    #[test]
    fn views_are_mutually_consistent() {
        let d = domain();
        let all = d.call("p_ff", &[]).unwrap().answers;
        assert_eq!(all.len(), d.pair_count("p"));
        for pair in &all {
            let (a, b) = match pair {
                Value::Record(r) => (r.get("a").unwrap().clone(), r.get("b").unwrap().clone()),
                other => panic!("expected record, got {other}"),
            };
            // forward view contains b
            let bf = d.call("p_bf", std::slice::from_ref(&a)).unwrap().answers;
            assert!(bf.contains(&b), "p_bf({a}) missing {b}");
            // inverse view contains a
            let fb = d.call("p_fb", std::slice::from_ref(&b)).unwrap().answers;
            assert!(fb.contains(&a), "p_fb({b}) missing {a}");
            // membership probe hits
            let bb = d.call("p_bb", &[a.clone(), b.clone()]).unwrap().answers;
            assert_eq!(bb.len(), 1);
        }
    }

    #[test]
    fn missing_pair_probe_is_empty() {
        let d = domain();
        let out = d
            .call("p_bb", &[Value::str("no_such"), Value::Int(0)])
            .unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = domain().call("q_ff", &[]).unwrap().answers;
        let b = domain().call("q_ff", &[]).unwrap().answers;
        assert_eq!(a, b);
    }

    #[test]
    fn skew_concentrates_fanout() {
        let d = SyntheticDomain::generate(
            "d",
            1,
            &[RelationSpec::uniform("r", 200, 4.0).with_skew(1.5)],
        );
        let values = d.domain_values("r");
        let degree = |v: &Value| {
            d.call("r_bf", std::slice::from_ref(v))
                .unwrap()
                .answers
                .len()
        };
        // First (most popular) left values should dominate the tail.
        let head: usize = values.iter().take(5).map(degree).sum();
        let tail: usize = values.iter().rev().take(5).map(degree).sum();
        assert!(head > tail, "head {head} <= tail {tail}");
    }

    #[test]
    fn ff_costs_scale_with_size_and_probe_is_cheap() {
        let d = domain();
        let ff = d.call("p_ff", &[]).unwrap().compute.t_all;
        let a = d.domain_values("p")[0].clone();
        let bf = d
            .call("p_bf", std::slice::from_ref(&a))
            .unwrap()
            .compute
            .t_all;
        assert!(ff > bf);
    }

    #[test]
    fn unknown_function_shapes_rejected() {
        let d = domain();
        assert!(d.call("z_ff", &[]).is_err());
        assert!(d.call("p_xx", &[]).is_err());
        assert!(d.call("p", &[]).is_err());
    }

    #[test]
    fn signatures_enumerate_all_views() {
        let d = domain();
        let sigs = d.functions();
        assert_eq!(sigs.len(), 8); // 2 relations × 4 views
    }
}
