//! Synthetic video datasets, including the paper's "The Rope".
//!
//! Figure 5 and the appendix queries run against Hitchcock's *Rope*: cast
//! roles (brandon, phillip, rupert, …) and props appearing over frame
//! ranges. [`rope_store`] builds a deterministic reconstruction whose
//! answer-set sizes are in the same regime as the paper's (6 cast members
//! on screen across the film; ~19 objects in frames 4–47; ~24 in frames
//! 4–127). [`random_store`] generates arbitrary-size workloads for the
//! plan-choice and summarization experiments.

use super::{FrameSpan, VideoContent, VideoDomain};
use hermes_common::Rng64;
use std::collections::BTreeMap;

/// The cast of "The Rope" as `(role, actor)` pairs — also the content of
/// the relational `cast` table the appendix queries join against.
pub const ROPE_CAST: &[(&str, &str)] = &[
    ("brandon", "john dall"),
    ("phillip", "farley granger"),
    ("rupert", "james stewart"),
    ("janet", "joan chandler"),
    ("kenneth", "douglas dick"),
    ("david", "dick hogan"),
    ("mr_kentley", "cedric hardwicke"),
    ("mrs_wilson", "edith evanson"),
    ("mrs_atwater", "constance collier"),
];

/// Builds the "rope" video store used by the Figure 5 / Figure 6
/// experiments and the examples.
///
/// Layout (936 frames ≈ 78 minutes at 12 fps digest rate):
/// * the six principals overlap the opening scene (frames 0–60);
/// * late-arriving cast (kenneth, mr_kentley, mrs_atwater) enter after
///   frame 100;
/// * ~15 props with staggered entry frames fill in the object counts so
///   `frames_to_objects(4, 47)` ≈ 19–20 and `frames_to_objects(4, 127)`
///   ≈ 24 objects.
pub fn rope_store() -> VideoDomain {
    let d = VideoDomain::new("video");
    let mut rope = VideoContent {
        frames: 936,
        frame_bytes: 3_580,
        objects: BTreeMap::new(),
    };
    // Principals present from the opening.
    rope.add_appearance("brandon", FrameSpan::new(0, 930));
    rope.add_appearance("phillip", FrameSpan::new(0, 920));
    rope.add_appearance("david", FrameSpan::new(0, 8)); // murdered in the opening
    rope.add_appearance("mrs_wilson", FrameSpan::new(20, 700));
    rope.add_appearance("janet", FrameSpan::new(30, 800));
    rope.add_appearance("rupert", FrameSpan::new(40, 936 - 1));
    // Late arrivals.
    rope.add_appearance("kenneth", FrameSpan::new(110, 790));
    rope.add_appearance("mr_kentley", FrameSpan::new(120, 760));
    rope.add_appearance("mrs_atwater", FrameSpan::new(125, 750));
    // Props. Entry frames staggered around the two query ranges.
    let props: &[(&str, u32, u32)] = &[
        ("chest", 0, 935),
        ("rope_prop", 0, 14),
        ("candles", 2, 400),
        ("books", 3, 500),
        ("champagne", 5, 300),
        ("glasses", 6, 640),
        ("piano", 8, 935),
        ("metronome", 10, 520),
        ("first_edition", 12, 470),
        ("hat", 15, 46),
        ("canvas", 18, 420),
        ("pistol", 25, 44),
        ("cigarette_case", 30, 610),
        ("dinner_plates", 35, 240),
        ("lamp", 50, 935),
        ("curtains", 60, 935),
        ("painting", 70, 935),
        ("telephone", 105, 880),
    ];
    for (name, first, last) in props {
        rope.add_appearance(*name, FrameSpan::new(*first, *last));
    }
    // rope_prop reappears near the end (pulled from the chest).
    rope.add_appearance("rope_prop", FrameSpan::new(860, 910));
    d.add_video("rope", rope);

    // A second, larger film for multi-video workloads.
    let mut vertigo = VideoContent {
        frames: 1_536,
        frame_bytes: 3_580,
        objects: BTreeMap::new(),
    };
    for (name, first, last) in [
        ("scottie", 0u32, 1_530u32),
        ("madeleine", 120, 900),
        ("judy", 910, 1_520),
        ("midge", 40, 600),
        ("gavin", 60, 300),
        ("bell_tower", 800, 1_530),
        ("bouquet", 150, 860),
        ("necklace", 1_200, 1_500),
    ] {
        vertigo.add_appearance(name, FrameSpan::new(first, last));
    }
    d.add_video("vertigo", vertigo);
    d
}

/// Generates a store of `videos` random videos, each with `objects_per`
/// objects appearing in 1–3 random intervals — the workload generator for
/// the plan-choice and summarization-tradeoff experiments.
pub fn random_store(seed: u64, videos: usize, objects_per: usize, frames: u32) -> VideoDomain {
    let d = VideoDomain::new("video");
    let mut rng = Rng64::new(seed);
    for vi in 0..videos {
        let mut content = VideoContent {
            frames,
            frame_bytes: 2_000 + rng.range_u64(0, 3_000) as u32,
            objects: BTreeMap::new(),
        };
        for oi in 0..objects_per {
            let name = format!("obj_{vi}_{oi}");
            let n_spans = rng.range_usize(1, 4);
            for _ in 0..n_spans {
                let first = rng.range_u64(0, frames.max(2) as u64 - 1) as u32;
                let len = rng.range_u64(1, (frames as u64 / 4).max(2)) as u32;
                let last = (first + len).min(frames - 1);
                content.add_appearance(name.clone(), FrameSpan::new(first, last));
            }
        }
        d.add_video(format!("video_{vi}"), content);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::Domain;
    use hermes_common::Value;

    #[test]
    fn rope_query_cardinalities_match_paper_regime() {
        let d = rope_store();
        let q = |first: i64, last: i64| {
            d.call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(first), Value::Int(last)],
            )
            .unwrap()
            .answers
            .len()
        };
        let narrow = q(4, 47);
        let wide = q(4, 127);
        assert!(
            (17..=22).contains(&narrow),
            "frames 4-47 returned {narrow} objects, expected ~19"
        );
        assert!(
            (22..=27).contains(&wide),
            "frames 4-127 returned {wide} objects, expected ~24"
        );
        assert!(wide > narrow);
    }

    #[test]
    fn rope_cast_present_through_film() {
        let d = rope_store();
        let out = d
            .call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(0), Value::Int(935)],
            )
            .unwrap();
        let names: Vec<&str> = out.answers.iter().map(|v| v.as_str().unwrap()).collect();
        for (role, _) in ROPE_CAST {
            assert!(names.contains(role), "{role} missing from full-range query");
        }
    }

    #[test]
    fn random_store_is_deterministic() {
        let a = random_store(7, 3, 10, 500);
        let b = random_store(7, 3, 10, 500);
        let q = [Value::str("video_1"), Value::Int(10), Value::Int(200)];
        assert_eq!(
            a.call("frames_to_objects", &q).unwrap().answers,
            b.call("frames_to_objects", &q).unwrap().answers
        );
        assert_eq!(a.video_names().len(), 3);
    }

    #[test]
    fn random_store_objects_within_frame_bounds() {
        let d = random_store(3, 1, 20, 100);
        let out = d
            .call(
                "frames_to_objects",
                &[Value::str("video_0"), Value::Int(0), Value::Int(99)],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 20);
    }
}
