//! An AVIS-style content-based video store.
//!
//! AVIS (Advanced Video Information System) is the paper's canonical
//! "unconventional" source: a video-retrieval package whose query costs
//! nobody can model analytically (§1, §6). This module reproduces its
//! function surface and — importantly for the experiments — a *data- and
//! argument-dependent* compute-cost profile that a statistics cache can
//! learn but a closed-form model cannot easily capture.
//!
//! The store maps each video to a set of named *objects* (characters,
//! props), each present during a list of frame intervals. Queries like
//! `frames_to_objects('rope', 4, 47)` return the objects visible in a frame
//! range, exactly the calls in Figure 5 and the appendix queries.

pub mod gen;

use crate::domain::{CallOutcome, ComputeCost, Domain, FunctionSig};
use hermes_common::sync::RwLock;
use hermes_common::{HermesError, Record, Result, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A frame interval, inclusive on both ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameSpan {
    /// First frame of the interval.
    pub first: u32,
    /// Last frame of the interval.
    pub last: u32,
}

impl FrameSpan {
    /// Builds a span; `first` must not exceed `last`.
    pub fn new(first: u32, last: u32) -> Self {
        assert!(first <= last, "inverted frame span {first}..{last}");
        FrameSpan { first, last }
    }

    /// True if the span intersects `[first, last]`.
    pub fn overlaps(&self, first: u32, last: u32) -> bool {
        self.first <= last && first <= self.last
    }
}

/// One video: frame count, per-frame byte size, and its objects.
#[derive(Clone, Debug, Default)]
pub struct VideoContent {
    /// Total number of frames.
    pub frames: u32,
    /// Average encoded bytes per frame.
    pub frame_bytes: u32,
    /// Object name → appearance intervals (sorted, non-overlapping).
    pub objects: BTreeMap<Arc<str>, Vec<FrameSpan>>,
}

impl VideoContent {
    /// Adds an appearance interval for an object.
    pub fn add_appearance(&mut self, object: impl Into<Arc<str>>, span: FrameSpan) {
        self.objects.entry(object.into()).or_default().push(span);
    }
}

/// Cost parameters of the AVIS engine, microseconds.
///
/// The total cost of a range query is
/// `startup + per_frame * range_width + per_hit * hits + analysis`, where
/// `analysis` is a super-linear term in the number of object-intervals the
/// range intersects — modeling AVIS's content-analysis pass, the piece that
/// defeats closed-form cost models.
#[derive(Clone, Copy, Debug)]
pub struct VideoCostParams {
    /// Fixed per-call startup.
    pub startup_us: f64,
    /// Cost per frame in the queried range.
    pub per_frame_us: f64,
    /// Cost per returned object.
    pub per_hit_us: f64,
    /// Scale of the super-linear content-analysis term.
    pub analysis_us: f64,
}

impl Default for VideoCostParams {
    fn default() -> Self {
        VideoCostParams {
            startup_us: 1_500.0,
            per_frame_us: 6.0,
            per_hit_us: 25.0,
            analysis_us: 40.0,
        }
    }
}

/// The AVIS-style domain.
///
/// Exported functions:
///
/// | function | args | answers |
/// |---|---|---|
/// | `videos` | — | names of stored videos |
/// | `video_size` | video | singleton total bytes |
/// | `video_length` | video | singleton frame count |
/// | `objects` | video | all object names |
/// | `frames_to_objects` | video, first, last | objects visible in the range |
/// | `object_to_frames` | video, object | appearance intervals, as `{first, last}` records |
pub struct VideoDomain {
    name: Arc<str>,
    videos: RwLock<BTreeMap<Arc<str>, VideoContent>>,
    params: VideoCostParams,
}

impl VideoDomain {
    /// Creates an empty store.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        VideoDomain {
            name: name.into(),
            videos: RwLock::new(BTreeMap::new()),
            params: VideoCostParams::default(),
        }
    }

    /// Overrides cost parameters.
    pub fn with_params(mut self, params: VideoCostParams) -> Self {
        self.params = params;
        self
    }

    /// Adds (or replaces) a video.
    pub fn add_video(&self, name: impl Into<Arc<str>>, content: VideoContent) {
        self.videos.write().insert(name.into(), content);
    }

    /// Names of stored videos.
    pub fn video_names(&self) -> Vec<Arc<str>> {
        self.videos.read().keys().cloned().collect()
    }

    fn video_arg<'a>(&self, function: &str, args: &'a [Value]) -> Result<&'a str> {
        args[0].as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: first argument must be a video name",
                self.name
            ))
        })
    }

    fn frame_arg(&self, function: &str, v: &Value) -> Result<u32> {
        match v.as_int() {
            Some(i) if i >= 0 => Ok(i as u32),
            _ => Err(HermesError::Type(format!(
                "{}:{function}: frame numbers must be non-negative integers, got `{v}`",
                self.name
            ))),
        }
    }

    /// The range-query cost model (see [`VideoCostParams`]).
    fn range_cost(&self, width: u32, intervals_touched: usize, hits: usize) -> ComputeCost {
        let p = &self.params;
        let analysis = p.analysis_us * (intervals_touched as f64).powf(1.35);
        let t_all_us =
            p.startup_us + p.per_frame_us * width as f64 + p.per_hit_us * hits as f64 + analysis;
        // AVIS streams hits as the sweep reaches them: the first hit costs
        // startup plus a fraction of the frame sweep.
        let t_first_us = p.startup_us
            + p.per_frame_us * (width as f64 / (hits.max(1) as f64 + 1.0))
            + p.per_hit_us;
        ComputeCost::from_millis(t_first_us / 1000.0, t_all_us / 1000.0)
    }

    fn flat_cost(&self, items: usize) -> ComputeCost {
        let p = &self.params;
        let t_all_us = p.startup_us + p.per_hit_us * items as f64;
        ComputeCost::from_millis((p.startup_us + p.per_hit_us) / 1000.0, t_all_us / 1000.0)
    }
}

impl Domain for VideoDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        vec![
            FunctionSig::new("videos", 0, "names of stored videos"),
            FunctionSig::new("video_size", 1, "total encoded bytes of a video"),
            FunctionSig::new("video_length", 1, "frame count of a video"),
            FunctionSig::new("objects", 1, "all objects of a video"),
            FunctionSig::new("frames_to_objects", 3, "objects visible in a frame range"),
            FunctionSig::new("object_to_frames", 2, "appearance intervals of an object"),
        ]
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let arity = match function {
            "videos" => 0,
            "video_size" | "video_length" | "objects" => 1,
            "object_to_frames" => 2,
            "frames_to_objects" => 3,
            other => return Err(self.unknown_function(other)),
        };
        self.check_arity(function, arity, args)?;
        let videos = self.videos.read();

        if function == "videos" {
            let names: Vec<Value> = videos.keys().map(|k| Value::Str(k.clone())).collect();
            let n = names.len();
            return Ok(CallOutcome {
                answers: names,
                compute: self.flat_cost(n),
            });
        }

        let vname = self.video_arg(function, args)?;
        let video = videos
            .get(vname)
            .ok_or_else(|| HermesError::Eval(format!("{}: no video `{vname}`", self.name)))?;

        match function {
            "video_size" => Ok(CallOutcome {
                answers: vec![Value::Int(video.frames as i64 * video.frame_bytes as i64)],
                compute: self.flat_cost(1),
            }),
            "video_length" => Ok(CallOutcome {
                answers: vec![Value::Int(video.frames as i64)],
                compute: self.flat_cost(1),
            }),
            "objects" => {
                let names: Vec<Value> = video
                    .objects
                    .keys()
                    .map(|k| Value::Str(k.clone()))
                    .collect();
                let n = names.len();
                Ok(CallOutcome {
                    answers: names,
                    compute: self.flat_cost(n),
                })
            }
            "frames_to_objects" => {
                let first = self.frame_arg(function, &args[1])?;
                let last = self.frame_arg(function, &args[2])?;
                if first > last {
                    return Ok(CallOutcome {
                        answers: vec![],
                        compute: self.flat_cost(0),
                    });
                }
                let mut hits = Vec::new();
                let mut intervals_touched = 0usize;
                for (obj, spans) in &video.objects {
                    intervals_touched += spans.len();
                    if spans.iter().any(|s| s.overlaps(first, last)) {
                        hits.push(Value::Str(obj.clone()));
                    }
                }
                let width = last.min(video.frames.saturating_sub(1)) - first.min(last) + 1;
                let n = hits.len();
                Ok(CallOutcome {
                    answers: hits,
                    compute: self.range_cost(width, intervals_touched, n),
                })
            }
            "object_to_frames" => {
                let oname = args[1].as_str().ok_or_else(|| {
                    HermesError::Type(format!(
                        "{}:object_to_frames: object must be a string",
                        self.name
                    ))
                })?;
                let spans = video.objects.get(oname).cloned().unwrap_or_default();
                let answers: Vec<Value> = spans
                    .iter()
                    .map(|s| {
                        Value::Record(Record::from_fields([
                            ("first", Value::Int(s.first as i64)),
                            ("last", Value::Int(s.last as i64)),
                        ]))
                    })
                    .collect();
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.flat_cost(n * 3),
                })
            }
            _ => unreachable!("arity table covers functions"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> VideoDomain {
        let d = VideoDomain::new("video");
        let mut rope = VideoContent {
            frames: 300,
            frame_bytes: 1_024,
            objects: BTreeMap::new(),
        };
        rope.add_appearance("brandon", FrameSpan::new(0, 290));
        rope.add_appearance("phillip", FrameSpan::new(0, 280));
        rope.add_appearance("rupert", FrameSpan::new(90, 290));
        rope.add_appearance("chest", FrameSpan::new(0, 299));
        rope.add_appearance("rope_prop", FrameSpan::new(0, 30));
        rope.add_appearance("rope_prop", FrameSpan::new(250, 260));
        d.add_video("rope", rope);
        d
    }

    #[test]
    fn video_size_and_length() {
        let d = store();
        let size = d.call("video_size", &[Value::str("rope")]).unwrap();
        assert_eq!(size.answers, vec![Value::Int(300 * 1024)]);
        let len = d.call("video_length", &[Value::str("rope")]).unwrap();
        assert_eq!(len.answers, vec![Value::Int(300)]);
    }

    #[test]
    fn frames_to_objects_range_semantics() {
        let d = store();
        let out = d
            .call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(0), Value::Int(40)],
            )
            .unwrap();
        // rupert enters at frame 90 and must be absent.
        let names: Vec<&str> = out.answers.iter().map(|v| v.as_str().unwrap()).collect();
        assert!(names.contains(&"brandon"));
        assert!(names.contains(&"rope_prop"));
        assert!(!names.contains(&"rupert"));
    }

    #[test]
    fn frames_to_objects_multi_interval_object() {
        let d = store();
        // rope_prop is gone during [100, 200].
        let out = d
            .call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(100), Value::Int(200)],
            )
            .unwrap();
        let names: Vec<&str> = out.answers.iter().map(|v| v.as_str().unwrap()).collect();
        assert!(!names.contains(&"rope_prop"));
        assert!(names.contains(&"rupert"));
    }

    #[test]
    fn inverted_range_is_empty() {
        let d = store();
        let out = d
            .call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(50), Value::Int(10)],
            )
            .unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn object_to_frames_returns_interval_records() {
        let d = store();
        let out = d
            .call(
                "object_to_frames",
                &[Value::str("rope"), Value::str("rope_prop")],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 2);
        match &out.answers[0] {
            Value::Record(r) => {
                assert_eq!(r.get("first"), Some(&Value::Int(0)));
                assert_eq!(r.get("last"), Some(&Value::Int(30)));
            }
            other => panic!("expected record, got {other}"),
        }
    }

    #[test]
    fn unknown_object_gives_empty_set() {
        let d = store();
        let out = d
            .call(
                "object_to_frames",
                &[Value::str("rope"), Value::str("nobody")],
            )
            .unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn wider_ranges_cost_more() {
        let d = store();
        let narrow = d
            .call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(4), Value::Int(47)],
            )
            .unwrap()
            .compute
            .t_all;
        let wide = d
            .call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(4), Value::Int(280)],
            )
            .unwrap()
            .compute
            .t_all;
        assert!(wide > narrow);
    }

    #[test]
    fn missing_video_and_bad_args() {
        let d = store();
        assert!(matches!(
            d.call("video_size", &[Value::str("vertigo")]),
            Err(HermesError::Eval(_))
        ));
        assert!(matches!(
            d.call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(-1), Value::Int(5)]
            ),
            Err(HermesError::Type(_))
        ));
    }

    #[test]
    fn negative_frame_rejected_even_as_last() {
        let d = store();
        assert!(d
            .call(
                "frames_to_objects",
                &[Value::str("rope"), Value::Int(0), Value::Int(-5)]
            )
            .is_err());
    }

    #[test]
    fn videos_lists_store() {
        let d = store();
        let out = d.call("videos", &[]).unwrap();
        assert_eq!(out.answers, vec![Value::str("rope")]);
    }
}
