//! # hermes-domains
//!
//! The external sources ("domains") the HERMES mediator integrates, built
//! from scratch as in-process substrates (see DESIGN.md §2 for the mapping
//! from the paper's testbed):
//!
//! * [`relational`] — a small relational engine standing in for INGRES /
//!   Paradox / DBase: typed tables, hash and ordered indexes, and the
//!   `select_*` / `all` function surface the paper's rules call.
//! * [`flatfile`] — line/field-oriented flat-file data.
//! * [`objectstore`] — an object-oriented DBMS (the testbed's ObjectStore)
//!   with class extents and reference traversal.
//! * [`video`] — an AVIS-style content-based video store (`video_size`,
//!   `frames_to_objects`, `object_to_frames`, …) with a synthetic "The Rope"
//!   dataset. Its call costs are data-dependent and deliberately hard to
//!   model analytically — the motivating case for DCSM's statistics cache.
//! * [`spatial`] — a point database with grid-indexed `range` queries, the
//!   substrate of the paper's range-shrinking invariant example.
//! * [`terrain`] — a grid-map path planner (`findrte`) standing in for the
//!   US Army path-planning package in the `routetosupplies` example.
//! * [`text`] — a keyword-searchable news-wire corpus (the testbed's
//!   "USA Today" text database) with an inverted index.
//! * [`synthetic`] — a fully parameterizable domain for controlled
//!   optimizer experiments (cardinality and latency profiles per function).
//!
//! Every domain implements the [`Domain`] trait: a set of named functions
//! over ground [`Value`] arguments, returning an answer set plus a simulated
//! *compute cost*. Network costs are layered on top by `hermes-net`.
//!
//! [`Value`]: hermes_common::Value

pub mod domain;
pub mod flatfile;
pub mod objectstore;
pub mod registry;
pub mod relational;
pub mod slow;
pub mod spatial;
pub mod synthetic;
pub mod terrain;
pub mod text;
pub mod video;

pub use domain::{CallOutcome, ComputeCost, CostHint, Domain, FunctionSig, NativeEstimator};
pub use registry::DomainRegistry;
pub use slow::SlowDomain;
