//! The domain registry: name → domain dispatch with validation.

use crate::domain::{CallOutcome, Domain, FunctionSig};
use hermes_common::{GroundCall, HermesError, Result};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A set of registered domains, the mediator's view of the outside world.
#[derive(Clone, Default)]
pub struct DomainRegistry {
    domains: BTreeMap<Arc<str>, Arc<dyn Domain>>,
}

impl DomainRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DomainRegistry::default()
    }

    /// Registers a domain under its own name. Re-registering a name
    /// replaces the previous domain.
    pub fn register(&mut self, domain: Arc<dyn Domain>) {
        self.domains.insert(Arc::from(domain.name()), domain);
    }

    /// Looks up a domain by name.
    pub fn get(&self, name: &str) -> Result<&Arc<dyn Domain>> {
        self.domains
            .get(name)
            .ok_or_else(|| HermesError::UnknownDomain(name.to_string()))
    }

    /// True if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.domains.contains_key(name)
    }

    /// Names of all registered domains, sorted.
    pub fn names(&self) -> Vec<Arc<str>> {
        self.domains.keys().cloned().collect()
    }

    /// The signature of `domain:function`, if both exist.
    pub fn signature(&self, domain: &str, function: &str) -> Result<FunctionSig> {
        let d = self.get(domain)?;
        d.functions()
            .into_iter()
            .find(|f| f.name.as_ref() == function)
            .ok_or_else(|| HermesError::UnknownFunction {
                domain: domain.to_string(),
                function: function.to_string(),
            })
    }

    /// Dispatches a ground call after validating the function and arity.
    pub fn execute(&self, call: &GroundCall) -> Result<CallOutcome> {
        let sig = self.signature(&call.domain, &call.function)?;
        if sig.arity != call.args.len() {
            return Err(HermesError::BadArity {
                domain: call.domain.to_string(),
                function: call.function.to_string(),
                expected: sig.arity,
                got: call.args.len(),
            });
        }
        self.get(&call.domain)?.call(&call.function, &call.args)
    }
}

impl std::fmt::Debug for DomainRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainRegistry")
            .field("domains", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::Value;

    struct Consts;
    impl Domain for Consts {
        fn name(&self) -> &str {
            "consts"
        }
        fn functions(&self) -> Vec<FunctionSig> {
            vec![FunctionSig::new("pi", 0, "3.14...")]
        }
        fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
            match function {
                "pi" => {
                    self.check_arity("pi", 0, args)?;
                    Ok(CallOutcome::free(vec![Value::Float(std::f64::consts::PI)]))
                }
                other => Err(self.unknown_function(other)),
            }
        }
    }

    #[test]
    fn register_and_execute() {
        let mut reg = DomainRegistry::new();
        reg.register(Arc::new(Consts));
        assert!(reg.contains("consts"));
        let out = reg
            .execute(&GroundCall::new("consts", "pi", vec![]))
            .unwrap();
        assert_eq!(out.answers.len(), 1);
    }

    #[test]
    fn unknown_domain_and_function() {
        let mut reg = DomainRegistry::new();
        reg.register(Arc::new(Consts));
        assert!(matches!(
            reg.execute(&GroundCall::new("nope", "pi", vec![])),
            Err(HermesError::UnknownDomain(_))
        ));
        assert!(matches!(
            reg.execute(&GroundCall::new("consts", "tau", vec![])),
            Err(HermesError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn arity_checked_before_dispatch() {
        let mut reg = DomainRegistry::new();
        reg.register(Arc::new(Consts));
        assert!(matches!(
            reg.execute(&GroundCall::new("consts", "pi", vec![Value::Int(1)])),
            Err(HermesError::BadArity { .. })
        ));
    }

    #[test]
    fn names_are_sorted() {
        let mut reg = DomainRegistry::new();
        reg.register(Arc::new(Consts));
        assert_eq!(reg.names(), vec![Arc::<str>::from("consts")]);
    }
}
