//! Flat-file data: delimiter-separated lines with no indexes.
//!
//! Models the paper's "flat file data" source: every operation is a linear
//! scan, so the cost shape is `startup + per_line * n`. Files can be loaded
//! from in-memory text (the default for tests and experiments) or from the
//! filesystem.

use crate::domain::{CallOutcome, ComputeCost, Domain, FunctionSig};
use hermes_common::sync::RwLock;
use hermes_common::{HermesError, Record, Result, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Cost parameters of the flat-file scanner, microseconds.
#[derive(Clone, Copy, Debug)]
pub struct FlatFileCostParams {
    /// Fixed open/seek cost per call.
    pub open_us: f64,
    /// Cost per line scanned.
    pub per_line_us: f64,
}

impl Default for FlatFileCostParams {
    fn default() -> Self {
        FlatFileCostParams {
            open_us: 2_000.0,
            per_line_us: 2.5,
        }
    }
}

/// One loaded flat file: parsed records, one per line.
#[derive(Clone, Debug)]
struct FlatFile {
    records: Vec<Arc<Record>>,
    raw_lines: Vec<Arc<str>>,
}

/// The flat-file domain.
///
/// Exported functions:
///
/// | function | args | answers |
/// |---|---|---|
/// | `scan` | file | every line as a record (`f1`, `f2`, …) |
/// | `match_field` | file, field-index (1-based), value | lines whose field equals the value |
/// | `grep` | file, substring | lines containing the substring, as strings |
/// | `line_count` | file | singleton count |
pub struct FlatFileDomain {
    name: Arc<str>,
    files: RwLock<BTreeMap<Arc<str>, FlatFile>>,
    params: FlatFileCostParams,
    delimiter: char,
}

impl FlatFileDomain {
    /// Creates an empty flat-file domain with `|`-delimited fields.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        FlatFileDomain {
            name: name.into(),
            files: RwLock::new(BTreeMap::new()),
            params: FlatFileCostParams::default(),
            delimiter: '|',
        }
    }

    /// Overrides the field delimiter.
    pub fn with_delimiter(mut self, delimiter: char) -> Self {
        self.delimiter = delimiter;
        self
    }

    /// Overrides cost parameters.
    pub fn with_params(mut self, params: FlatFileCostParams) -> Self {
        self.params = params;
        self
    }

    /// Loads a named file from in-memory text. Blank lines are skipped.
    /// Fields are named `f1`, `f2`, … in each record.
    pub fn load_text(&self, file: impl Into<Arc<str>>, text: &str) -> usize {
        let mut records = Vec::new();
        let mut raw = Vec::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let rec =
                Record::from_fields(line.split(self.delimiter).enumerate().map(|(i, fld)| {
                    (
                        Arc::<str>::from(format!("f{}", i + 1)),
                        Value::parse_scalar(fld),
                    )
                }));
            records.push(Arc::new(rec));
            raw.push(Arc::<str>::from(line));
        }
        let n = records.len();
        self.files.write().insert(
            file.into(),
            FlatFile {
                records,
                raw_lines: raw,
            },
        );
        n
    }

    /// Loads a named file from disk.
    pub fn load_path(&self, file: impl Into<Arc<str>>, path: &std::path::Path) -> Result<usize> {
        let text = std::fs::read_to_string(path)?;
        Ok(self.load_text(file, &text))
    }

    fn cost(&self, lines_scanned: usize) -> ComputeCost {
        let t_all_us = self.params.open_us + self.params.per_line_us * lines_scanned as f64;
        // Pipelined: first answer typically arrives early in the scan.
        let t_first_us = self.params.open_us + self.params.per_line_us * 8.0;
        ComputeCost::from_millis(t_first_us / 1000.0, t_all_us / 1000.0)
    }

    fn file_arg<'a>(&self, function: &str, args: &'a [Value]) -> Result<&'a str> {
        args[0].as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: first argument must be a file name",
                self.name
            ))
        })
    }
}

impl Domain for FlatFileDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        vec![
            FunctionSig::new("scan", 1, "every line as a record"),
            FunctionSig::new("match_field", 3, "lines whose field equals a value"),
            FunctionSig::new("grep", 2, "lines containing a substring"),
            FunctionSig::new("line_count", 1, "number of lines"),
        ]
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let arity = match function {
            "scan" | "line_count" => 1,
            "grep" => 2,
            "match_field" => 3,
            other => return Err(self.unknown_function(other)),
        };
        self.check_arity(function, arity, args)?;
        let files = self.files.read();
        let fname = self.file_arg(function, args)?;
        let file = files
            .get(fname)
            .ok_or_else(|| HermesError::Eval(format!("{}: no file `{fname}`", self.name)))?;
        let n = file.records.len();
        let answers: Vec<Value> = match function {
            "scan" => file
                .records
                .iter()
                .map(|r| Value::Record((**r).clone()))
                .collect(),
            "line_count" => vec![Value::Int(n as i64)],
            "match_field" => {
                let idx = args[1].as_int().ok_or_else(|| {
                    HermesError::Type(format!(
                        "{}:match_field: field index must be an integer",
                        self.name
                    ))
                })?;
                if idx < 1 {
                    return Err(HermesError::Type(format!(
                        "{}:match_field: field index must be >= 1, got {idx}",
                        self.name
                    )));
                }
                file.records
                    .iter()
                    .filter(|r| r.get_pos(idx as usize) == Some(&args[2]))
                    .map(|r| Value::Record((**r).clone()))
                    .collect()
            }
            "grep" => {
                let needle = args[1].as_str().ok_or_else(|| {
                    HermesError::Type(format!("{}:grep: pattern must be a string", self.name))
                })?;
                file.raw_lines
                    .iter()
                    .filter(|l| l.contains(needle))
                    .map(|l| Value::Str(l.clone()))
                    .collect()
            }
            _ => unreachable!("arity table covers functions"),
        };
        Ok(CallOutcome {
            answers,
            compute: self.cost(n),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> FlatFileDomain {
        let d = FlatFileDomain::new("flat");
        d.load_text(
            "supplies",
            "h-22 fuel|pax river|40\nammo|aberdeen|15\nh-22 fuel|aberdeen|3\n",
        );
        d
    }

    #[test]
    fn scan_returns_records_with_positional_fields() {
        let d = domain();
        let out = d.call("scan", &[Value::str("supplies")]).unwrap();
        assert_eq!(out.answers.len(), 3);
        match &out.answers[0] {
            Value::Record(r) => {
                assert_eq!(r.get("f1"), Some(&Value::str("h-22 fuel")));
                assert_eq!(r.get("f3"), Some(&Value::Int(40)));
            }
            other => panic!("expected record, got {other}"),
        }
    }

    #[test]
    fn match_field_filters() {
        let d = domain();
        let out = d
            .call(
                "match_field",
                &[
                    Value::str("supplies"),
                    Value::Int(1),
                    Value::str("h-22 fuel"),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 2);
    }

    #[test]
    fn match_field_rejects_bad_index() {
        let d = domain();
        assert!(d
            .call(
                "match_field",
                &[Value::str("supplies"), Value::Int(0), Value::str("x")],
            )
            .is_err());
        assert!(d
            .call(
                "match_field",
                &[Value::str("supplies"), Value::str("one"), Value::str("x")],
            )
            .is_err());
    }

    #[test]
    fn grep_matches_substrings() {
        let d = domain();
        let out = d
            .call("grep", &[Value::str("supplies"), Value::str("aberdeen")])
            .unwrap();
        assert_eq!(out.answers.len(), 2);
        assert!(matches!(out.answers[0], Value::Str(_)));
    }

    #[test]
    fn line_count() {
        let d = domain();
        let out = d.call("line_count", &[Value::str("supplies")]).unwrap();
        assert_eq!(out.answers, vec![Value::Int(3)]);
    }

    #[test]
    fn cost_scales_with_file_size() {
        let d = FlatFileDomain::new("flat");
        d.load_text("small", "a|1\n");
        let big_text: String = (0..1000).map(|i| format!("row{i}|{i}\n")).collect();
        d.load_text("big", &big_text);
        let small = d
            .call("scan", &[Value::str("small")])
            .unwrap()
            .compute
            .t_all;
        let big = d.call("scan", &[Value::str("big")]).unwrap().compute.t_all;
        assert!(big > small);
    }

    #[test]
    fn missing_file_errors() {
        let d = domain();
        assert!(matches!(
            d.call("scan", &[Value::str("nope")]),
            Err(HermesError::Eval(_))
        ));
    }

    #[test]
    fn custom_delimiter() {
        let d = FlatFileDomain::new("csv").with_delimiter(',');
        d.load_text("t", "a,b\nc,d\n");
        let out = d.call("scan", &[Value::str("t")]).unwrap();
        match &out.answers[1] {
            Value::Record(r) => assert_eq!(r.get("f2"), Some(&Value::str("d"))),
            other => panic!("unexpected {other}"),
        }
    }
}
