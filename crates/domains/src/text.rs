//! A keyword-searchable text database — the paper's "text databases (in
//! particular a USA Today news-wire corpora)" testbed source.
//!
//! Documents live in named corpora with an inverted index over normalized
//! terms. Query cost is driven by posting-list lengths, so common terms
//! cost more than rare ones — learnable by DCSM, opaque to a generic cost
//! model.

use crate::domain::{CallOutcome, ComputeCost, Domain, FunctionSig};
use hermes_common::sync::RwLock;
use hermes_common::{HermesError, Record, Result, Rng64, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// One stored document.
#[derive(Clone, Debug)]
pub struct Doc {
    /// Stable document id within its corpus.
    pub id: u32,
    /// Headline (returned by searches).
    pub headline: Arc<str>,
    /// Body text (indexed, returned by `fetch`).
    pub body: Arc<str>,
}

#[derive(Clone, Debug, Default)]
struct Corpus {
    docs: Vec<Doc>,
    /// term → sorted doc indexes.
    index: BTreeMap<String, Vec<usize>>,
}

impl Corpus {
    fn add(&mut self, headline: &str, body: &str) -> u32 {
        let id = self.docs.len() as u32;
        let doc = Doc {
            id,
            headline: Arc::from(headline),
            body: Arc::from(body),
        };
        for term in tokenize(&format!("{headline} {body}")) {
            let postings = self.index.entry(term).or_default();
            if postings.last() != Some(&self.docs.len()) {
                postings.push(self.docs.len());
            }
        }
        self.docs.push(doc);
        id
    }
}

/// Lowercased alphanumeric terms of length ≥ 2.
fn tokenize(text: &str) -> BTreeSet<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() >= 2)
        .map(|t| t.to_lowercase())
        .collect()
}

/// Cost parameters, microseconds.
#[derive(Clone, Copy, Debug)]
pub struct TextCostParams {
    /// Fixed per-query startup.
    pub startup_us: f64,
    /// Cost per posting examined.
    pub per_posting_us: f64,
    /// Cost per document materialized into an answer.
    pub per_doc_us: f64,
}

impl Default for TextCostParams {
    fn default() -> Self {
        TextCostParams {
            startup_us: 1_200.0,
            per_posting_us: 0.6,
            per_doc_us: 30.0,
        }
    }
}

/// The text-search domain.
///
/// Exported functions:
///
/// | function | args | answers |
/// |---|---|---|
/// | `search` | corpus, term | matching docs as `{id, headline}` records |
/// | `search_and` | corpus, term1, term2 | docs containing both terms |
/// | `fetch` | corpus, doc-id | singleton `{id, headline, body}` |
/// | `doc_count` | corpus | singleton document count |
pub struct TextDomain {
    name: Arc<str>,
    corpora: RwLock<BTreeMap<Arc<str>, Corpus>>,
    params: TextCostParams,
}

impl TextDomain {
    /// Creates an empty text store.
    pub fn new(name: impl Into<Arc<str>>) -> Self {
        TextDomain {
            name: name.into(),
            corpora: RwLock::new(BTreeMap::new()),
            params: TextCostParams::default(),
        }
    }

    /// Adds a document to a corpus (created on first use); returns its id.
    pub fn add_document(&self, corpus: impl Into<Arc<str>>, headline: &str, body: &str) -> u32 {
        self.corpora
            .write()
            .entry(corpus.into())
            .or_default()
            .add(headline, body)
    }

    fn cost(&self, postings: usize, docs: usize) -> ComputeCost {
        let p = &self.params;
        let t_all_us =
            p.startup_us + p.per_posting_us * postings as f64 + p.per_doc_us * docs as f64;
        let t_first_us = p.startup_us + p.per_posting_us * (postings as f64).sqrt() + p.per_doc_us;
        ComputeCost::from_millis(t_first_us / 1000.0, t_all_us / 1000.0)
    }

    fn doc_record(doc: &Doc, with_body: bool) -> Value {
        let mut rec = Record::new();
        rec.push("id", Value::Int(doc.id as i64));
        rec.push("headline", Value::Str(doc.headline.clone()));
        if with_body {
            rec.push("body", Value::Str(doc.body.clone()));
        }
        Value::Record(rec)
    }
}

impl Domain for TextDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        vec![
            FunctionSig::new("search", 2, "docs containing a term"),
            FunctionSig::new("search_and", 3, "docs containing both terms"),
            FunctionSig::new("fetch", 2, "one document with body"),
            FunctionSig::new("doc_count", 1, "corpus size"),
        ]
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let arity = match function {
            "doc_count" => 1,
            "search" | "fetch" => 2,
            "search_and" => 3,
            other => return Err(self.unknown_function(other)),
        };
        self.check_arity(function, arity, args)?;
        let corpora = self.corpora.read();
        let cname = args[0].as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: first argument must be a corpus name",
                self.name
            ))
        })?;
        let corpus = corpora
            .get(cname)
            .ok_or_else(|| HermesError::Eval(format!("{}: no corpus `{cname}`", self.name)))?;
        let term_arg = |i: usize| -> Result<String> {
            args[i].as_str().map(|s| s.to_lowercase()).ok_or_else(|| {
                HermesError::Type(format!(
                    "{}:{function}: search terms must be strings",
                    self.name
                ))
            })
        };
        match function {
            "doc_count" => Ok(CallOutcome {
                answers: vec![Value::Int(corpus.docs.len() as i64)],
                compute: self.cost(0, 1),
            }),
            "search" => {
                let term = term_arg(1)?;
                let postings = corpus.index.get(&term).cloned().unwrap_or_default();
                let answers: Vec<Value> = postings
                    .iter()
                    .map(|&i| Self::doc_record(&corpus.docs[i], false))
                    .collect();
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(postings.len(), n),
                })
            }
            "search_and" => {
                let t1 = term_arg(1)?;
                let t2 = term_arg(2)?;
                let empty = Vec::new();
                let p1 = corpus.index.get(&t1).unwrap_or(&empty);
                let p2 = corpus.index.get(&t2).unwrap_or(&empty);
                // Sorted-list intersection.
                let mut answers = Vec::new();
                let (mut i, mut j) = (0usize, 0usize);
                while i < p1.len() && j < p2.len() {
                    match p1[i].cmp(&p2[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            answers.push(Self::doc_record(&corpus.docs[p1[i]], false));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(p1.len() + p2.len(), n),
                })
            }
            "fetch" => {
                let id = args[1].as_int().ok_or_else(|| {
                    HermesError::Type(format!(
                        "{}:fetch: document id must be an integer",
                        self.name
                    ))
                })?;
                let answers: Vec<Value> = corpus
                    .docs
                    .get(id.max(0) as usize)
                    .filter(|d| d.id as i64 == id)
                    .map(|d| Self::doc_record(d, true))
                    .into_iter()
                    .collect();
                let n = answers.len();
                Ok(CallOutcome {
                    answers,
                    compute: self.cost(1, n),
                })
            }
            _ => unreachable!("arity table covers functions"),
        }
    }
}

/// Generates a synthetic news-wire corpus: `n` articles built from a topic
/// vocabulary with Zipf-popular terms (common words appear in many
/// documents, rare ones in few — realistic posting-list skew).
pub fn newswire(seed: u64, domain_name: &str, corpus: &str, n: usize) -> TextDomain {
    const TOPICS: &[&str] = &[
        "election",
        "budget",
        "senate",
        "pentagon",
        "bosnia",
        "trade",
        "internet",
        "baseball",
        "hurricane",
        "medicare",
        "nasa",
        "olympics",
        "whitewater",
        "stocks",
        "crime",
        "unabomber",
        "education",
        "taxes",
    ];
    const VERBS: &[&str] = &[
        "debates",
        "approves",
        "rejects",
        "investigates",
        "announces",
        "delays",
        "expands",
    ];
    let d = TextDomain::new(domain_name);
    let mut rng = Rng64::new(seed);
    let sampler = hermes_common::rng::ZipfSampler::new(TOPICS.len(), 1.1);
    for i in 0..n {
        let t1 = TOPICS[sampler.sample(&mut rng)];
        let t2 = TOPICS[sampler.sample(&mut rng)];
        let verb = VERBS[rng.range_usize(0, VERBS.len())];
        let headline = format!("congress {verb} {t1} measure");
        let body = format!(
            "article {i}: the {t1} story developed today alongside {t2}; \
             officials said the {t1} plan {verb} further review"
        );
        d.add_document(corpus, &headline, &body);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> TextDomain {
        let d = TextDomain::new("text");
        d.add_document(
            "usatoday",
            "Senate debates budget",
            "The budget measure stalled.",
        );
        d.add_document(
            "usatoday",
            "Orioles win again",
            "Baseball fans cheered in Baltimore.",
        );
        d.add_document(
            "usatoday",
            "Budget deal near",
            "Senate leaders and the baseball strike.",
        );
        d
    }

    #[test]
    fn search_finds_terms_case_insensitively() {
        let d = store();
        let out = d
            .call("search", &[Value::str("usatoday"), Value::str("Budget")])
            .unwrap();
        assert_eq!(out.answers.len(), 2);
        match &out.answers[0] {
            Value::Record(r) => {
                assert_eq!(r.get("id"), Some(&Value::Int(0)));
                assert!(r.get("headline").is_some());
                assert!(r.get("body").is_none());
            }
            other => panic!("expected record, got {other}"),
        }
    }

    #[test]
    fn search_and_intersects() {
        let d = store();
        let out = d
            .call(
                "search_and",
                &[
                    Value::str("usatoday"),
                    Value::str("senate"),
                    Value::str("baseball"),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 1);
        match &out.answers[0] {
            Value::Record(r) => assert_eq!(r.get("id"), Some(&Value::Int(2))),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn unknown_term_is_empty_not_error() {
        let d = store();
        let out = d
            .call("search", &[Value::str("usatoday"), Value::str("zebra")])
            .unwrap();
        assert!(out.answers.is_empty());
    }

    #[test]
    fn fetch_returns_body_and_misses_cleanly() {
        let d = store();
        let hit = d
            .call("fetch", &[Value::str("usatoday"), Value::Int(1)])
            .unwrap();
        assert_eq!(hit.answers.len(), 1);
        match &hit.answers[0] {
            Value::Record(r) => assert!(r
                .get("body")
                .and_then(Value::as_str)
                .unwrap()
                .contains("Baltimore")),
            other => panic!("unexpected {other}"),
        }
        let miss = d
            .call("fetch", &[Value::str("usatoday"), Value::Int(99)])
            .unwrap();
        assert!(miss.answers.is_empty());
        let neg = d
            .call("fetch", &[Value::str("usatoday"), Value::Int(-1)])
            .unwrap();
        assert!(neg.answers.is_empty());
    }

    #[test]
    fn doc_count_and_missing_corpus() {
        let d = store();
        assert_eq!(
            d.call("doc_count", &[Value::str("usatoday")])
                .unwrap()
                .answers,
            vec![Value::Int(3)]
        );
        assert!(d.call("doc_count", &[Value::str("nope")]).is_err());
    }

    #[test]
    fn common_terms_cost_more_than_rare_ones() {
        let d = newswire(3, "text", "usatoday", 2_000);
        // "congress" appears in every headline; a rare topic in few.
        let common = d
            .call("search", &[Value::str("usatoday"), Value::str("congress")])
            .unwrap();
        let rare = d
            .call("search", &[Value::str("usatoday"), Value::str("unabomber")])
            .unwrap();
        assert!(common.answers.len() > rare.answers.len());
        assert!(common.compute.t_all > rare.compute.t_all);
    }

    #[test]
    fn newswire_is_deterministic_and_skewed() {
        let a = newswire(9, "text", "c", 500);
        let b = newswire(9, "text", "c", 500);
        let q = [Value::str("c"), Value::str("election")];
        assert_eq!(
            a.call("search", &q).unwrap().answers.len(),
            b.call("search", &q).unwrap().answers.len()
        );
        // Zipf: the most popular topic dominates the least popular.
        let hot = a.call("search", &q).unwrap().answers.len();
        let cold = a
            .call("search", &[Value::str("c"), Value::str("taxes")])
            .unwrap()
            .answers
            .len();
        assert!(hot > cold);
    }

    #[test]
    fn type_errors_reported() {
        let d = store();
        assert!(d.call("search", &[Value::Int(1), Value::str("x")]).is_err());
        assert!(d
            .call("search", &[Value::str("usatoday"), Value::Int(7)])
            .is_err());
        assert!(d
            .call("fetch", &[Value::str("usatoday"), Value::str("one")])
            .is_err());
    }
}
