//! The [`Domain`] abstraction: what the mediator knows about a source.
//!
//! Per §2 and §6 of the paper, the mediator knows only (a) the set of
//! functions a domain exports, (b) their arities, and (c) how to invoke
//! them on ground arguments. It does *not* know the source's internals or
//! cost behaviour — unless the source volunteers a native cost estimator
//! ([`Domain::native_estimator`]), in which case DCSM defers to it (§6,
//! "DCSM is built as an extensible module").

use hermes_common::{CallPattern, HermesError, Result, SimDuration, Value};
use std::fmt;
use std::sync::Arc;

/// Signature of one function exported by a domain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FunctionSig {
    /// Function name, e.g. `frames_to_objects`.
    pub name: Arc<str>,
    /// Exact number of (always-ground) arguments.
    pub arity: usize,
    /// One-line description, surfaced by tooling.
    pub doc: &'static str,
}

impl FunctionSig {
    /// Builds a signature.
    pub fn new(name: impl Into<Arc<str>>, arity: usize, doc: &'static str) -> Self {
        FunctionSig {
            name: name.into(),
            arity,
            doc,
        }
    }
}

impl fmt::Display for FunctionSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// Simulated *compute* cost of a call, excluding network effects.
///
/// `t_first` is the simulated time until the source can emit its first
/// answer; `t_all` until the full answer set is produced. The network layer
/// adds connection and transfer time on top.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComputeCost {
    /// Time to first answer.
    pub t_first: SimDuration,
    /// Time to the complete answer set.
    pub t_all: SimDuration,
}

impl ComputeCost {
    /// Zero cost.
    pub const ZERO: ComputeCost = ComputeCost {
        t_first: SimDuration::ZERO,
        t_all: SimDuration::ZERO,
    };

    /// Cost with both components given in fractional milliseconds.
    pub fn from_millis(t_first: f64, t_all: f64) -> Self {
        ComputeCost {
            t_first: SimDuration::from_millis_f64(t_first),
            t_all: SimDuration::from_millis_f64(t_first.max(t_all)),
        }
    }
}

/// The result of executing a domain call: the answer set plus the simulated
/// compute cost the source spent producing it.
#[derive(Clone, Debug, PartialEq)]
pub struct CallOutcome {
    /// The answers, in source order. An elementary result is a singleton.
    pub answers: Vec<Value>,
    /// Simulated compute cost.
    pub compute: ComputeCost,
}

impl CallOutcome {
    /// An outcome with zero compute cost (used by tests and trivial calls).
    pub fn free(answers: Vec<Value>) -> Self {
        CallOutcome {
            answers,
            compute: ComputeCost::ZERO,
        }
    }

    /// Total wire size of the answers.
    pub fn answer_bytes(&self) -> usize {
        self.answers.iter().map(Value::size_bytes).sum()
    }
}

/// A (possibly partial) cost prediction from a source's own cost model.
///
/// All fields are optional: §6 notes an external estimator "does not
/// provide some of the parameters" and DCSM fills in the gaps from its
/// statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostHint {
    /// Predicted time to first answer, milliseconds.
    pub t_first_ms: Option<f64>,
    /// Predicted time to all answers, milliseconds.
    pub t_all_ms: Option<f64>,
    /// Predicted answer-set cardinality.
    pub cardinality: Option<f64>,
}

/// A cost model volunteered by the source itself (e.g. a relational engine
/// that knows its table statistics). Estimates are *compute-only*; network
/// effects are layered on by the caller.
pub trait NativeEstimator: Send + Sync {
    /// Estimates the cost of a call pattern; `None` if the pattern is
    /// outside the model.
    fn estimate(&self, pattern: &CallPattern) -> Option<CostHint>;
}

/// An external source integrated by the mediator.
pub trait Domain: Send + Sync {
    /// The domain's name as used in rules (`video`, `ingres`, …).
    fn name(&self) -> &str;

    /// The functions this domain exports.
    fn functions(&self) -> Vec<FunctionSig>;

    /// Executes `function` on ground `args`.
    ///
    /// Implementations may assume the registry has already validated the
    /// function name and arity, but must still fail cleanly on unknown
    /// functions (defense in depth).
    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome>;

    /// The source's own cost model, if it has one (§6 extensibility).
    fn native_estimator(&self) -> Option<&dyn NativeEstimator> {
        None
    }

    /// Helper: the error for an unknown function.
    fn unknown_function(&self, function: &str) -> HermesError {
        HermesError::UnknownFunction {
            domain: self.name().to_string(),
            function: function.to_string(),
        }
    }

    /// Helper: validates arity for a call.
    fn check_arity(&self, function: &str, expected: usize, args: &[Value]) -> Result<()> {
        if args.len() == expected {
            Ok(())
        } else {
            Err(HermesError::BadArity {
                domain: self.name().to_string(),
                function: function.to_string(),
                expected,
                got: args.len(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl Domain for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn functions(&self) -> Vec<FunctionSig> {
            vec![FunctionSig::new("id", 1, "returns its argument")]
        }
        fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
            match function {
                "id" => {
                    self.check_arity("id", 1, args)?;
                    Ok(CallOutcome::free(vec![args[0].clone()]))
                }
                other => Err(self.unknown_function(other)),
            }
        }
    }

    #[test]
    fn echo_round_trip() {
        let d = Echo;
        let out = d.call("id", &[Value::Int(7)]).unwrap();
        assert_eq!(out.answers, vec![Value::Int(7)]);
        assert_eq!(out.compute, ComputeCost::ZERO);
    }

    #[test]
    fn arity_and_function_errors() {
        let d = Echo;
        assert!(matches!(
            d.call("id", &[]),
            Err(HermesError::BadArity { .. })
        ));
        assert!(matches!(
            d.call("nope", &[]),
            Err(HermesError::UnknownFunction { .. })
        ));
    }

    #[test]
    fn compute_cost_clamps_t_all() {
        let c = ComputeCost::from_millis(10.0, 5.0);
        assert_eq!(c.t_all, c.t_first); // t_all can never precede t_first
        let c2 = ComputeCost::from_millis(1.0, 5.0);
        assert!(c2.t_all > c2.t_first);
    }

    #[test]
    fn answer_bytes_sums_sizes() {
        let o = CallOutcome::free(vec![Value::Int(1), Value::str("ab")]);
        assert_eq!(o.answer_bytes(), 8 + 3);
    }

    #[test]
    fn signature_display() {
        assert_eq!(FunctionSig::new("f", 2, "").to_string(), "f/2");
    }
}
