//! Typed tables with hash and ordered indexes.

use hermes_common::{HermesError, Record, Result, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Column value type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integers.
    Int,
    /// 64-bit floats (integers are accepted and widen).
    Float,
    /// Strings.
    Str,
    /// Booleans.
    Bool,
    /// Any value type (no checking).
    Any,
}

impl ColumnType {
    /// True if `v` is acceptable for this column.
    pub fn admits(self, v: &Value) -> bool {
        match self {
            ColumnType::Int => matches!(v, Value::Int(_)),
            ColumnType::Float => v.is_number(),
            ColumnType::Str => matches!(v, Value::Str(_)),
            ColumnType::Bool => matches!(v, Value::Bool(_)),
            ColumnType::Any => true,
        }
    }
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: Arc<str>,
    /// Column type.
    pub ctype: ColumnType,
}

impl Column {
    /// Builds a column.
    pub fn new(name: impl Into<Arc<str>>, ctype: ColumnType) -> Self {
        Column {
            name: name.into(),
            ctype,
        }
    }
}

/// An ordered list of columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema; column names must be unique.
    pub fn new(columns: Vec<Column>) -> Result<Self> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|d| d.name == c.name) {
                return Err(HermesError::Type(format!("duplicate column `{}`", c.name)));
            }
        }
        Ok(Schema { columns })
    }

    /// Convenience: all-`Any` schema from names.
    pub fn untyped(names: &[&str]) -> Self {
        Schema {
            columns: names
                .iter()
                .map(|n| Column::new(*n, ColumnType::Any))
                .collect(),
        }
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Position of a column by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.as_ref() == name)
    }
}

/// A heap of rows plus per-column indexes.
///
/// Rows are stored as [`Record`]s sharing the schema's column names, so a
/// row flows through the mediator as a complex value whose attributes rule
/// conditions can select (`Tuple.loc`).
#[derive(Clone, Debug)]
pub struct Table {
    name: Arc<str>,
    schema: Schema,
    rows: Vec<Arc<Record>>,
    /// Hash indexes: column position → value → row ids.
    hash_indexes: HashMap<usize, HashMap<Value, Vec<usize>>>,
    /// Ordered indexes: column position → value → row ids.
    ordered_indexes: HashMap<usize, BTreeMap<Value, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<Arc<str>>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
            hash_indexes: HashMap::new(),
            ordered_indexes: HashMap::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row given values in schema order. Type-checks each value.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.schema.width() {
            return Err(HermesError::Type(format!(
                "table `{}` has {} columns, row has {}",
                self.name,
                self.schema.width(),
                values.len()
            )));
        }
        for (c, v) in self.schema.columns().iter().zip(&values) {
            if !c.ctype.admits(v) {
                return Err(HermesError::Type(format!(
                    "column `{}` of `{}` rejects value `{v}`",
                    c.name, self.name
                )));
            }
        }
        let row_id = self.rows.len();
        let rec = Record::from_fields(
            self.schema
                .columns()
                .iter()
                .zip(values.iter())
                .map(|(c, v)| (c.name.clone(), v.clone())),
        );
        // Maintain existing indexes.
        for (pos, idx) in self.hash_indexes.iter_mut() {
            idx.entry(values[*pos].clone()).or_default().push(row_id);
        }
        for (pos, idx) in self.ordered_indexes.iter_mut() {
            idx.entry(values[*pos].clone()).or_default().push(row_id);
        }
        self.rows.push(Arc::new(rec));
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_all<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> Result<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Builds a hash index on `column`. Idempotent.
    pub fn create_hash_index(&mut self, column: &str) -> Result<()> {
        let pos = self.position(column)?;
        if self.hash_indexes.contains_key(&pos) {
            return Ok(());
        }
        let mut idx: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            let v = row.get_pos(pos + 1).expect("row matches schema").clone();
            idx.entry(v).or_default().push(i);
        }
        self.hash_indexes.insert(pos, idx);
        Ok(())
    }

    /// Builds an ordered (range) index on `column`. Idempotent.
    pub fn create_ordered_index(&mut self, column: &str) -> Result<()> {
        let pos = self.position(column)?;
        if self.ordered_indexes.contains_key(&pos) {
            return Ok(());
        }
        let mut idx: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
        for (i, row) in self.rows.iter().enumerate() {
            let v = row.get_pos(pos + 1).expect("row matches schema").clone();
            idx.entry(v).or_default().push(i);
        }
        self.ordered_indexes.insert(pos, idx);
        Ok(())
    }

    /// True if `column` has a hash index.
    pub fn has_hash_index(&self, column: &str) -> bool {
        self.schema
            .position(column)
            .is_some_and(|p| self.hash_indexes.contains_key(&p))
    }

    /// True if `column` has an ordered index.
    pub fn has_ordered_index(&self, column: &str) -> bool {
        self.schema
            .position(column)
            .is_some_and(|p| self.ordered_indexes.contains_key(&p))
    }

    fn position(&self, column: &str) -> Result<usize> {
        self.schema.position(column).ok_or_else(|| {
            HermesError::Type(format!("table `{}` has no column `{column}`", self.name))
        })
    }

    /// All rows in storage order.
    pub fn scan(&self) -> impl Iterator<Item = &Arc<Record>> {
        self.rows.iter()
    }

    /// Rows whose `column` equals `value`, plus the number of rows the
    /// lookup *touched* (for the cost model): index probes touch only the
    /// matches; scans touch every row.
    pub fn select_eq(&self, column: &str, value: &Value) -> Result<(Vec<Arc<Record>>, usize)> {
        let pos = self.position(column)?;
        if let Some(idx) = self.hash_indexes.get(&pos) {
            let rows: Vec<_> = idx
                .get(value)
                .map(|ids| ids.iter().map(|i| self.rows[*i].clone()).collect())
                .unwrap_or_default();
            let touched = rows.len();
            return Ok((rows, touched));
        }
        if let Some(idx) = self.ordered_indexes.get(&pos) {
            let rows: Vec<_> = idx
                .get(value)
                .map(|ids| ids.iter().map(|i| self.rows[*i].clone()).collect())
                .unwrap_or_default();
            let touched = rows.len();
            return Ok((rows, touched));
        }
        let rows: Vec<_> = self
            .rows
            .iter()
            .filter(|r| r.get_pos(pos + 1) == Some(value))
            .cloned()
            .collect();
        Ok((rows, self.rows.len()))
    }

    /// Rows with `lo <= column <= hi` (either bound optional), plus rows
    /// touched. Uses the ordered index when available.
    pub fn select_range(
        &self,
        column: &str,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Result<(Vec<Arc<Record>>, usize)> {
        let pos = self.position(column)?;
        let in_range = |v: &Value| lo.is_none_or(|l| v >= l) && hi.is_none_or(|h| v <= h);
        if let Some(idx) = self.ordered_indexes.get(&pos) {
            use std::ops::Bound;
            let lower = lo.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
            let upper = hi.map_or(Bound::Unbounded, |v| Bound::Included(v.clone()));
            // An inverted range (lo > hi) would panic in BTreeMap::range.
            if let (Some(l), Some(h)) = (lo, hi) {
                if l > h {
                    return Ok((Vec::new(), 0));
                }
            }
            let mut rows = Vec::new();
            for (_, ids) in idx.range((lower, upper)) {
                rows.extend(ids.iter().map(|i| self.rows[*i].clone()));
            }
            let touched = rows.len();
            return Ok((rows, touched));
        }
        let rows: Vec<_> = self
            .rows
            .iter()
            .filter(|r| r.get_pos(pos + 1).is_some_and(in_range))
            .cloned()
            .collect();
        Ok((rows, self.rows.len()))
    }

    /// Distinct values of `column`, in first-occurrence order, plus rows
    /// touched (always a full scan).
    pub fn project_distinct(&self, column: &str) -> Result<(Vec<Value>, usize)> {
        let pos = self.position(column)?;
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for r in &self.rows {
            let v = r.get_pos(pos + 1).expect("row matches schema");
            if seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        Ok((out, self.rows.len()))
    }

    /// Number of distinct values in `column` (exact; used by the native
    /// cost estimator).
    pub fn distinct_count(&self, column: &str) -> Result<usize> {
        Ok(self.project_distinct(column)?.0.len())
    }

    /// Loads rows from delimiter-separated text, one row per line, values
    /// parsed with [`Value::parse_scalar`]. Blank lines are skipped.
    pub fn load_csv(&mut self, text: &str, delimiter: char) -> Result<usize> {
        let mut n = 0;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let values: Vec<Value> = line.split(delimiter).map(Value::parse_scalar).collect();
            self.insert(values)?;
            n += 1;
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cast_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("name", ColumnType::Str),
            Column::new("role", ColumnType::Str),
        ])
        .unwrap();
        let mut t = Table::new("cast", schema);
        t.insert_all([
            vec![Value::str("james stewart"), Value::str("rupert")],
            vec![Value::str("john dall"), Value::str("brandon")],
            vec![Value::str("farley granger"), Value::str("phillip")],
            vec![Value::str("joan chandler"), Value::str("janet")],
        ])
        .unwrap();
        t
    }

    #[test]
    fn insert_and_scan() {
        let t = cast_table();
        assert_eq!(t.len(), 4);
        let first = t.scan().next().unwrap();
        assert_eq!(first.get("role"), Some(&Value::str("rupert")));
    }

    #[test]
    fn schema_rejects_duplicates_and_bad_types() {
        assert!(Schema::new(vec![
            Column::new("a", ColumnType::Int),
            Column::new("a", ColumnType::Int),
        ])
        .is_err());
        let mut t = Table::new(
            "t",
            Schema::new(vec![Column::new("n", ColumnType::Int)]).unwrap(),
        );
        assert!(t.insert(vec![Value::str("x")]).is_err());
        assert!(t.insert(vec![Value::Int(1), Value::Int(2)]).is_err());
        assert!(t.insert(vec![Value::Int(1)]).is_ok());
    }

    #[test]
    fn float_column_admits_ints() {
        let mut t = Table::new(
            "t",
            Schema::new(vec![Column::new("x", ColumnType::Float)]).unwrap(),
        );
        assert!(t.insert(vec![Value::Int(1)]).is_ok());
        assert!(t.insert(vec![Value::Float(1.5)]).is_ok());
    }

    #[test]
    fn select_eq_scan_vs_index_touch_counts() {
        let mut t = cast_table();
        let (rows, touched) = t.select_eq("role", &Value::str("brandon")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(touched, 4); // full scan
        t.create_hash_index("role").unwrap();
        let (rows, touched) = t.select_eq("role", &Value::str("brandon")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(touched, 1); // index probe
    }

    #[test]
    fn index_maintained_on_insert() {
        let mut t = cast_table();
        t.create_hash_index("role").unwrap();
        t.insert(vec![Value::str("dick hogan"), Value::str("david")])
            .unwrap();
        let (rows, _) = t.select_eq("role", &Value::str("david")).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn select_eq_missing_value_is_empty() {
        let t = cast_table();
        let (rows, _) = t.select_eq("role", &Value::str("nobody")).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn select_range_with_and_without_index() {
        let mut t = Table::new(
            "nums",
            Schema::new(vec![Column::new("x", ColumnType::Int)]).unwrap(),
        );
        t.insert_all((0..10).map(|i| vec![Value::Int(i)])).unwrap();
        let (rows, touched) = t
            .select_range("x", Some(&Value::Int(3)), Some(&Value::Int(6)))
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(touched, 10);
        t.create_ordered_index("x").unwrap();
        let (rows, touched) = t
            .select_range("x", Some(&Value::Int(3)), Some(&Value::Int(6)))
            .unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(touched, 4);
        // open-ended
        let (rows, _) = t.select_range("x", Some(&Value::Int(8)), None).unwrap();
        assert_eq!(rows.len(), 2);
        // inverted range is empty, not a panic
        let (rows, _) = t
            .select_range("x", Some(&Value::Int(6)), Some(&Value::Int(3)))
            .unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn project_distinct_preserves_order() {
        let mut t = Table::new("t", Schema::untyped(&["a"]));
        t.insert_all([
            vec![Value::str("x")],
            vec![Value::str("y")],
            vec![Value::str("x")],
        ])
        .unwrap();
        let (vals, touched) = t.project_distinct("a").unwrap();
        assert_eq!(vals, vec![Value::str("x"), Value::str("y")]);
        assert_eq!(touched, 3);
        assert_eq!(t.distinct_count("a").unwrap(), 2);
    }

    #[test]
    fn unknown_column_errors() {
        let t = cast_table();
        assert!(t.select_eq("nope", &Value::Int(1)).is_err());
        assert!(t.select_range("nope", None, None).is_err());
        assert!(t.project_distinct("nope").is_err());
    }

    #[test]
    fn load_csv_parses_scalars() {
        let mut t = Table::new("t", Schema::untyped(&["name", "qty"]));
        let n = t.load_csv("fuel,10\n\nammo,25\n", ',').unwrap();
        assert_eq!(n, 2);
        assert_eq!(t.len(), 2);
        let (rows, _) = t.select_eq("qty", &Value::Int(25)).unwrap();
        assert_eq!(rows[0].get("name"), Some(&Value::str("ammo")));
    }
}
