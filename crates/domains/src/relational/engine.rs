//! The relational domain: function surface, cost model, native estimator.

use crate::domain::{CallOutcome, ComputeCost, CostHint, Domain, FunctionSig, NativeEstimator};
use crate::relational::table::Table;
use hermes_common::sync::RwLock;
use hermes_common::{CallPattern, HermesError, PatArg, Result, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Tunable compute-cost parameters of the engine, in microseconds.
///
/// The defaults model a mid-1990s relational server: ~1µs per row scanned,
/// ~4µs per produced tuple (formatting/copy), 800µs of per-query startup
/// (parse + plan + process dispatch).
#[derive(Clone, Copy, Debug)]
pub struct RelationalCostParams {
    /// Fixed per-call startup, µs.
    pub startup_us: f64,
    /// Cost per row touched by a scan or index probe, µs.
    pub per_row_us: f64,
    /// Cost per result tuple produced, µs.
    pub per_result_us: f64,
}

impl Default for RelationalCostParams {
    fn default() -> Self {
        RelationalCostParams {
            startup_us: 800.0,
            per_row_us: 1.0,
            per_result_us: 4.0,
        }
    }
}

/// The relational engine exposed as a mediator domain.
///
/// Exported functions (all arguments ground, per §3):
///
/// | function | args | answers |
/// |---|---|---|
/// | `all` | table | every row, as records |
/// | `count` | table | singleton row count |
/// | `select_eq` | table, column, value | rows with `column = value` |
/// | `select_lt` / `select_le` / `select_gt` / `select_ge` | table, column, value | rows satisfying the comparison |
/// | `select_range` | table, column, lo, hi | rows with `lo <= column <= hi` |
/// | `project` | table, column | distinct column values |
/// | `agg` | table, column, op | singleton aggregate; op ∈ `sum`, `min`, `max`, `avg`, `count_distinct` |
pub struct RelationalDomain {
    name: Arc<str>,
    tables: RwLock<BTreeMap<Arc<str>, Table>>,
    params: RelationalCostParams,
    estimator: RelationalEstimator,
}

impl RelationalDomain {
    /// Creates an engine with default cost parameters.
    pub fn new(name: impl Into<Arc<str>>) -> Arc<Self> {
        Self::with_params(name, RelationalCostParams::default())
    }

    /// Creates an engine with explicit cost parameters.
    pub fn with_params(name: impl Into<Arc<str>>, params: RelationalCostParams) -> Arc<Self> {
        Arc::new_cyclic(|weak| RelationalDomain {
            name: name.into(),
            tables: RwLock::new(BTreeMap::new()),
            params,
            estimator: RelationalEstimator {
                domain: weak.clone(),
            },
        })
    }

    /// Adds (or replaces) a table.
    pub fn add_table(&self, table: Table) {
        self.tables.write().insert(Arc::from(table.name()), table);
    }

    /// Runs `f` over a table, if present.
    pub fn with_table<R>(&self, name: &str, f: impl FnOnce(&Table) -> R) -> Option<R> {
        self.tables.read().get(name).map(f)
    }

    /// Mutates a table in place (e.g. to add an index after load).
    pub fn with_table_mut<R>(&self, name: &str, f: impl FnOnce(&mut Table) -> R) -> Option<R> {
        self.tables.write().get_mut(name).map(f)
    }

    /// Table names, sorted.
    pub fn table_names(&self) -> Vec<Arc<str>> {
        self.tables.read().keys().cloned().collect()
    }

    fn table_arg<'a>(&self, function: &str, args: &'a [Value]) -> Result<&'a str> {
        args[0].as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: first argument must be a table name",
                self.name
            ))
        })
    }

    fn column_arg<'a>(&self, function: &str, args: &'a [Value]) -> Result<&'a str> {
        args[1].as_str().ok_or_else(|| {
            HermesError::Type(format!(
                "{}:{function}: second argument must be a column name",
                self.name
            ))
        })
    }

    /// Converts rows-touched / results-produced counts into a compute cost.
    fn cost(&self, touched: usize, produced: usize) -> ComputeCost {
        let p = &self.params;
        let t_all_us =
            p.startup_us + p.per_row_us * touched as f64 + p.per_result_us * produced as f64;
        // First answer: startup plus a proportional share of the touch work
        // (pipelined scan finds the first match early, on average).
        let share = if produced > 0 {
            (touched as f64 / produced as f64).min(touched as f64)
        } else {
            touched as f64
        };
        let t_first_us = p.startup_us + p.per_row_us * share + p.per_result_us;
        ComputeCost::from_millis(t_first_us / 1000.0, t_all_us / 1000.0)
    }

    fn run(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let tables = self.tables.read();
        let tname = self.table_arg(function, args)?;
        let table = tables
            .get(tname)
            .ok_or_else(|| HermesError::Eval(format!("{}: no table `{tname}`", self.name)))?;
        let (answers, touched) = match function {
            "all" => {
                let rows: Vec<Value> = table.scan().map(|r| Value::Record((**r).clone())).collect();
                let n = rows.len();
                (rows, n)
            }
            "count" => (vec![Value::Int(table.len() as i64)], table.len()),
            "select_eq" => {
                let col = self.column_arg(function, args)?;
                let (rows, touched) = table.select_eq(col, &args[2])?;
                (
                    rows.into_iter()
                        .map(|r| Value::Record((*r).clone()))
                        .collect(),
                    touched,
                )
            }
            "select_lt" | "select_le" | "select_gt" | "select_ge" => {
                let col = self.column_arg(function, args)?;
                let v = &args[2];
                let (lo, hi) = match function {
                    "select_lt" | "select_le" => (None, Some(v)),
                    _ => (Some(v), None),
                };
                let (mut rows, touched) = table.select_range(col, lo, hi)?;
                // select_lt / select_gt exclude the boundary value.
                if function == "select_lt" || function == "select_gt" {
                    let pos = table.schema().position(col).expect("column checked");
                    rows.retain(|r| r.get_pos(pos + 1) != Some(v));
                }
                (
                    rows.into_iter()
                        .map(|r| Value::Record((*r).clone()))
                        .collect(),
                    touched,
                )
            }
            "select_range" => {
                let col = self.column_arg(function, args)?;
                let (rows, touched) = table.select_range(col, Some(&args[2]), Some(&args[3]))?;
                (
                    rows.into_iter()
                        .map(|r| Value::Record((*r).clone()))
                        .collect(),
                    touched,
                )
            }
            "project" => {
                let col = self.column_arg(function, args)?;
                let (vals, touched) = table.project_distinct(col)?;
                (vals, touched)
            }
            "agg" => {
                let col = self.column_arg(function, args)?;
                let op = args[2].as_str().ok_or_else(|| {
                    HermesError::Type(format!(
                        "{}:agg: third argument must be an aggregate name",
                        self.name
                    ))
                })?;
                let pos = table.schema().position(col).ok_or_else(|| {
                    HermesError::Type(format!("table `{tname}` has no column `{col}`"))
                })?;
                let values: Vec<&Value> = table.scan().filter_map(|r| r.get_pos(pos + 1)).collect();
                let result = match op {
                    "min" => values.iter().min().map(|v| (*v).clone()),
                    "max" => values.iter().max().map(|v| (*v).clone()),
                    "count_distinct" => Some(Value::Int(table.distinct_count(col)? as i64)),
                    "sum" | "avg" => {
                        let nums: Option<Vec<f64>> = values.iter().map(|v| v.as_f64()).collect();
                        let nums = nums.ok_or_else(|| {
                            HermesError::Type(format!(
                                "{}:agg: `{op}` needs a numeric column",
                                self.name
                            ))
                        })?;
                        if nums.is_empty() {
                            None
                        } else if op == "sum" {
                            Some(Value::Float(nums.iter().sum()))
                        } else {
                            Some(Value::Float(nums.iter().sum::<f64>() / nums.len() as f64))
                        }
                    }
                    other => {
                        return Err(HermesError::Type(format!(
                            "{}:agg: unknown aggregate `{other}`",
                            self.name
                        )))
                    }
                };
                (result.into_iter().collect(), table.len())
            }
            other => return Err(self.unknown_function(other)),
        };
        let produced = answers.len();
        Ok(CallOutcome {
            answers,
            compute: self.cost(touched, produced),
        })
    }
}

impl Domain for RelationalDomain {
    fn name(&self) -> &str {
        &self.name
    }

    fn functions(&self) -> Vec<FunctionSig> {
        vec![
            FunctionSig::new("all", 1, "every row of a table"),
            FunctionSig::new("count", 1, "row count of a table"),
            FunctionSig::new("select_eq", 3, "rows with column = value"),
            FunctionSig::new("select_lt", 3, "rows with column < value"),
            FunctionSig::new("select_le", 3, "rows with column <= value"),
            FunctionSig::new("select_gt", 3, "rows with column > value"),
            FunctionSig::new("select_ge", 3, "rows with column >= value"),
            FunctionSig::new("select_range", 4, "rows with lo <= column <= hi"),
            FunctionSig::new("project", 2, "distinct values of a column"),
            FunctionSig::new(
                "agg",
                3,
                "column aggregate (sum/min/max/avg/count_distinct)",
            ),
        ]
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        let sig = self
            .functions()
            .into_iter()
            .find(|f| f.name.as_ref() == function)
            .ok_or_else(|| self.unknown_function(function))?;
        self.check_arity(function, sig.arity, args)?;
        self.run(function, args)
    }

    fn native_estimator(&self) -> Option<&dyn NativeEstimator> {
        Some(&self.estimator)
    }
}

impl NativeEstimator for RelationalDomain {
    /// The engine is its own estimator, so an `Arc<RelationalDomain>` can
    /// be registered with DCSM directly.
    fn estimate(&self, pattern: &CallPattern) -> Option<CostHint> {
        self.estimator.estimate(pattern)
    }
}

/// A native cost model built from exact table statistics — the "domain that
/// already provides a cost estimation module" of §6.
struct RelationalEstimator {
    domain: std::sync::Weak<RelationalDomain>,
}

impl NativeEstimator for RelationalEstimator {
    fn estimate(&self, pattern: &CallPattern) -> Option<CostHint> {
        let domain = self.domain.upgrade()?;
        // The table name must be a known constant to estimate anything.
        let tname = match pattern.args.first()? {
            PatArg::Const(Value::Str(s)) => s.clone(),
            _ => return None,
        };
        let (rows, distinct) = domain.with_table(&tname, |t| {
            let distinct = match pattern.args.get(1) {
                Some(PatArg::Const(Value::Str(col))) => t.distinct_count(col).ok(),
                _ => None,
            };
            (t.len(), distinct)
        })?;
        let card = match pattern.function.as_ref() {
            "all" => rows as f64,
            "count" => 1.0,
            "project" => distinct.unwrap_or(rows) as f64,
            "select_eq" => match distinct {
                Some(d) if d > 0 => rows as f64 / d as f64,
                _ => (rows as f64).sqrt(),
            },
            // Comparison selections: the classic 1/3 selectivity guess.
            "select_lt" | "select_le" | "select_gt" | "select_ge" => rows as f64 / 3.0,
            "select_range" => rows as f64 / 4.0,
            "agg" => 1.0,
            _ => return None,
        };
        let p = domain.params;
        // Touched rows: index probes touch ~card rows, scans touch all.
        let t_all_us = p.startup_us + p.per_row_us * rows as f64 + p.per_result_us * card;
        Some(CostHint {
            t_first_ms: Some((p.startup_us + p.per_result_us) / 1000.0),
            t_all_ms: Some(t_all_us / 1000.0),
            cardinality: Some(card),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::table::{Column, ColumnType, Schema};

    fn engine() -> Arc<RelationalDomain> {
        let d = RelationalDomain::new("relation");
        let mut cast = Table::new(
            "cast",
            Schema::new(vec![
                Column::new("name", ColumnType::Str),
                Column::new("role", ColumnType::Str),
            ])
            .unwrap(),
        );
        cast.insert_all([
            vec![Value::str("james stewart"), Value::str("rupert")],
            vec![Value::str("john dall"), Value::str("brandon")],
            vec![Value::str("farley granger"), Value::str("phillip")],
        ])
        .unwrap();
        d.add_table(cast);
        let mut inv = Table::new(
            "inventory",
            Schema::new(vec![
                Column::new("item", ColumnType::Str),
                Column::new("loc", ColumnType::Str),
                Column::new("qty", ColumnType::Int),
            ])
            .unwrap(),
        );
        inv.insert_all([
            vec![
                Value::str("h-22 fuel"),
                Value::str("pax river"),
                Value::Int(40),
            ],
            vec![
                Value::str("h-22 fuel"),
                Value::str("aberdeen"),
                Value::Int(15),
            ],
            vec![Value::str("ammo"), Value::str("pax river"), Value::Int(2)],
        ])
        .unwrap();
        d.add_table(inv);
        d
    }

    #[test]
    fn select_eq_returns_matching_records() {
        let d = engine();
        let out = d
            .call(
                "select_eq",
                &[
                    Value::str("inventory"),
                    Value::str("item"),
                    Value::str("h-22 fuel"),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 2);
        match &out.answers[0] {
            Value::Record(r) => assert_eq!(r.get("loc"), Some(&Value::str("pax river"))),
            other => panic!("expected record, got {other}"),
        }
        assert!(out.compute.t_all > ComputeCost::ZERO.t_all);
    }

    #[test]
    fn all_and_count() {
        let d = engine();
        let all = d.call("all", &[Value::str("cast")]).unwrap();
        assert_eq!(all.answers.len(), 3);
        let count = d.call("count", &[Value::str("cast")]).unwrap();
        assert_eq!(count.answers, vec![Value::Int(3)]);
    }

    #[test]
    fn comparison_selects() {
        let d = engine();
        let lt = d
            .call(
                "select_lt",
                &[Value::str("inventory"), Value::str("qty"), Value::Int(15)],
            )
            .unwrap();
        assert_eq!(lt.answers.len(), 1);
        let le = d
            .call(
                "select_le",
                &[Value::str("inventory"), Value::str("qty"), Value::Int(15)],
            )
            .unwrap();
        assert_eq!(le.answers.len(), 2);
        let ge = d
            .call(
                "select_ge",
                &[Value::str("inventory"), Value::str("qty"), Value::Int(15)],
            )
            .unwrap();
        assert_eq!(ge.answers.len(), 2);
        let gt = d
            .call(
                "select_gt",
                &[Value::str("inventory"), Value::str("qty"), Value::Int(15)],
            )
            .unwrap();
        assert_eq!(gt.answers.len(), 1);
    }

    #[test]
    fn select_range_inclusive() {
        let d = engine();
        let out = d
            .call(
                "select_range",
                &[
                    Value::str("inventory"),
                    Value::str("qty"),
                    Value::Int(2),
                    Value::Int(15),
                ],
            )
            .unwrap();
        assert_eq!(out.answers.len(), 2);
    }

    #[test]
    fn project_distinct_values() {
        let d = engine();
        let out = d
            .call("project", &[Value::str("inventory"), Value::str("item")])
            .unwrap();
        assert_eq!(out.answers.len(), 2);
    }

    #[test]
    fn aggregates_compute_correctly() {
        let d = engine();
        let agg = |op: &str| {
            d.call(
                "agg",
                &[Value::str("inventory"), Value::str("qty"), Value::str(op)],
            )
            .unwrap()
            .answers
        };
        assert_eq!(agg("min"), vec![Value::Int(2)]);
        assert_eq!(agg("max"), vec![Value::Int(40)]);
        assert_eq!(agg("sum"), vec![Value::Float(57.0)]);
        assert_eq!(agg("avg"), vec![Value::Float(19.0)]);
        assert_eq!(agg("count_distinct"), vec![Value::Int(3)]);
        // min/max work on strings too.
        let smin = d
            .call(
                "agg",
                &[
                    Value::str("inventory"),
                    Value::str("item"),
                    Value::str("min"),
                ],
            )
            .unwrap();
        assert_eq!(smin.answers, vec![Value::str("ammo")]);
        // sum over a string column is a type error; unknown op too.
        assert!(d
            .call(
                "agg",
                &[
                    Value::str("inventory"),
                    Value::str("item"),
                    Value::str("sum")
                ],
            )
            .is_err());
        assert!(d
            .call(
                "agg",
                &[
                    Value::str("inventory"),
                    Value::str("qty"),
                    Value::str("median")
                ],
            )
            .is_err());
    }

    #[test]
    fn missing_table_is_eval_error() {
        let d = engine();
        assert!(matches!(
            d.call("all", &[Value::str("nope")]),
            Err(HermesError::Eval(_))
        ));
    }

    #[test]
    fn non_string_table_arg_is_type_error() {
        let d = engine();
        assert!(matches!(
            d.call("all", &[Value::Int(1)]),
            Err(HermesError::Type(_))
        ));
    }

    #[test]
    fn index_reduces_compute_cost() {
        let d = engine();
        let args = [
            Value::str("inventory"),
            Value::str("item"),
            Value::str("ammo"),
        ];
        let before = d.call("select_eq", &args).unwrap().compute.t_all;
        d.with_table_mut("inventory", |t| t.create_hash_index("item").unwrap());
        let after = d.call("select_eq", &args).unwrap().compute.t_all;
        assert!(after <= before, "index made it slower: {after} vs {before}");
    }

    #[test]
    fn native_estimator_predicts_select_eq_cardinality() {
        let d = engine();
        let est = d.native_estimator().unwrap();
        let pattern = CallPattern::new(
            "relation",
            "select_eq",
            vec![
                PatArg::Const(Value::str("inventory")),
                PatArg::Const(Value::str("item")),
                PatArg::Bound,
            ],
        );
        let hint = est.estimate(&pattern).unwrap();
        // 3 rows / 2 distinct items = 1.5
        assert!((hint.cardinality.unwrap() - 1.5).abs() < 1e-9);
        assert!(hint.t_all_ms.unwrap() > 0.0);
    }

    #[test]
    fn native_estimator_needs_constant_table() {
        let d = engine();
        let est = d.native_estimator().unwrap();
        let pattern = CallPattern::new("relation", "all", vec![PatArg::Bound]);
        assert!(est.estimate(&pattern).is_none());
    }
}
