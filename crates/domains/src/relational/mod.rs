//! A small in-memory relational engine.
//!
//! Stands in for the INGRES / Paradox / DBase sources of the paper's
//! testbed. The mediator sees only the function surface ([`engine`]); the
//! storage layer ([`table`]) provides typed tables with optional hash and
//! ordered indexes, which is what gives `select_eq` its index-vs-scan cost
//! shape.
//!
//! Unlike the video or terrain domains, a relational source *understands its
//! own cost behaviour*: [`engine::RelationalDomain`] exports a
//! [`NativeEstimator`](crate::domain::NativeEstimator) built on exact table
//! statistics, exercising DCSM's §6 extensibility hook.

pub mod engine;
pub mod table;

pub use engine::{RelationalCostParams, RelationalDomain};
pub use table::{Column, ColumnType, Schema, Table};
