//! [`SlowDomain`]: a delegating wrapper that makes every call cost real
//! wall-clock time.
//!
//! The simulator charges *virtual* time for source calls, so on a single
//! CPU a multi-threaded client sees no wall-clock benefit from caching or
//! call coalescing — every call returns instantly in real time. Wrapping a
//! domain in `SlowDomain` adds a real `thread::sleep` per executed call,
//! which makes concurrency effects measurable: threads serving cache hits
//! or coalescing onto another query's in-flight call skip the sleep
//! entirely, while real source calls pay it. The throughput benchmark and
//! the single-flight tests are built on this.
//!
//! The wrapper also counts calls, giving tests an exact "how many times
//! was the source actually asked" probe independent of network counters.

use crate::domain::{CallOutcome, Domain, FunctionSig, NativeEstimator};
use hermes_common::{Result, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wraps a domain so every executed call sleeps for a fixed real-time
/// delay and bumps a shared call counter.
pub struct SlowDomain {
    inner: Arc<dyn Domain>,
    delay: Duration,
    calls: Arc<AtomicU64>,
}

impl SlowDomain {
    /// Wraps `inner`, sleeping `delay` of real time per call.
    pub fn new(inner: Arc<dyn Domain>, delay: Duration) -> Self {
        SlowDomain {
            inner,
            delay,
            calls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A handle on the call counter; clone it before placing the domain to
    /// observe calls from the outside.
    pub fn counter(&self) -> Arc<AtomicU64> {
        self.calls.clone()
    }

    /// Calls executed so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }
}

impl Domain for SlowDomain {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn functions(&self) -> Vec<FunctionSig> {
        self.inner.functions()
    }

    fn call(&self, function: &str, args: &[Value]) -> Result<CallOutcome> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.inner.call(function, args)
    }

    fn native_estimator(&self) -> Option<&dyn NativeEstimator> {
        self.inner.native_estimator()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{RelationSpec, SyntheticDomain};

    #[test]
    fn delegates_and_counts() {
        let inner = SyntheticDomain::generate("d1", 3, &[RelationSpec::uniform("p", 4, 2.0)]);
        let expected = inner.call("p_ff", &[]).unwrap();
        let slow = SlowDomain::new(Arc::new(inner), Duration::from_millis(0));
        let counter = slow.counter();
        assert_eq!(slow.name(), "d1");
        let got = slow.call("p_ff", &[]).unwrap();
        assert_eq!(got.answers, expected.answers);
        slow.call("p_ff", &[]).unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
        assert_eq!(slow.calls(), 2);
    }

    #[test]
    fn sleep_is_real() {
        let inner = SyntheticDomain::generate("d1", 3, &[RelationSpec::uniform("p", 4, 2.0)]);
        let slow = SlowDomain::new(Arc::new(inner), Duration::from_millis(5));
        let t0 = std::time::Instant::now();
        slow.call("p_ff", &[]).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }
}
