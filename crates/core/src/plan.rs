//! Execution plans.
//!
//! The rule rewriter (§5) compiles a query against a mediator program into
//! a set of **flat plans**: ordered sequences of steps in which every IDB
//! predicate has been unfolded into the domain calls and conditions of one
//! chosen access-path rule (or a fact table). Flatness is what lets the
//! executor pipeline answers and measure realistic time-to-first-answer.

use hermes_analysis::{fingerprint_body, SubplanKey};
use hermes_common::Value;
use hermes_lang::{BodyAtom, CallTemplate, Condition, PredAtom, Relop, Term};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// How a call step reaches its source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Straight to the (possibly remote) domain.
    Direct,
    /// Through the Cache and Invariant Manager first (§4.1).
    Cim,
}

/// One step of a flat plan.
#[derive(Clone, Debug, PartialEq)]
pub enum PlanStep {
    /// Execute a domain call and iterate its answers into `target` (or
    /// test membership if `target` is ground at run time).
    Call {
        /// The answer variable or membership probe.
        target: Term,
        /// The call template; all argument variables are bound by earlier
        /// steps (guaranteed by the rewriter).
        call: CallTemplate,
        /// Whether the call goes through CIM.
        route: Route,
    },
    /// Evaluate a comparison: a filter when both sides are ground, an
    /// assignment when one side is an unbound bare variable and the
    /// operator is equality.
    Cond(Condition),
    /// Iterate the rows of a fact-defined predicate, unifying each row
    /// with `args`.
    Facts {
        /// The predicate name (for display).
        pred: Arc<str>,
        /// The argument terms the rows unify with.
        args: Vec<Term>,
        /// The ground rows.
        rows: Arc<Vec<Vec<Value>>>,
    },
}

impl PlanStep {
    /// True for [`PlanStep::Call`].
    pub fn is_call(&self) -> bool {
        matches!(self, PlanStep::Call { .. })
    }
}

impl fmt::Display for PlanStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanStep::Call {
                target,
                call,
                route,
            } => {
                let prefix = match route {
                    Route::Direct => "",
                    Route::Cim => "CIM·",
                };
                write!(f, "in({target}, {prefix}{call})")
            }
            PlanStep::Cond(c) => write!(f, "{c}"),
            PlanStep::Facts { pred, args, rows } => {
                write!(f, "facts {pred}/{} ({} rows)", args.len(), rows.len())
            }
        }
    }
}

/// A flat, fully-unfolded execution plan.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Plan {
    /// The steps, in execution order.
    pub steps: Vec<PlanStep>,
    /// The variables whose bindings form an answer, in output order.
    pub answer_vars: Vec<Arc<str>>,
}

impl Plan {
    /// Number of call steps.
    pub fn call_count(&self) -> usize {
        self.steps.iter().filter(|s| s.is_call()).count()
    }

    /// The plan's steps as a body conjunction. Routing is erased — whether
    /// a call goes through the CIM is an execution choice, not part of the
    /// subplan's identity — and fact steps reappear as predicate atoms.
    pub fn body_atoms(&self) -> Vec<BodyAtom> {
        self.steps
            .iter()
            .map(|step| match step {
                PlanStep::Call { target, call, .. } => BodyAtom::In {
                    target: target.clone(),
                    call: call.clone(),
                },
                PlanStep::Cond(c) => BodyAtom::Cond(c.clone()),
                PlanStep::Facts { pred, args, .. } => {
                    BodyAtom::Pred(PredAtom::new(pred.clone(), args.clone()))
                }
            })
            .collect()
    }

    /// The plan's canonical subplan fingerprint (see
    /// [`hermes_analysis::fingerprint`]): stable across variable renaming
    /// and reordering of independent steps, so equivalent plans — and the
    /// analyzer's `HA070` inventory — share one cache key. Flat plans are
    /// fully bound at entry (the rewriter substitutes query constants), so
    /// the entry-binding set is empty.
    pub fn fingerprint(&self) -> SubplanKey {
        fingerprint_body(&self.body_atoms(), &BTreeSet::new())
    }
}

/// Computes the plan's *independence groups*: maximal runs of consecutive
/// [`PlanStep::Call`] steps whose members share no unbound variables, so
/// the executor may dispatch all of their domain calls concurrently and
/// the cost model may charge the group's overlap makespan instead of the
/// sequential sum.
///
/// A run of calls starting after bindings `θ` qualifies when every member
/// satisfies, with respect to the variables bound *before the run*:
///
/// * every call argument is ground at group entry — a constant or an
///   already-bound variable (never a sibling's answer variable);
/// * the target either probes an already-bound value, or binds a fresh
///   variable distinct from every other member's target.
///
/// Only groups of two or more calls are returned (a singleton "group" is
/// just sequential execution). Indices are positions in `steps`.
pub fn independence_groups(steps: &[PlanStep]) -> Vec<Range<usize>> {
    let mut bound: BTreeSet<Arc<str>> = BTreeSet::new();
    let mut groups = Vec::new();
    let mut i = 0;
    while i < steps.len() {
        if steps[i].is_call() {
            let end = group_end(steps, i, &bound);
            if end - i >= 2 {
                groups.push(i..end);
            }
            for step in &steps[i..end] {
                bind_step(step, &mut bound);
            }
            i = end;
        } else {
            bind_step(&steps[i], &mut bound);
            i += 1;
        }
    }
    groups
}

/// The exclusive end of the longest independent run of calls starting at
/// `start` (at least `start + 1`: a call is trivially independent alone).
fn group_end(steps: &[PlanStep], start: usize, bound: &BTreeSet<Arc<str>>) -> usize {
    // Fresh variables bound by members admitted so far; sibling targets
    // must stay pairwise distinct.
    let mut fresh: BTreeSet<Arc<str>> = BTreeSet::new();
    let mut j = start;
    while j < steps.len() {
        let PlanStep::Call { target, call, .. } = &steps[j] else {
            break;
        };
        let args_ground = call.args.iter().all(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        });
        if !args_ground && j > start {
            break;
        }
        if let Term::Var(v) = target {
            if !bound.contains(v) && !fresh.insert(v.clone()) {
                break;
            }
        }
        j += 1;
    }
    j.max(start + 1)
}

/// Adds the variables `step` binds to `bound` (mirrors the §7 executor's
/// left-to-right binding discipline).
fn bind_step(step: &PlanStep, bound: &mut BTreeSet<Arc<str>>) {
    match step {
        PlanStep::Call { target, .. } => {
            if let Term::Var(v) = target {
                bound.insert(v.clone());
            }
        }
        PlanStep::Facts { args, .. } => {
            for t in args {
                if let Term::Var(v) = t {
                    bound.insert(v.clone());
                }
            }
        }
        PlanStep::Cond(c) => {
            // An equality with an unbound bare-variable side assigns it.
            if c.op == Relop::Eq {
                for pt in [&c.lhs, &c.rhs] {
                    if pt.path.is_empty() {
                        if let Some(v) = pt.var_name() {
                            bound.insert(v.clone());
                        }
                    }
                }
            }
        }
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PLAN[")?;
        for (i, v) in self.answer_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        writeln!(f, "]")?;
        for (i, s) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}: {s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_lang::{PathTerm, Relop};

    #[test]
    fn display_is_readable() {
        let plan = Plan {
            steps: vec![
                PlanStep::Call {
                    target: Term::var("B"),
                    call: CallTemplate::new("d1", "p_bf", vec![Term::constant("a")]),
                    route: Route::Cim,
                },
                PlanStep::Cond(Condition::new(
                    Relop::Gt,
                    PathTerm::bare(Term::var("B")),
                    PathTerm::bare(Term::constant(3)),
                )),
                PlanStep::Facts {
                    pred: Arc::from("edge"),
                    args: vec![Term::var("B"), Term::var("C")],
                    rows: Arc::new(vec![vec![Value::Int(1), Value::Int(2)]]),
                },
            ],
            answer_vars: vec![Arc::from("B"), Arc::from("C")],
        };
        let text = plan.to_string();
        assert!(text.contains("PLAN[B, C]"));
        assert!(text.contains("CIM·d1:p_bf('a')"));
        assert!(text.contains(">(B, 3)"));
        assert!(text.contains("facts edge/2 (1 rows)"));
        assert_eq!(plan.call_count(), 1);
    }
}
