//! The **matcache**: a runtime cache of materialized subplan results.
//!
//! The CIM caches *ground source calls*; everything above them — joins,
//! selections, the whole flat plan — is recomputed for every query. This
//! module caches whole-plan answer sets keyed by the canonical subplan
//! fingerprints PR 7 introduced ([`Plan::fingerprint`](crate::Plan)), so a
//! repeated query costs one lookup instead of a re-execution, and
//! concurrent identical queries coalesce into a single computation.
//!
//! ## Safety gating (HA070/HA071)
//!
//! A snapshot of a subplan's answers is only sound when every source it
//! reads has an invalidation signal. The cache therefore refuses to issue
//! a [`MatTicket`] — the capability to look up, coalesce, or store — for
//! any plan whose calls the installed
//! [`MaterializationVerdicts`] classify as volatile, and for *all* plans
//! until verdicts are installed at all. No ticket, no entry: HA071-volatile
//! subplans can never produce a cache hit, by construction.
//!
//! ## Admission and demotion
//!
//! Entries are priced at store time with the analyzer's own HA073 measure
//! (`Dcsm::estimate_subplan_savings`): an entry must promise at least
//! [`MatCacheConfig::min_savings_ms`] of saved work to be admitted, and
//! when the byte budget overflows the *lowest-savings* entries are demoted
//! first — the same rule the DCSM uses to rank sharing opportunities.
//!
//! ## Invalidation (HA074)
//!
//! Each entry records the `(domain, function)` sources its plan reads
//! ([`SubplanKey::calls`]). [`MatCache::invalidate_source`] drops exactly
//! the entries that read the updated source — the runtime realization of
//! the HA074 invalidation scope — and leaves a tombstone so the next query
//! that re-materializes the subplan can report *why* it missed
//! (`TraceEvent::SubplanInvalidated`).
//!
//! ## Single-flight coalescing
//!
//! Mirrors [`crate::flight`], lifted from ground calls to whole subplans:
//! the first query to miss becomes the **leader** and computes the result;
//! concurrent identical queries become **followers** and block until the
//! leader publishes one shared `Arc<[Subst]>`. An abandoned flight (leader
//! errored, hit its deadline, or was downgraded) releases followers to
//! re-join, exactly like ground-call flights.
//!
//! ## Lock order and soundness
//!
//! The store lock and the flight-registry lock are never held together,
//! never across plan execution, and never while a slot lock is held. A
//! leader stores *before* publishing, so there is no window in which a
//! follower resolves but a fresh query misses.

use crate::plan::Plan;
use hermes_analysis::{MaterializationVerdicts, SubplanKey, SubplanVerdict};
use hermes_common::sync::Mutex;
use hermes_lang::Subst;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar};

type Call = (Arc<str>, Arc<str>);

/// Identity of a materialized subplan. The fingerprint alone is stable
/// across variable renaming, but the stored answers are [`Subst`]s over
/// *this* plan's variable names — so the key also pins the canonical form
/// and the exact variable set, and an alpha-renamed twin takes a clean
/// miss instead of answers it cannot read.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct MatKey {
    fingerprint: u64,
    canonical: String,
    vars: String,
}

/// The capability to use the matcache for one plan: issued by
/// [`MatCache::ticket`] only for plans the installed verdicts classify as
/// safe to materialize.
#[derive(Clone, Debug)]
pub struct MatTicket {
    key: MatKey,
    sub: SubplanKey,
}

impl MatTicket {
    /// The plan's canonical fingerprint.
    pub fn fingerprint(&self) -> u64 {
        self.sub.fingerprint.0
    }
}

/// One materialized entry.
#[derive(Debug)]
struct Entry {
    answers: Arc<[Subst]>,
    calls: Vec<Call>,
    bytes: usize,
    savings_ms: f64,
}

#[derive(Debug, Default)]
struct Store {
    entries: HashMap<MatKey, Entry>,
    /// HA074 reverse index: source call → keys whose plans read it.
    by_call: BTreeMap<Call, BTreeSet<MatKey>>,
    /// Keys evicted by [`MatCache::invalidate_source`], with the call
    /// that dirtied them; consumed by the next lookup so the recomputing
    /// query can trace the invalidation.
    tombstones: HashMap<MatKey, Call>,
    bytes: usize,
    budget_bytes: usize,
    min_savings_ms: f64,
}

impl Store {
    fn remove(&mut self, key: &MatKey) -> Option<Entry> {
        let entry = self.entries.remove(key)?;
        self.bytes -= entry.bytes;
        for call in &entry.calls {
            if let Some(set) = self.by_call.get_mut(call) {
                set.remove(key);
                if set.is_empty() {
                    self.by_call.remove(call);
                }
            }
        }
        Some(entry)
    }
}

/// Configuration for a [`MatCache`].
#[derive(Clone, Copy, Debug)]
pub struct MatCacheConfig {
    /// Byte budget for materialized answer sets; lowest-savings entries
    /// are demoted first when it overflows.
    pub budget_bytes: usize,
    /// Admission floor: an entry must promise at least this much saved
    /// work (DCSM estimate, milliseconds) to be stored.
    pub min_savings_ms: f64,
}

impl Default for MatCacheConfig {
    fn default() -> Self {
        MatCacheConfig {
            budget_bytes: 4 * 1024 * 1024,
            min_savings_ms: 0.0,
        }
    }
}

/// Why a store was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreOutcome {
    /// Admitted; carries the entry's byte size.
    Stored(usize),
    /// The DCSM-estimated saving fell below the admission floor.
    RejectedSavings,
    /// The answer set alone exceeds the whole byte budget.
    RejectedSize,
}

/// Counter snapshot (see [`MatCache::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MatCacheStats {
    /// Lookups served from a materialized entry.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Complete plan results admitted into the cache.
    pub materialized: u64,
    /// Queries served by another query's in-flight computation
    /// (single-flight followers).
    pub coalesced: u64,
    /// Stores refused by the admission price or size check.
    pub rejected: u64,
    /// Entries demoted to make room under the byte budget.
    pub demoted: u64,
    /// Entries dropped by source invalidation.
    pub invalidated: u64,
    /// Plans refused a ticket because a source they read is volatile.
    pub volatile_skips: u64,
    /// Live entries.
    pub entries: usize,
    /// Live bytes.
    pub bytes: usize,
}

#[derive(Debug)]
struct MatSlot {
    state: Mutex<SlotState>,
    arrived: Condvar,
}

#[derive(Debug)]
enum SlotState {
    Pending,
    Done(Arc<[Subst]>),
    Abandoned,
}

impl MatSlot {
    fn new() -> Self {
        MatSlot {
            state: Mutex::new(SlotState::Pending),
            arrived: Condvar::new(),
        }
    }

    fn resolve(&self, state: SlotState) {
        *self.state.lock() = state;
        self.arrived.notify_all();
    }
}

/// A follower's handle on another query's in-flight subplan computation.
#[derive(Debug)]
pub struct MatFollower {
    slot: Arc<MatSlot>,
}

impl MatFollower {
    /// Blocks until the leader resolves. `Some` shares the leader's
    /// answers (`Arc` bump); `None` means the leader abandoned and the
    /// caller must compute (re-joining first, so one follower inherits
    /// leadership).
    pub fn wait(self) -> Option<Arc<[Subst]>> {
        let mut state = self.slot.state.lock();
        loop {
            match &*state {
                SlotState::Pending => {
                    state = self
                        .slot
                        .arrived
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                SlotState::Done(answers) => return Some(answers.clone()),
                SlotState::Abandoned => return None,
            }
        }
    }
}

/// The leader's obligation to resolve its subplan flight. Dropping the
/// token without publishing abandons the flight (covers error returns,
/// deadline unwinds, and panics).
#[derive(Debug)]
pub struct MatLeader<'m> {
    cache: &'m MatCache,
    key: MatKey,
    slot: Arc<MatSlot>,
    resolved: bool,
}

impl MatLeader<'_> {
    /// Publishes the computed answers to every follower and closes the
    /// flight. Publication is independent of admission: followers share
    /// the result even when the store was refused.
    pub fn publish(mut self, answers: &Arc<[Subst]>) {
        self.cache.remove_flight(&self.key);
        self.slot.resolve(SlotState::Done(answers.clone()));
        self.resolved = true;
    }
}

impl Drop for MatLeader<'_> {
    fn drop(&mut self) {
        if !self.resolved {
            self.cache.remove_flight(&self.key);
            self.slot.resolve(SlotState::Abandoned);
        }
    }
}

/// The caller's role in a subplan flight (see [`MatCache::join`]).
#[derive(Debug)]
pub enum MatRole<'m> {
    /// First query in: compute the plan, then publish or abandon.
    Leader(MatLeader<'m>),
    /// A leader is already computing: wait for its result.
    Follower(MatFollower),
}

/// A lookup's result.
#[derive(Debug)]
pub enum MatLookup {
    /// A materialized entry; share and serve.
    Hit(Arc<[Subst]>),
    /// No entry. `invalidated` names the source update that evicted a
    /// previous materialization of this exact subplan, if one did.
    Miss {
        /// The `(domain, function)` whose invalidation caused this miss.
        invalidated: Option<Call>,
    },
}

/// The subplan materialization cache. Thread-safe; shared by every query
/// of a [`crate::ConcurrentMediator`] and owned (behind `Arc`) by the
/// serial [`crate::Mediator`].
#[derive(Debug)]
pub struct MatCache {
    store: Mutex<Store>,
    flights: Mutex<HashMap<MatKey, Arc<MatSlot>>>,
    /// `(epoch, verdicts)`: which program/policy state the verdicts
    /// describe. No verdicts → no tickets → the cache is inert.
    verdicts: Mutex<Option<(u64, Arc<MaterializationVerdicts>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    materialized: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    demoted: AtomicU64,
    invalidated: AtomicU64,
    volatile_skips: AtomicU64,
}

impl Default for MatCache {
    fn default() -> Self {
        MatCache::new(MatCacheConfig::default())
    }
}

impl MatCache {
    /// An empty cache. Inert until verdicts are installed.
    pub fn new(config: MatCacheConfig) -> Self {
        MatCache {
            store: Mutex::new(Store {
                budget_bytes: config.budget_bytes,
                min_savings_ms: config.min_savings_ms,
                ..Store::default()
            }),
            flights: Mutex::new(HashMap::new()),
            verdicts: Mutex::new(None),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            materialized: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            demoted: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            volatile_skips: AtomicU64::new(0),
        }
    }

    /// Installs the safety verdicts for program/policy state `epoch` and
    /// sweeps out any entry the new verdicts no longer classify as safe
    /// (a policy change can turn a cached source volatile).
    pub fn install_verdicts(&self, epoch: u64, verdicts: MaterializationVerdicts) {
        let verdicts = Arc::new(verdicts);
        let mut store = self.store.lock();
        let stale: Vec<MatKey> = store
            .entries
            .iter()
            .filter(|(_, e)| verdicts.verdict_for_calls(e.calls.iter()) != SubplanVerdict::Safe)
            .map(|(k, _)| k.clone())
            .collect();
        for key in &stale {
            store.remove(key);
            self.invalidated.fetch_add(1, Ordering::Relaxed);
        }
        drop(store);
        *self.verdicts.lock() = Some((epoch, verdicts));
    }

    /// The epoch of the installed verdicts, if any — the mediator's cue
    /// to refresh after a program or policy change.
    pub fn verdicts_epoch(&self) -> Option<u64> {
        self.verdicts.lock().as_ref().map(|(e, _)| *e)
    }

    /// Issues the capability to use the cache for `plan`: `None` when no
    /// verdicts are installed, when the plan makes no source calls, or
    /// when any source it reads is volatile (the HA070/HA071 gate).
    pub fn ticket(&self, plan: &Plan) -> Option<MatTicket> {
        let verdicts = {
            let guard = self.verdicts.lock();
            guard.as_ref().map(|(_, v)| v.clone())?
        };
        let sub = plan.fingerprint();
        if sub.calls.is_empty() {
            return None;
        }
        if verdicts.verdict_for_calls(sub.calls.iter()) != SubplanVerdict::Safe {
            self.volatile_skips.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut vars: BTreeSet<Arc<str>> = plan.answer_vars.iter().cloned().collect();
        for atom in plan.body_atoms() {
            vars.extend(atom.variables());
        }
        let vars: Vec<&str> = vars.iter().map(|v| v.as_ref()).collect();
        let key = MatKey {
            fingerprint: sub.fingerprint.0,
            canonical: sub.canonical.clone(),
            vars: vars.join(","),
        };
        Some(MatTicket { key, sub })
    }

    /// Looks the ticket's subplan up.
    pub fn lookup(&self, ticket: &MatTicket) -> MatLookup {
        let mut store = self.store.lock();
        if let Some(entry) = store.entries.get(&ticket.key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return MatLookup::Hit(entry.answers.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let invalidated = store.tombstones.remove(&ticket.key);
        MatLookup::Miss { invalidated }
    }

    /// Joins the flight for the ticket's subplan, becoming its leader or
    /// a follower.
    pub fn join(&self, ticket: &MatTicket) -> MatRole<'_> {
        let mut flights = self.flights.lock();
        if let Some(slot) = flights.get(&ticket.key) {
            self.coalesced.fetch_add(1, Ordering::Relaxed);
            MatRole::Follower(MatFollower { slot: slot.clone() })
        } else {
            let slot = Arc::new(MatSlot::new());
            flights.insert(ticket.key.clone(), slot.clone());
            MatRole::Leader(MatLeader {
                cache: self,
                key: ticket.key.clone(),
                slot,
                resolved: false,
            })
        }
    }

    /// Stores a complete plan result, pricing admission with the caller's
    /// DCSM savings estimate and demoting lowest-savings entries while
    /// the byte budget overflows.
    pub fn store(
        &self,
        ticket: &MatTicket,
        answers: Arc<[Subst]>,
        savings_ms: f64,
    ) -> StoreOutcome {
        let bytes: usize = answers.iter().map(subst_bytes).sum();
        let mut store = self.store.lock();
        if savings_ms < store.min_savings_ms {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return StoreOutcome::RejectedSavings;
        }
        if bytes > store.budget_bytes {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return StoreOutcome::RejectedSize;
        }
        store.remove(&ticket.key);
        store.tombstones.remove(&ticket.key);
        for call in &ticket.sub.calls {
            store
                .by_call
                .entry(call.clone())
                .or_default()
                .insert(ticket.key.clone());
        }
        store.bytes += bytes;
        store.entries.insert(
            ticket.key.clone(),
            Entry {
                answers,
                calls: ticket.sub.calls.clone(),
                bytes,
                savings_ms,
            },
        );
        // Demote cheapest-to-recompute entries first; never the incoming
        // one (it already fits and is the freshest evidence of reuse).
        while store.bytes > store.budget_bytes {
            let victim = store
                .entries
                .iter()
                .filter(|(k, _)| **k != ticket.key)
                .min_by(|a, b| a.1.savings_ms.total_cmp(&b.1.savings_ms))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    store.remove(&k);
                    self.demoted.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        self.materialized.fetch_add(1, Ordering::Relaxed);
        StoreOutcome::Stored(bytes)
    }

    /// Drops exactly the entries whose plans read `domain:function` — the
    /// HA074 invalidation scope, realized. Returns the number of entries
    /// dropped; each leaves a tombstone so the recomputing query can
    /// trace why it missed.
    pub fn invalidate_source(&self, domain: &str, function: &str) -> usize {
        let call: Call = (Arc::from(domain), Arc::from(function));
        let mut store = self.store.lock();
        let victims: Vec<MatKey> = store
            .by_call
            .get(&call)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default();
        for key in &victims {
            store.remove(key);
            store.tombstones.insert(key.clone(), call.clone());
        }
        self.invalidated
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        victims.len()
    }

    /// Empties the cache (entries, index, tombstones); counters persist.
    pub fn clear(&self) {
        let mut store = self.store.lock();
        store.entries.clear();
        store.by_call.clear();
        store.tombstones.clear();
        store.bytes = 0;
    }

    /// Replaces the byte budget, demoting immediately if the new budget
    /// is already overflowed.
    pub fn set_budget(&self, bytes: usize) {
        let mut store = self.store.lock();
        store.budget_bytes = bytes;
        while store.bytes > store.budget_bytes {
            let victim = store
                .entries
                .iter()
                .min_by(|a, b| a.1.savings_ms.total_cmp(&b.1.savings_ms))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    store.remove(&k);
                    self.demoted.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Replaces the admission floor (milliseconds of estimated saving).
    pub fn set_min_savings(&self, ms: f64) {
        self.store.lock().min_savings_ms = ms;
    }

    /// Counter snapshot plus live entry/byte counts.
    pub fn stats(&self) -> MatCacheStats {
        let (entries, bytes) = {
            let store = self.store.lock();
            (store.entries.len(), store.bytes)
        };
        MatCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            materialized: self.materialized.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            demoted: self.demoted.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            volatile_skips: self.volatile_skips.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    fn remove_flight(&self, key: &MatKey) {
        self.flights.lock().remove(key);
    }
}

/// Heap footprint of one substitution, for the byte budget.
fn subst_bytes(theta: &Subst) -> usize {
    theta
        .iter()
        .map(|(name, value)| name.len() + value.size_bytes())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::Value;

    fn verdict_program() -> (hermes_lang::Program, MaterializationVerdicts) {
        let program = hermes_lang::parse_program(
            "p(A, B) :- in(A, d:f('k')) & in(B, e:g(A)).\n\
             v(A) :- in(A, feed:price('x')).",
        )
        .unwrap();
        let vol = |d: &str, _f: &str| d == "feed";
        let v = MaterializationVerdicts::compute(&program, &[], Some(&vol), None);
        (program, v)
    }

    fn plan_for(src: &str, program: &hermes_lang::Program) -> Plan {
        let query = hermes_lang::parse_query(src).unwrap();
        let policy = hermes_cim::CimPolicy::cache_everything();
        let plans =
            crate::rewrite::enumerate_plans(program, &query, &policy, Default::default()).unwrap();
        plans.into_iter().next().unwrap()
    }

    fn answers(n: i64) -> Arc<[Subst]> {
        (0..n)
            .map(|i| Subst::from_pairs([("A", Value::Int(i)), ("B", Value::Int(i * 10))]))
            .collect::<Vec<_>>()
            .into()
    }

    #[test]
    fn no_verdicts_no_tickets() {
        let (program, verdicts) = verdict_program();
        let plan = plan_for("?- p(A, B).", &program);
        let cache = MatCache::default();
        assert!(cache.ticket(&plan).is_none(), "inert until verdicts land");
        cache.install_verdicts(1, verdicts);
        assert!(cache.ticket(&plan).is_some());
        assert_eq!(cache.verdicts_epoch(), Some(1));
    }

    #[test]
    fn volatile_subplans_are_refused_a_ticket() {
        let (program, verdicts) = verdict_program();
        let cache = MatCache::default();
        cache.install_verdicts(1, verdicts);
        let plan = plan_for("?- v(A).", &program);
        assert!(cache.ticket(&plan).is_none());
        assert_eq!(cache.stats().volatile_skips, 1);
    }

    #[test]
    fn store_then_hit_shares_the_allocation() {
        let (program, verdicts) = verdict_program();
        let cache = MatCache::default();
        cache.install_verdicts(1, verdicts);
        let plan = plan_for("?- p(A, B).", &program);
        let ticket = cache.ticket(&plan).unwrap();
        assert!(matches!(
            cache.lookup(&ticket),
            MatLookup::Miss { invalidated: None }
        ));
        let ans = answers(3);
        assert!(matches!(
            cache.store(&ticket, ans.clone(), 5.0),
            StoreOutcome::Stored(_)
        ));
        match cache.lookup(&ticket) {
            MatLookup::Hit(got) => assert!(Arc::ptr_eq(&got, &ans)),
            other => panic!("expected hit, got {other:?}"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.materialized), (1, 1, 1));
    }

    #[test]
    fn invalidation_scope_is_per_source_and_leaves_a_tombstone() {
        let (program, verdicts) = verdict_program();
        let cache = MatCache::default();
        cache.install_verdicts(1, verdicts);
        let plan = plan_for("?- p(A, B).", &program);
        let ticket = cache.ticket(&plan).unwrap();
        cache.store(&ticket, answers(2), 5.0);
        // An unrelated source evicts nothing.
        assert_eq!(cache.invalidate_source("nowhere", "seen"), 0);
        assert!(matches!(cache.lookup(&ticket), MatLookup::Hit(_)));
        // A source the plan reads evicts exactly this entry.
        assert_eq!(cache.invalidate_source("e", "g"), 1);
        match cache.lookup(&ticket) {
            MatLookup::Miss {
                invalidated: Some((d, f)),
            } => assert_eq!((d.as_ref(), f.as_ref()), ("e", "g")),
            other => panic!("expected tombstoned miss, got {other:?}"),
        }
        // The tombstone is consumed.
        assert!(matches!(
            cache.lookup(&ticket),
            MatLookup::Miss { invalidated: None }
        ));
        assert_eq!(cache.stats().invalidated, 1);
    }

    #[test]
    fn admission_floor_and_budget_demotion() {
        let (program, verdicts) = verdict_program();
        let cache = MatCache::new(MatCacheConfig {
            budget_bytes: 120,
            min_savings_ms: 1.0,
        });
        cache.install_verdicts(1, verdicts);
        let plan = plan_for("?- p(A, B).", &program);
        let ticket = cache.ticket(&plan).unwrap();
        assert_eq!(
            cache.store(&ticket, answers(2), 0.5),
            StoreOutcome::RejectedSavings
        );
        assert_eq!(
            cache.store(&ticket, answers(100), 50.0),
            StoreOutcome::RejectedSize
        );
        assert!(matches!(
            cache.store(&ticket, answers(2), 50.0),
            StoreOutcome::Stored(_)
        ));
        // Shrinking the budget demotes the (only, cheapest) entry.
        cache.set_budget(1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.demoted, 1);
        assert_eq!(stats.rejected, 2);
    }

    #[test]
    fn flight_leader_publishes_to_followers() {
        let (program, verdicts) = verdict_program();
        let cache = Arc::new(MatCache::default());
        cache.install_verdicts(1, verdicts);
        let plan = plan_for("?- p(A, B).", &program);
        let ticket = cache.ticket(&plan).unwrap();
        let MatRole::Leader(leader) = cache.join(&ticket) else {
            panic!("first join leads");
        };
        let MatRole::Follower(follower) = cache.join(&ticket) else {
            panic!("second join follows");
        };
        let ans = answers(4);
        leader.publish(&ans);
        let got = follower.wait().expect("published");
        assert!(Arc::ptr_eq(&got, &ans));
        // The flight is closed: the next join leads again.
        assert!(matches!(cache.join(&ticket), MatRole::Leader(_)));
        assert_eq!(cache.stats().coalesced, 1);
    }

    #[test]
    fn abandoned_flight_releases_followers() {
        let (program, verdicts) = verdict_program();
        let cache = MatCache::default();
        cache.install_verdicts(1, verdicts);
        let plan = plan_for("?- p(A, B).", &program);
        let ticket = cache.ticket(&plan).unwrap();
        let MatRole::Leader(leader) = cache.join(&ticket) else {
            panic!("lead");
        };
        let MatRole::Follower(follower) = cache.join(&ticket) else {
            panic!("follow");
        };
        drop(leader);
        assert!(follower.wait().is_none());
        assert!(matches!(cache.join(&ticket), MatRole::Leader(_)));
    }

    #[test]
    fn policy_change_sweeps_newly_volatile_entries() {
        let (program, verdicts) = verdict_program();
        let cache = MatCache::default();
        cache.install_verdicts(1, verdicts);
        let plan = plan_for("?- p(A, B).", &program);
        let ticket = cache.ticket(&plan).unwrap();
        cache.store(&ticket, answers(2), 5.0);
        assert_eq!(cache.stats().entries, 1);
        // New policy: domain `e` is now volatile.
        let vol = |d: &str, _f: &str| d == "feed" || d == "e";
        let v2 = MaterializationVerdicts::compute(&program, &[], Some(&vol), None);
        cache.install_verdicts(2, v2);
        assert_eq!(cache.stats().entries, 0);
        assert!(cache.ticket(&plan).is_none(), "now volatile: no ticket");
    }
}
