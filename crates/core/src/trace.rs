//! Execution traces: a structured log of what the executor did, for
//! debugging plans and understanding cache behaviour.
//!
//! Collection is off by default ([`ExecConfig::collect_trace`]); when on,
//! the executor appends one [`TraceEvent`] per interesting action with its
//! virtual timestamp. `QueryResult::trace` carries the events; rendering
//! them gives the "what actually happened" story the Figure 5/6 analyses
//! are built on.
//!
//! [`ExecConfig::collect_trace`]: crate::exec::ExecConfig::collect_trace

use hermes_common::{GroundCall, SimDuration, SimInstant};
use std::fmt;

/// One executor action.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A source call went over the network.
    ActualCall {
        /// The call.
        call: GroundCall,
        /// Answers returned.
        answers: usize,
        /// Source+network time to all answers.
        t_all: SimDuration,
        /// Bytes received.
        bytes: usize,
    },
    /// CIM answered completely (exact or equality hit).
    CacheHit {
        /// The requested call.
        call: GroundCall,
        /// The cached call that served it (differs on equality hits).
        via: GroundCall,
        /// Answers served.
        answers: usize,
    },
    /// CIM served a partial prefix; the actual call may follow.
    PartialHit {
        /// The requested call.
        call: GroundCall,
        /// The cached call that served the prefix.
        via: GroundCall,
        /// Prefix answers served.
        answers: usize,
    },
    /// A miss executed an invariant-equivalent substitute call.
    Substituted {
        /// The requested call.
        call: GroundCall,
        /// What was actually executed.
        executed: GroundCall,
    },
    /// A call was skipped because the consumer stopped early.
    Cancelled {
        /// The call that never ran.
        call: GroundCall,
    },
    /// A site was unavailable.
    Unavailable {
        /// The failed call.
        call: GroundCall,
        /// Whether a retry follows.
        will_retry: bool,
    },
    /// An answer reached the top of the plan.
    Answer {
        /// 1-based answer ordinal.
        ordinal: usize,
    },
    /// Consecutive failures tripped a site's circuit breaker open.
    BreakerTripped {
        /// The isolated site.
        site: String,
    },
    /// An open breaker short-circuited a call without touching the network.
    BreakerShortCircuit {
        /// The call that never went out.
        call: GroundCall,
        /// The isolated site.
        site: String,
    },
    /// A half-open breaker admitted a recovery probe.
    BreakerProbe {
        /// The probed site.
        site: String,
    },
    /// A successful probe closed the breaker.
    BreakerRecovered {
        /// The recovered site.
        site: String,
    },
    /// The query's deadline fired; evaluation unwound cleanly.
    DeadlineExceeded {
        /// Virtual time elapsed when the check fired.
        elapsed: SimDuration,
        /// The configured deadline.
        deadline: SimDuration,
    },
    /// An injected fault truncated a call's answer set.
    Truncated {
        /// The affected call.
        call: GroundCall,
        /// Answers that did arrive.
        kept: usize,
    },
    /// An unreachable source was answered from a stale cached entry.
    ServedStale {
        /// The call served stale.
        call: GroundCall,
        /// Stale answers served.
        answers: usize,
    },
    /// An independence group's calls were dispatched concurrently.
    GroupDispatched {
        /// Calls put in flight together.
        calls: usize,
        /// Distinct sites involved.
        sites: usize,
        /// The group's overlapped completion time (its makespan).
        makespan: SimDuration,
    },
    /// A dispatched group finished; records the overlap win.
    Overlapped {
        /// What the calls would have cost back-to-back.
        serial: SimDuration,
        /// What the overlapped schedule actually cost.
        parallel: SimDuration,
        /// Calls in the group.
        calls: usize,
    },
    /// The call coalesced onto another query's identical in-flight call
    /// and was served by the leader's published answers.
    Coalesced {
        /// The coalesced call.
        call: GroundCall,
        /// Answers shared from the leader's outcome.
        answers: usize,
    },
    /// The tier selector picked a non-default plan tier for this query.
    TierSelected {
        /// The selected tier.
        tier: crate::tier::PlanTier,
        /// Which selector rule fired.
        reason: crate::tier::TierReason,
    },
    /// Budget pressure stepped the tier down mid-execution (one-way).
    TierDowngraded {
        /// The tier the query was running at.
        from: crate::tier::PlanTier,
        /// The tier it dropped to.
        to: crate::tier::PlanTier,
        /// Why the downgrade fired.
        reason: crate::tier::TierReason,
    },
    /// A remote call was skipped because the active tier forbids it
    /// (cache-only, or estimated over the cheap-call threshold).
    TierSkipped {
        /// The call that never went out.
        call: GroundCall,
        /// The tier that forbade it.
        tier: crate::tier::PlanTier,
    },
    /// The whole plan was served from a materialized subplan entry — no
    /// source was called.
    SubplanHit {
        /// The plan's canonical fingerprint.
        fingerprint: u64,
        /// Materialized answers served.
        rows: usize,
    },
    /// A complete plan result was admitted into the subplan cache.
    SubplanMaterialized {
        /// The plan's canonical fingerprint.
        fingerprint: u64,
        /// Answers stored.
        rows: usize,
        /// DCSM-estimated saving per future reuse (milliseconds).
        savings_ms: f64,
    },
    /// This plan's previous materialization was evicted by a source
    /// update; the run recomputes.
    SubplanInvalidated {
        /// The plan's canonical fingerprint.
        fingerprint: u64,
        /// The updated source's domain.
        domain: String,
        /// The updated source's function.
        function: String,
    },
}

/// A timestamped event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: SimInstant,
    /// The event.
    pub event: TraceEvent,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>12}] ", format!("{}", self.at))?;
        match &self.event {
            TraceEvent::ActualCall {
                call,
                answers,
                t_all,
                bytes,
            } => write!(f, "CALL {call} -> {answers} answers in {t_all} ({bytes} B)"),
            TraceEvent::CacheHit { call, via, answers } => {
                if call == via {
                    write!(f, "HIT  {call} -> {answers} answers (exact)")
                } else {
                    write!(f, "HIT  {call} -> {answers} answers (via {via})")
                }
            }
            TraceEvent::PartialHit { call, via, answers } => {
                write!(f, "PART {call} -> {answers} cached answers (via {via})")
            }
            TraceEvent::Substituted { call, executed } => {
                write!(f, "SUBST {call} => executing {executed}")
            }
            TraceEvent::Cancelled { call } => write!(f, "SKIP {call} (consumer stopped)"),
            TraceEvent::Unavailable { call, will_retry } => write!(
                f,
                "DOWN {call}{}",
                if *will_retry { " (retrying)" } else { "" }
            ),
            TraceEvent::Answer { ordinal } => write!(f, "ANS  #{ordinal}"),
            TraceEvent::BreakerTripped { site } => {
                write!(f, "TRIP breaker open for `{site}`")
            }
            TraceEvent::BreakerShortCircuit { call, site } => {
                write!(f, "OPEN {call} short-circuited (`{site}` breaker open)")
            }
            TraceEvent::BreakerProbe { site } => {
                write!(f, "PROBE half-open breaker probing `{site}`")
            }
            TraceEvent::BreakerRecovered { site } => {
                write!(f, "HEAL breaker closed for `{site}`")
            }
            TraceEvent::DeadlineExceeded { elapsed, deadline } => {
                write!(f, "DEAD deadline exceeded ({elapsed} > {deadline})")
            }
            TraceEvent::Truncated { call, kept } => {
                write!(f, "TRUNC {call} answer set truncated to {kept}")
            }
            TraceEvent::ServedStale { call, answers } => {
                write!(f, "STALE {call} -> {answers} stale answers (source down)")
            }
            TraceEvent::GroupDispatched {
                calls,
                sites,
                makespan,
            } => {
                write!(
                    f,
                    "PAR  dispatched {calls} calls to {sites} sites (makespan {makespan})"
                )
            }
            TraceEvent::Overlapped {
                serial,
                parallel,
                calls,
            } => {
                write!(
                    f,
                    "OVLP {calls} calls overlapped: {parallel} vs {serial} serial"
                )
            }
            TraceEvent::Coalesced { call, answers } => {
                write!(f, "JOIN {call} -> {answers} answers (coalesced in-flight)")
            }
            TraceEvent::TierSelected { tier, reason } => {
                write!(f, "TIER serving at `{tier}` ({reason})")
            }
            TraceEvent::TierDowngraded { from, to, reason } => {
                write!(f, "DGRD tier `{from}` -> `{to}` ({reason})")
            }
            TraceEvent::TierSkipped { call, tier } => {
                write!(f, "TSKP {call} skipped (tier `{tier}`)")
            }
            TraceEvent::SubplanHit { fingerprint, rows } => {
                write!(
                    f,
                    "MATH subplan {fingerprint:016x} -> {rows} rows (materialized)"
                )
            }
            TraceEvent::SubplanMaterialized {
                fingerprint,
                rows,
                savings_ms,
            } => {
                write!(
                    f,
                    "MATS subplan {fingerprint:016x} stored ({rows} rows, ~{savings_ms:.1} ms/reuse)"
                )
            }
            TraceEvent::SubplanInvalidated {
                fingerprint,
                domain,
                function,
            } => {
                write!(
                    f,
                    "MATI subplan {fingerprint:016x} invalidated by {domain}:{function}"
                )
            }
        }
    }
}

/// Renders a whole trace, one event per line.
pub fn render(trace: &[TraceEntry]) -> String {
    let mut out = String::new();
    for e in trace {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_common::Value;

    #[test]
    fn display_formats_are_stable() {
        let call = GroundCall::new("d", "f", vec![Value::Int(1)]);
        let at = SimInstant::EPOCH + SimDuration::from_millis(5);
        let lines = [
            TraceEntry {
                at,
                event: TraceEvent::ActualCall {
                    call: call.clone(),
                    answers: 3,
                    t_all: SimDuration::from_millis(10),
                    bytes: 24,
                },
            },
            TraceEntry {
                at,
                event: TraceEvent::CacheHit {
                    call: call.clone(),
                    via: call.clone(),
                    answers: 3,
                },
            },
            TraceEntry {
                at,
                event: TraceEvent::Answer { ordinal: 1 },
            },
        ];
        let text = render(&lines);
        assert!(text.contains("CALL d:f(1) -> 3 answers"));
        assert!(text.contains("(exact)"));
        assert!(text.contains("ANS  #1"));
        assert_eq!(text.lines().count(), 3);
    }
}
